"""Benchmark E-T1: regenerate Table I (bid premium statistics across auctions)."""

from conftest import print_section

from repro.analysis.reports import render_premium_table
from repro.experiments.table1 import run_table1


def test_table1_bid_premiums(benchmark, bench_config):
    """Run the multi-auction economy and regenerate the premium statistics table."""
    result = benchmark.pedantic(run_table1, args=(bench_config,), rounds=1, iterations=1)

    print_section("Table I: bid premium statistics (median/mean of gamma_u, % settled) per auction")
    print(render_premium_table(result.rows))
    print()
    print("trend:", {k: round(v, 4) for k, v in result.trend.items()})

    # Shape checks against the paper: a substantial share of bids settles in
    # every auction, and the median premium decreases markedly over time as
    # bidders learn to track the market prices.  (Absolute gamma values differ
    # from the paper's: real teams had production-grade price estimates, our
    # synthetic agents start with deliberately wide margins.)
    assert len(result.rows) == bench_config.auctions
    for row in result.rows:
        assert 0.15 <= row.settled_fraction <= 1.0
        assert row.mean_premium >= 0.0
    assert result.trend["median_last"] < result.trend["median_first"]
    assert result.trend["median_ratio_last_to_first"] < 0.6
