"""Benchmark E-F6: regenerate Figure 6 (market price / fixed price per cluster)."""

import numpy as np
from conftest import print_section

from repro.analysis.reports import render_figure6_rows
from repro.experiments.figure6 import run_figure6


def test_figure6_price_ratios(benchmark, bench_config):
    """Run one full auction over a ~34-cluster fleet and regenerate the price-ratio series."""
    result = benchmark.pedantic(run_figure6, args=(bench_config,), rounds=1, iterations=1)

    print_section("Figure 6: settled market price / former fixed price, per cluster and resource")
    print(render_figure6_rows(result.rows))
    print()
    print(f"correlation(price ratio, utilization) = {result.correlation_with_utilization:.3f}")
    print(f"settled fraction = {result.settled_fraction:.1%}, clock rounds = {result.rounds}")

    # Shape checks against the paper's figure: ratios span below and above 1x,
    # congested clusters sit above idle clusters, and the ratio tracks utilization.
    cpu_ratios = np.array([row.cpu_ratio for row in result.rows])
    assert len(result.rows) == bench_config.cluster_count
    assert np.any(cpu_ratios < 1.0), "some idle clusters should settle below the old fixed price"
    assert np.any(cpu_ratios > 1.0), "some congested clusters should settle above the old fixed price"
    congested = result.congested_rows()
    idle = result.idle_rows()
    assert congested and idle
    assert np.mean([r.max_ratio() for r in congested]) > np.mean([r.max_ratio() for r in idle])
    assert result.correlation_with_utilization > 0.5
