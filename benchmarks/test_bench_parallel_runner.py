"""Benchmark E-PAR: serial vs process-pool execution of a catalog sweep.

The parallel economy runner exists to make many-scenario batches run at
hardware speed.  This benchmark sweeps the default catalog (every non-stress
scenario, >= 6 economies) once serially (``workers=1``) and once across a
process pool (``workers=4``), asserts the two canonical JSON reports are
**byte-identical** (the runner's determinism contract), asserts the pool is
measurably faster, and appends the measurement to
``BENCH_parallel_runner.json`` at the repository root so the trajectory is
tracked across PRs.

Set ``REPRO_BENCH_SCALE=test`` (as for every other benchmark) to run a
single-auction reduced sweep that skips the JSON recording.

Speedup on shared CI runners is noisy and bounded by the machine's real core
count (the byte-identity assertion is the hard guarantee; the speedup
assertion is best-of-trials with a retry, and is skipped on single-core
boxes).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from conftest import print_section, record_bench_entry

from repro.simulation.catalog import default_sweep_names, get_scenario
from repro.simulation.runner import ParallelRunner

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel_runner.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"
POOL_WORKERS = 4
TRIALS = 2

#: The acceptance bar.  Deliberately conservative: the shared runners this
#: suite executes on enforce CPU quotas well below their nominal core count,
#: so the pool's ceiling is far under ``min(POOL_WORKERS, cores)``x.
REQUIRED_SPEEDUP = 1.05


def sweep_specs():
    specs = [get_scenario(name) for name in default_sweep_names()]
    if not FULL_SCALE:
        specs = [spec.with_overrides(auctions=1) for spec in specs]
    return specs


def measure(workers: int) -> tuple[float, str]:
    """Best-of-``TRIALS`` wall-clock seconds for one full sweep, plus its report."""
    specs = sweep_specs()
    best = float("inf")
    payload = ""
    for _ in range(TRIALS):
        start = time.perf_counter()
        report = ParallelRunner(workers=workers).run_specs(specs)
        elapsed = time.perf_counter() - start
        payload = report.to_json()
        best = min(best, elapsed)
    return best, payload


def test_parallel_sweep_is_deterministic_and_faster(benchmark):
    rows = {}

    def run_both():
        rows["serial"], rows["serial_report"] = measure(workers=1)
        rows["parallel"], rows["parallel_report"] = measure(workers=POOL_WORKERS)
        return rows

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    # The hard guarantee: the pool changes nothing about the report bytes.
    assert rows["parallel_report"] == rows["serial_report"], (
        "parallel sweep produced a different canonical report than serial"
    )

    # The speedup bar only applies where the 4-worker pool has real cores to
    # use: on 1-2 core (or CPU-quota-limited) boxes pool overhead can eat the
    # whole gain, and a red tier-1 there would report machine shape, not a
    # code defect.  The byte-identity assert above is unconditional.
    enforce_speedup = (os.cpu_count() or 1) >= 4

    speedup = rows["serial"] / rows["parallel"]
    # One retry before judging: a scheduling hiccup on a noisy shared runner
    # should not turn tier-1 red.
    if speedup < REQUIRED_SPEEDUP and enforce_speedup:
        rows["serial"], _ = measure(workers=1)
        rows["parallel"], _ = measure(workers=POOL_WORKERS)
        speedup = rows["serial"] / rows["parallel"]

    scenario_names = default_sweep_names()
    print_section(f"Serial vs {POOL_WORKERS}-worker sweep over {len(scenario_names)} scenarios")
    print("scenarios:", ", ".join(scenario_names))
    print(
        f"serial {rows['serial']:.2f}s   workers={POOL_WORKERS} {rows['parallel']:.2f}s   "
        f"speedup {speedup:.2f}x   (cores: {os.cpu_count()})"
    )

    if FULL_SCALE:
        record_bench_entry(
            BENCH_JSON,
            scenarios=scenario_names,
            workers=POOL_WORKERS,
            cpu_count=os.cpu_count(),
            serial_seconds=rows["serial"],
            parallel_seconds=rows["parallel"],
            speedup=speedup,
            reports_identical=True,
        )

    if enforce_speedup:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected the {POOL_WORKERS}-worker sweep to be measurably faster, got {speedup:.2f}x"
        )
