"""Shared fixtures and scale configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The default
scale is the paper's (~34 clusters, ~100 bidders); set the environment
variable ``REPRO_BENCH_SCALE=test`` to run the same benchmarks at a reduced
scale for quick smoke checks.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import PAPER_SCALE, TEST_SCALE, ExperimentConfig


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running stress benchmarks (deselect with -m 'not slow')",
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment scale used by all benchmarks."""
    if os.environ.get("REPRO_BENCH_SCALE", "paper").lower() == "test":
        return TEST_SCALE
    return PAPER_SCALE


def print_section(title: str) -> None:
    """Print a visually distinct section header into the benchmark output."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
