"""Shared fixtures and scale configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The default
scale is the paper's (~34 clusters, ~100 bidders); set the environment
variable ``REPRO_BENCH_SCALE=test`` to run the same benchmarks at a reduced
scale for quick smoke checks.

Measurements land in the ``BENCH_*.json`` trajectory files at the repository
root through :func:`record_bench_entry`, which enforces one entry per day and
caps each file at :data:`MAX_BENCH_ENTRIES` entries so the trajectories stop
churning the diffs of every PR.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.config import PAPER_SCALE, TEST_SCALE, ExperimentConfig

#: How many entries a ``BENCH_*.json`` history keeps (the oldest roll off).
MAX_BENCH_ENTRIES = 5


def record_bench_entry(path: Path, *, merge: bool = False, **payload) -> None:
    """Record one measurement into a ``BENCH_*.json`` trajectory file.

    At most one entry per day: a rerun on the same day replaces today's
    entry (``merge=False``, the default) or updates its keys in place
    (``merge=True`` — for modules whose several tests share one file and
    must not clobber each other's keys).  The history is trimmed to the last
    :data:`MAX_BENCH_ENTRIES` entries on every write.
    """
    path = Path(path)
    history = []
    if path.exists():
        history = json.loads(path.read_text())
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
    if history and history[-1]["recorded_at"][:10] == stamp[:10]:
        if merge:
            entry = history[-1]
            entry["recorded_at"] = stamp
        else:
            history.pop()
            entry = {"recorded_at": stamp}
            history.append(entry)
    else:
        entry = {"recorded_at": stamp}
        history.append(entry)
    entry.update(payload)
    del history[:-MAX_BENCH_ENTRIES]
    path.write_text(json.dumps(history, indent=2) + "\n")


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running stress benchmarks (deselect with -m 'not slow')",
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment scale used by all benchmarks."""
    if os.environ.get("REPRO_BENCH_SCALE", "paper").lower() == "test":
        return TEST_SCALE
    return PAPER_SCALE


def print_section(title: str) -> None:
    """Print a visually distinct section header into the benchmark output."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
