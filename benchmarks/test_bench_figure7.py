"""Benchmark E-F7: regenerate Figure 7 (utilization percentiles of settled trades)."""

from conftest import print_section

from repro.analysis.reports import render_boxplots
from repro.experiments.figure7 import run_figure7


def test_figure7_utilization_of_settled_trades(benchmark, bench_config):
    """Regenerate the six boxplots of Figure 7 from one auction's settled trades."""
    result = benchmark.pedantic(run_figure7, args=(bench_config,), rounds=1, iterations=1)

    print_section("Figure 7: utilization percentile of settled transactions by side and resource")
    print(render_boxplots(result.boxplots))
    print()
    for key, value in result.migration.items():
        print(f"{key}: {value:.2f}")

    # Shape checks against the paper: bids concentrate in under-utilized pools,
    # offers in over-utilized pools, and high-utilization bid outliers exist
    # (teams paying a premium to stay in congested clusters).
    assert result.migration["bid_count"] > 0
    assert result.migration["offer_count"] > 0
    bid_median = result.migration["median_bid_percentile"]
    offer_median = result.migration["median_offer_percentile"]
    assert bid_median < 50.0, "most settled bids should be in under-utilized pools"
    assert offer_median > 50.0, "most settled offers should be in over-utilized pools"
    assert offer_median - bid_median > 20.0
    assert result.has_high_utilization_bid_outliers(), "premium payers should appear as high-utilization bid outliers"
