"""Benchmark E-MECH: baseline mechanisms vs the market on paper-reference.

The point of the allocation-mechanism layer is that baseline policies ride the
same scenario/runner/store pipeline as the market — and that doing so is
nearly free.  A baseline epoch is one allocator pass over the request list;
a market auction iterates clock rounds of demand collection until no pool is
over-demanded.  This benchmark times every registered mechanism's
``simulate`` phase on the ``paper-reference`` scenario — fleet generation is
mechanism-independent and excluded, each trial gets a freshly built scenario
off the clock — and asserts each baseline runs at least **5x faster** than
the market (they skip price discovery entirely).  At full scale the
measurements are appended to ``BENCH_mechanisms.json`` at the repository
root so the trajectory is tracked across PRs.

Set ``REPRO_BENCH_SCALE=test`` (as for every other benchmark) to run a
reduced variant that skips the JSON recording and the speedup bar: at smoke
scale both sides finish in milliseconds and the ratio measures interpreter
noise, not the mechanisms.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from conftest import print_section, record_bench_entry

from repro.mechanisms import baseline_mechanism_names, get_mechanism, mechanism_names
from repro.simulation.catalog import get_scenario

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_mechanisms.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"
TRIALS = 2

#: Every baseline must be at least this much faster than the market: no clock
#: rounds, no bid trees, no settlement — one allocator pass per epoch.
MIN_SPEEDUP = 5.0

#: Setup bar: paper-scale ``build_scenario`` (fleet generation + population)
#: must stay under this many seconds.  Before the per-machine loops in the
#: cluster accounting were collapsed to single-pass float folds it took
#: ~0.5 s — longer than an entire baseline-mechanism run — so this guards the
#: constant factor every sweep pays per job.
MAX_BUILD_SECONDS = 0.15


def bench_spec(mechanism: str):
    spec = get_scenario("paper-reference").with_overrides(mechanism=mechanism)
    if not FULL_SCALE:
        spec = spec.with_overrides(auctions=1)
    return spec


def best_seconds(mechanism: str, build_seconds: list[float]) -> float:
    best = float("inf")
    for _ in range(TRIALS):
        spec = bench_spec(mechanism)
        build_start = time.perf_counter()
        scenario = spec.build()  # mechanism-independent, kept off the clock
        build_seconds.append(time.perf_counter() - build_start)
        start = time.perf_counter()
        result = get_mechanism(mechanism).simulate(scenario, spec)
        elapsed = time.perf_counter() - start
        assert result.mechanism == mechanism
        assert result.auctions == spec.auctions
        best = min(best, elapsed)
    return best


def test_baselines_run_5x_faster_than_the_market(benchmark):
    seconds: dict[str, float] = {}
    build_seconds: list[float] = []

    def run_trials():
        for mechanism in mechanism_names():
            seconds[mechanism] = best_seconds(mechanism, build_seconds)
        return seconds

    benchmark.pedantic(run_trials, rounds=1, iterations=1)

    best_build = min(build_seconds)
    market = seconds["market"]
    print_section("Allocation mechanisms on paper-reference (best of 2 runs)")
    print(f"{'mechanism':<14} {'seconds':>9} {'speedup vs market':>18}")
    for mechanism in mechanism_names():
        speedup = market / seconds[mechanism] if seconds[mechanism] > 0 else float("inf")
        print(f"{mechanism:<14} {seconds[mechanism]:>9.4f} {speedup:>17.1f}x")
    print(f"scenario build (off the clock above): best {best_build:.4f}s "
          f"over {len(build_seconds)} builds")

    if FULL_SCALE:
        record_bench_entry(
            BENCH_JSON,
            scenario="paper-reference",
            build_seconds=best_build,
            seconds={name: seconds[name] for name in mechanism_names()},
            speedup_vs_market={
                name: (market / seconds[name]) if seconds[name] > 0 else None
                for name in baseline_mechanism_names()
            },
        )

        assert best_build <= MAX_BUILD_SECONDS, (
            f"paper-scale build_scenario took {best_build:.3f}s (bar: "
            f"{MAX_BUILD_SECONDS}s) — the vectorised fleet-generation setup "
            "path has regressed"
        )
        for name in baseline_mechanism_names():
            assert seconds[name] * MIN_SPEEDUP <= market, (
                f"{name} took {seconds[name]:.3f}s vs market {market:.3f}s — "
                f"less than the {MIN_SPEEDUP:.0f}x bar for a mechanism with no "
                "price discovery"
            )
