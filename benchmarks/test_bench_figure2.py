"""Benchmark E-F2: regenerate Figure 2 (utilization-weighted pricing curves)."""

from conftest import print_section

from repro.experiments.figure2 import run_figure2


def test_figure2_curves(benchmark):
    """Regenerate the three weighting curves and check their shape against the paper."""
    result = benchmark(run_figure2, points=101)

    print_section("Figure 2: utilization-weighted pricing curves (price multiple at 0/50/100% util)")
    print(f"{'curve':<28} {'phi(0)':>8} {'phi(0.5)':>9} {'phi(1)':>8}")
    for curve in result.curves:
        print(f"{curve.label:<28} {curve.at_zero:>8.3f} {curve.at_half:>9.3f} {curve.at_full:>8.3f}")

    # Shape checks against the published curves.
    phi1 = result.curve("phi1")
    phi2 = result.curve("phi2")
    phi3 = result.curve("phi3")
    # All three equal 1.0 at 50% utilization and exceed 1 at full utilization.
    for curve in (phi1, phi2, phi3):
        assert abs(curve.at_half - 1.0) < 1e-9
        assert curve.at_full > 1.0
        assert all(curve.properties.values()), curve.properties
    # phi1 is the steepest of the exponentials; phi3 tops out at 2.0; the
    # ordering at 100% utilization matches the published plot.
    assert phi1.at_full > phi3.at_full > phi2.at_full
    assert abs(phi3.at_full - 2.0) < 1e-9
