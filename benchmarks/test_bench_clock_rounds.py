"""Benchmark E-F1: the Algorithm 1 / Figure 1 price-update loop trace."""

from conftest import print_section

from repro.experiments.clock_rounds import run_clock_rounds


def test_clock_round_trace(benchmark):
    """Run the reference clock auction with tracing and check the loop behaves as drawn."""
    result = benchmark.pedantic(run_clock_rounds, rounds=1, iterations=1)

    print_section("Algorithm 1 / Figure 1: ascending clock price-update loop")
    outcome = result.outcome
    print(f"rounds: {result.rounds}")
    print(f"pools whose price moved: {result.moved_pools} / {len(outcome.index)}")
    print(f"max rise over reserve: {result.max_relative_rise:.1%}")
    print(f"active bidders per round: {outcome.active_bidder_counts()}")

    # The loop of Figure 1: prices start at the reserve, rise monotonically on
    # over-demanded pools only, and the auction ends with no positive excess demand.
    import numpy as np

    assert outcome.converged
    first, last = outcome.rounds[0], outcome.rounds[-1]
    assert np.all(first.prices == outcome.reserve_prices)
    trajectory = np.array([r.prices for r in outcome.rounds])
    assert np.all(np.diff(trajectory, axis=0) >= -1e-12)
    assert np.all(last.excess_demand <= 1e-6 * np.maximum(outcome.index.capacities(), 1.0) + 1e-6)
    # prices move only on pools that were over-demanded in at least one round
    ever_over_demanded = np.any(
        np.array([r.excess_demand for r in outcome.rounds]) > 0, axis=0
    )
    moved = last.prices > outcome.reserve_prices + 1e-12
    assert np.all(~moved | ever_over_demanded)
    assert first.round_index == 0
