"""Benchmark E-SCALE: the Section III-C-4 scaling claim.

"The execution time scales linearly in the number of participants and the
number of resources"; the paper's reference problem (~100 bidders x ~100
pools) solved "in a few minutes" of unoptimized Python.  The numpy-vectorized
proxy evaluation here is far faster, but the *scaling shape* is the claim
under test: near-linear growth in both dimensions.
"""

from conftest import print_section

from repro.experiments.scaling import run_scaling


def test_clock_auction_scaling(benchmark):
    """Time the clock auction across a grid of bidder and pool counts."""
    result = benchmark.pedantic(
        run_scaling,
        kwargs={"bidder_counts": (25, 50, 100, 200), "cluster_counts": (8, 17, 34, 68)},
        rounds=1,
        iterations=1,
    )

    print_section("Clock auction scaling in bidders and resource pools (Section III-C-4)")
    print(f"{'bidders':>8} {'pools':>6} {'seconds':>9} {'rounds':>7} {'s/round':>10} {'settled':>8}")
    for point in result.points:
        print(
            f"{point.bidders:>8d} {point.pools:>6d} {point.seconds:>9.4f} "
            f"{point.rounds:>7d} {point.seconds_per_round:>10.5f} {point.settled_fraction:>7.1%}"
        )
    print(f"\nfitted per-round growth exponent in bidders: {result.bidder_exponent:.2f}")
    print(f"fitted per-round growth exponent in pools:   {result.pool_exponent:.2f}")

    # The paper's reference size (about 100 bidders x 100 pools) solved "in a
    # few minutes" of unoptimized Python; the vectorized reproduction must
    # clear it comfortably inside that budget, and every sweep point converges.
    reference = result.point(100, 34 * 3)
    assert reference.seconds < 120.0
    assert all(point.rounds > 0 for point in result.points)
    # Near-linear per-round scaling: well below quadratic growth in either dimension.
    assert result.bidder_exponent < 1.6
    assert result.pool_exponent < 1.6
