"""Benchmark E-BATCH: scalar vs vectorized round-collection (`_collect`).

The per-round demand-collection step is the dominant cost of every clock
auction.  This benchmark times one full round of demand collection under the
scalar proxy loop and under the vectorized batch engine at 100 / 1 000 /
10 000 bidders, asserts the >= 5x speedup the batch engine exists to deliver,
and appends the measured trajectory to ``BENCH_batch_engine.json`` at the
repository root so the speedup history is tracked across PRs.

Set ``REPRO_BENCH_SCALE=test`` (as for every other benchmark) to run a
reduced sweep (no 10k-bidder point) that skips the JSON recording.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_section

from repro.cluster.pools import PoolIndex, ResourcePool
from repro.cluster.resources import ResourceType
from repro.core.bids import Bid
from repro.core.clock_auction import AscendingClockAuction, AuctionConfig

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_batch_engine.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"
BIDDER_COUNTS = (100, 1_000, 10_000) if FULL_SCALE else (100, 1_000)
POOL_COUNT_CLUSTERS = 17  # x3 resource types = 51 pools

#: The acceptance bar for the batch engine on the 1k-bidder path.
REQUIRED_SPEEDUP = 5.0


def build_index(clusters: int) -> PoolIndex:
    pools = []
    costs = {ResourceType.CPU: 10.0, ResourceType.RAM: 2.0, ResourceType.DISK: 0.05}
    caps = {ResourceType.CPU: 1000.0, ResourceType.RAM: 4000.0, ResourceType.DISK: 100_000.0}
    for c in range(clusters):
        for rtype in ResourceType:
            pools.append(
                ResourcePool(
                    cluster=f"cluster-{c:02d}",
                    rtype=rtype,
                    capacity=caps[rtype],
                    unit_cost=costs[rtype],
                    utilization=0.5,
                )
            )
    return PoolIndex(pools)


def build_bids(index: PoolIndex, count: int, rng: np.random.Generator) -> list[Bid]:
    names = index.names
    bids = []
    for i in range(count):
        bundles = []
        for _ in range(int(rng.integers(1, 4))):
            chosen = rng.choice(names, size=3, replace=False)
            bundles.append({str(n): float(rng.uniform(1, 100)) for n in chosen})
        bids.append(Bid.buy(f"team-{i}", index, bundles, max_payment=float(rng.uniform(100, 10_000))))
    return bids


def time_collect(auction: AscendingClockAuction, prices: np.ndarray, *, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one `_collect` call (noise-robust)."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        auction._collect(prices)
        timings.append(time.perf_counter() - start)
    return float(np.min(timings))


def measure_point(index: PoolIndex, count: int, rng: np.random.Generator, reserve: np.ndarray) -> dict:
    bids = build_bids(index, count, rng)
    repeats = max(5, 3_000 // count)
    scalar = AscendingClockAuction(
        index, bids, reserve_prices=reserve, config=AuctionConfig(engine="scalar")
    )
    batch = AscendingClockAuction(
        index, bids, reserve_prices=reserve, config=AuctionConfig(engine="batch")
    )
    batch._collect(reserve)  # build the stacked matrices outside the timed region
    scalar_s = time_collect(scalar, reserve, repeats=repeats)
    batch_s = time_collect(batch, reserve, repeats=repeats)
    return {
        "bidders": count,
        "pools": len(index),
        "scalar_seconds_per_round": scalar_s,
        "batch_seconds_per_round": batch_s,
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
    }


def test_batch_engine_round_collection_speedup(benchmark):
    index = build_index(POOL_COUNT_CLUSTERS)
    rng = np.random.default_rng(99)
    reserve = np.ones(len(index))
    rows = []

    def measure():
        rows.clear()
        for count in BIDDER_COUNTS:
            rows.append(measure_point(index, count, rng, reserve))
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)

    # One retry per under-threshold point before failing: a single scheduling
    # hiccup on a noisy shared runner should not turn tier-1 red.
    for i, row in enumerate(rows):
        if row["speedup"] < REQUIRED_SPEEDUP:
            rows[i] = measure_point(index, row["bidders"], rng, reserve)

    print_section("Scalar vs batch demand collection (one clock-auction round)")
    print(f"{'bidders':>8} {'pools':>6} {'scalar s':>12} {'batch s':>12} {'speedup':>9}")
    for row in rows:
        print(
            f"{row['bidders']:>8d} {row['pools']:>6d} {row['scalar_seconds_per_round']:>12.6f} "
            f"{row['batch_seconds_per_round']:>12.6f} {row['speedup']:>8.1f}x"
        )

    # Record the speedup trajectory across PRs (full scale only; at most one
    # entry per day, so repeated runs update today's entry instead of
    # bloating the file).
    if FULL_SCALE:
        history = []
        if BENCH_JSON.exists():
            history = json.loads(BENCH_JSON.read_text())
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
        if history and history[-1]["recorded_at"][:10] == stamp[:10]:
            history.pop()
        history.append({"recorded_at": stamp, "points": rows})
        BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")

    # The acceptance bar: >= 5x on the 1k-bidder round-collection path, and
    # the batch path must keep winning at the scale it unlocks.
    by_count = {row["bidders"]: row for row in rows}
    assert by_count[1_000]["speedup"] >= REQUIRED_SPEEDUP
    if 10_000 in by_count:
        assert by_count[10_000]["speedup"] >= REQUIRED_SPEEDUP
