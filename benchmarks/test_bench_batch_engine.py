"""Benchmark E-BATCH: scalar vs batch vs sharded demand engines.

The per-round demand-collection step is the dominant cost of every clock
auction.  This module benchmarks two layers of the answer:

* ``test_batch_engine_round_collection_speedup`` times one full round of
  demand collection under the scalar proxy loop and under the vectorized
  batch engine at 100 / 1 000 / 10 000 bidders and asserts the >= 5x
  speedup the batch engine exists to deliver;
* ``test_sharded_stress_auction`` (marked ``slow``) clears the
  ``100k-bidder-stress`` preset's first auction with the batch and the
  pool-sharded engines, asserts bit-identical outcomes, a wall-time
  ceiling, and — on machines with >= 4 cores — the >= 2x rounds/second
  advantage the sharded engine exists to deliver.

Both tests merge their measurements into ``BENCH_batch_engine.json`` at the
repository root (one entry per day) so the trajectories are tracked across
PRs.  Set ``REPRO_BENCH_SCALE=test`` (as for every other benchmark) to run
a reduced sweep — no 10k-bidder collection point, and the stress test drops
to the smoke-tier ``10k-bidder-stress`` preset — that skips the recording.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import print_section, record_bench_entry

from repro.cluster.pools import PoolIndex, ResourcePool
from repro.cluster.resources import ResourceType
from repro.core.bids import Bid
from repro.core.clock_auction import AscendingClockAuction, AuctionConfig
from repro.core.reserve import PAPER_PHI_1, ReservePricer
from repro.simulation.catalog import get_scenario
from repro.simulation.economy import MarketEconomySimulation

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_batch_engine.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"
BIDDER_COUNTS = (100, 1_000, 10_000) if FULL_SCALE else (100, 1_000)
POOL_COUNT_CLUSTERS = 17  # x3 resource types = 51 pools

#: The acceptance bar for the batch engine on the 1k-bidder path.
REQUIRED_SPEEDUP = 5.0

#: Stress scale: the 100k preset at paper scale, the 10k smoke-tier scale
#: under ``REPRO_BENCH_SCALE=test``.
STRESS_PRESET = "100k-bidder-stress" if FULL_SCALE else "10k-bidder-stress"

#: Wall-time ceiling for the sharded engine to clear one stress auction.
STRESS_WALL_CEILING_SECONDS = 240.0 if FULL_SCALE else 120.0

#: The sharded acceptance bar: rounds/second vs the batch engine, asserted
#: only on machines with at least this many cores (the threads need cores
#: to win on; single-core runners still check identity and the ceiling).
REQUIRED_SHARD_SPEEDUP = 2.0
SHARD_SPEEDUP_MIN_CORES = 4


def build_index(clusters: int) -> PoolIndex:
    pools = []
    costs = {ResourceType.CPU: 10.0, ResourceType.RAM: 2.0, ResourceType.DISK: 0.05}
    caps = {ResourceType.CPU: 1000.0, ResourceType.RAM: 4000.0, ResourceType.DISK: 100_000.0}
    for c in range(clusters):
        for rtype in ResourceType:
            pools.append(
                ResourcePool(
                    cluster=f"cluster-{c:02d}",
                    rtype=rtype,
                    capacity=caps[rtype],
                    unit_cost=costs[rtype],
                    utilization=0.5,
                )
            )
    return PoolIndex(pools)


def build_bids(index: PoolIndex, count: int, rng: np.random.Generator) -> list[Bid]:
    names = index.names
    bids = []
    for i in range(count):
        bundles = []
        for _ in range(int(rng.integers(1, 4))):
            chosen = rng.choice(names, size=3, replace=False)
            bundles.append({str(n): float(rng.uniform(1, 100)) for n in chosen})
        bids.append(Bid.buy(f"team-{i}", index, bundles, max_payment=float(rng.uniform(100, 10_000))))
    return bids


def time_collect(auction: AscendingClockAuction, prices: np.ndarray, *, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one `_collect` call (noise-robust)."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        auction._collect(prices)
        timings.append(time.perf_counter() - start)
    return float(np.min(timings))


def measure_point(index: PoolIndex, count: int, rng: np.random.Generator, reserve: np.ndarray) -> dict:
    bids = build_bids(index, count, rng)
    repeats = max(5, 3_000 // count)
    scalar = AscendingClockAuction(
        index, bids, reserve_prices=reserve, config=AuctionConfig(engine="scalar")
    )
    batch = AscendingClockAuction(
        index, bids, reserve_prices=reserve, config=AuctionConfig(engine="batch")
    )
    batch._collect(reserve)  # build the stacked matrices outside the timed region
    scalar_s = time_collect(scalar, reserve, repeats=repeats)
    batch_s = time_collect(batch, reserve, repeats=repeats)
    return {
        "bidders": count,
        "pools": len(index),
        "scalar_seconds_per_round": scalar_s,
        "batch_seconds_per_round": batch_s,
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
    }


def test_batch_engine_round_collection_speedup(benchmark):
    index = build_index(POOL_COUNT_CLUSTERS)
    rng = np.random.default_rng(99)
    reserve = np.ones(len(index))
    rows = []

    def measure():
        rows.clear()
        for count in BIDDER_COUNTS:
            rows.append(measure_point(index, count, rng, reserve))
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)

    # One retry per under-threshold point before failing: a single scheduling
    # hiccup on a noisy shared runner should not turn tier-1 red.
    for i, row in enumerate(rows):
        if row["speedup"] < REQUIRED_SPEEDUP:
            rows[i] = measure_point(index, row["bidders"], rng, reserve)

    print_section("Scalar vs batch demand collection (one clock-auction round)")
    print(f"{'bidders':>8} {'pools':>6} {'scalar s':>12} {'batch s':>12} {'speedup':>9}")
    for row in rows:
        print(
            f"{row['bidders']:>8d} {row['pools']:>6d} {row['scalar_seconds_per_round']:>12.6f} "
            f"{row['batch_seconds_per_round']:>12.6f} {row['speedup']:>8.1f}x"
        )

    # Record the speedup trajectory across PRs (full scale only).
    if FULL_SCALE:
        record_bench_entry(BENCH_JSON, merge=True, points=rows)

    # The acceptance bar: >= 5x on the 1k-bidder round-collection path, and
    # the batch path must keep winning at the scale it unlocks.
    by_count = {row["bidders"]: row for row in rows}
    assert by_count[1_000]["speedup"] >= REQUIRED_SPEEDUP
    if 10_000 in by_count:
        assert by_count[10_000]["speedup"] >= REQUIRED_SPEEDUP


@pytest.mark.slow
def test_sharded_stress_auction(benchmark):
    """The stress preset's first auction: sharded vs batch, same bytes, faster.

    Builds the stress scenario, collects one bid window exactly as an epoch
    would, then clears the same bids with the batch and the sharded engines.
    The outcomes must be bit-identical; the sharded engine must finish under
    the wall ceiling; and on >= 4 cores it must clear at least 2x the
    rounds/second of the batch loop (the per-shard clocks freeze early and
    run concurrently).  The measured trajectory lands in
    ``BENCH_batch_engine.json`` under ``sharded_stress``.
    """
    spec = get_scenario(STRESS_PRESET)
    scenario = spec.build()
    sim = MarketEconomySimulation(
        scenario, drift_scale=spec.drift_scale, preliminary_runs=spec.preliminary_runs
    )
    platform = scenario.platform
    platform.open_bid_window()
    sim._refresh_agent_state()
    view = sim._market_view()
    bids = [bid for agent in scenario.agents for bid in agent.prepare_bids(view)]
    index = platform.index
    reserve = ReservePricer(weighting=PAPER_PHI_1).reserve_prices(index)
    supply = index.available() * spec.config.operator_supply_fraction

    results: dict[str, dict] = {}

    def measure():
        results.clear()
        for engine in ("batch", "sharded"):
            auction = AscendingClockAuction(
                index,
                bids,
                reserve_prices=reserve,
                supply=supply,
                config=AuctionConfig(engine=engine),
            )
            start = time.perf_counter()
            outcome = auction.run()
            wall = time.perf_counter() - start
            results[engine] = {"auction": auction, "outcome": outcome, "wall": wall}
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)

    batch_outcome = results["batch"]["outcome"]
    sharded_outcome = results["sharded"]["outcome"]
    sharded = results["sharded"]["auction"]

    # Identity first: a fast wrong answer is worthless.
    assert sharded_outcome.round_count == batch_outcome.round_count
    assert sharded_outcome.final_prices.tobytes() == batch_outcome.final_prices.tobytes()
    assert sharded_outcome.excess_demand.tobytes() == batch_outcome.excess_demand.tobytes()

    rounds = sharded_outcome.round_count
    batch_rps = rounds / results["batch"]["wall"]
    sharded_rps = rounds / results["sharded"]["wall"]
    cores = os.cpu_count() or 1
    stats = sharded.shard_stats or {}
    row = {
        "preset": STRESS_PRESET,
        "bidders": len(bids),
        "pools": len(index),
        "rounds": rounds,
        "cores": cores,
        "batch_seconds": results["batch"]["wall"],
        "sharded_seconds": results["sharded"]["wall"],
        "batch_rounds_per_second": batch_rps,
        "sharded_rounds_per_second": sharded_rps,
        "speedup": sharded_rps / batch_rps if batch_rps > 0 else float("inf"),
        "shards": stats.get("shards", 0),
        "effective_shards": stats.get("effective_shards", 0),
        "workers": stats.get("workers", 0),
        "fallback": bool(stats.get("fallback", False)),
    }

    print_section(f"Sharded vs batch stress auction ({STRESS_PRESET})")
    print(
        f"bidders={row['bidders']} pools={row['pools']} rounds={rounds} "
        f"shards={row['shards']} workers={row['workers']} cores={cores}"
    )
    print(
        f"batch   {row['batch_seconds']:>8.2f}s  {batch_rps:>6.2f} rounds/s\n"
        f"sharded {row['sharded_seconds']:>8.2f}s  {sharded_rps:>6.2f} rounds/s  "
        f"({row['speedup']:.2f}x)"
    )

    if FULL_SCALE:
        record_bench_entry(BENCH_JSON, merge=True, sharded_stress=row)

    assert results["sharded"]["wall"] <= STRESS_WALL_CEILING_SECONDS
    if FULL_SCALE and cores >= SHARD_SPEEDUP_MIN_CORES:
        assert sharded_rps >= REQUIRED_SHARD_SPEEDUP * batch_rps, row
