"""Benchmark E-DIST: the remote execution fabric vs the local process pool.

The remote backend buys multi-host scale with a TCP hop, JSON framing, and a
coordinator loop in the middle; this benchmark prices that overhead and
checks it scales.  Three claims, on real ``python -m repro worker``
subprocesses bound to localhost:

1. **Determinism** — the remote sweep's canonical report is byte-identical
   to the process pool's (the backend contract; asserted unconditionally).
2. **Overhead bound** — with 2 local workers, the smoke sweep (every
   registered mechanism on the ``smoke`` scenario) finishes within
   ``1.5x`` of the 2-worker process pool.  Workers are started and
   connected before the clock: daemons are long-lived in production, while
   the process pool is recreated per sweep — the bound prices the fabric
   (framing, dispatch, heartbeats), not Python interpreter startup.
3. **Scaling** — replicate throughput grows with worker count: 2 remote
   workers beat 1 on a 4-replicate paper-reference batch (enforced only
   where the machine has at least 2 cores to scale onto; one retry absorbs
   scheduler noise).

At full scale the measurements are appended to ``BENCH_distributed.json`` at
the repository root so the trajectory is tracked across PRs.  Set
``REPRO_BENCH_SCALE=test`` to run a single-auction variant that skips the
JSON recording and the timing bars (wire overhead against millisecond jobs
measures interpreter noise, not the fabric).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import print_section, record_bench_entry

from repro.exec import RemoteBackend
from repro.mechanisms import mechanism_names
from repro.simulation.catalog import get_scenario
from repro.simulation.runner import ParallelRunner, expand_mechanisms

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_distributed.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"
TRIALS = 2

#: Remote may cost at most this multiple of the process pool on the smoke
#: sweep (same worker count, same jobs).
MAX_OVERHEAD = 1.5

#: Two remote workers must beat one by at least this much on the replicate
#: batch (only enforced with >= 2 cores).
MIN_SCALING = 1.05


def smoke_sweep_specs():
    """The smoke sweep: every registered mechanism on the smoke scenario."""
    spec = get_scenario("smoke")
    if not FULL_SCALE:
        spec = spec.with_overrides(auctions=1)
    return expand_mechanisms([spec], mechanism_names())


def replicate_specs(count: int = 4):
    """Equal-weight market jobs, for the worker-count scaling measurement.

    Paper-reference replicates (sub-second each): heavy enough that dispatch
    overhead cannot mask the parallelism, light enough for tier-1.
    """
    spec = get_scenario("paper-reference" if FULL_SCALE else "smoke")
    if not FULL_SCALE:
        spec = spec.with_overrides(auctions=1)
    return [spec.with_overrides(seed=spec.config.seed + i) for i in range(count)]


def spawn_worker(address: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", address,
         "--id", worker_id, "--retry", "30"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_remote(specs, worker_count: int) -> tuple[float, str]:
    """Wall seconds (workers pre-connected) and report for one remote sweep."""
    backend = RemoteBackend(
        bind="127.0.0.1:0", workers=worker_count, quiet=True, wait_timeout=30.0
    )
    address = backend.listen()
    workers = [spawn_worker(address, f"bench-w{i}") for i in range(worker_count)]
    try:
        deadline = time.monotonic() + 30.0
        while backend.connected_workers() < worker_count:
            if time.monotonic() > deadline:
                raise RuntimeError("benchmark workers failed to connect")
            time.sleep(0.05)
        start = time.perf_counter()
        report = ParallelRunner(backend=backend).run_specs(specs)
        elapsed = time.perf_counter() - start
    finally:
        backend.close()  # idempotent; releases workers if the sweep raised
        for worker in workers:
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
    return elapsed, report.to_json()


def run_process(specs, worker_count: int) -> tuple[float, str]:
    start = time.perf_counter()
    report = ParallelRunner(workers=worker_count, backend="process").run_specs(specs)
    return time.perf_counter() - start, report.to_json()


def best_of(fn, *args) -> tuple[float, str]:
    best, payload = float("inf"), ""
    for _ in range(TRIALS):
        seconds, payload = fn(*args)
        best = min(best, seconds)
    return best, payload


def test_remote_fabric_overhead_and_scaling(benchmark):
    rows: dict[str, float | str] = {}

    def run_all():
        sweep = smoke_sweep_specs()
        rows["process_2w"], rows["process_report"] = best_of(run_process, sweep, 2)
        rows["remote_2w"], rows["remote_report"] = best_of(run_remote, sweep, 2)
        replicates = replicate_specs()
        rows["remote_1w_reps"], _ = best_of(run_remote, replicates, 1)
        rows["remote_2w_reps"], _ = best_of(run_remote, replicates, 2)
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The hard guarantee, at any scale: the fabric changes nothing about the
    # report bytes.
    assert rows["remote_report"] == rows["process_report"], (
        "remote sweep produced a different canonical report than the process pool"
    )

    overhead = rows["remote_2w"] / rows["process_2w"]
    scaling = rows["remote_1w_reps"] / rows["remote_2w_reps"]
    cores = os.cpu_count() or 1

    # One retry each before judging: noisy shared runners must not turn a
    # scheduling hiccup into a red tier-1.
    if FULL_SCALE and overhead > MAX_OVERHEAD:
        rows["remote_2w"], _ = best_of(run_remote, smoke_sweep_specs(), 2)
        overhead = rows["remote_2w"] / rows["process_2w"]
    if FULL_SCALE and cores >= 2 and scaling < MIN_SCALING:
        rows["remote_1w_reps"], _ = best_of(run_remote, replicate_specs(), 1)
        rows["remote_2w_reps"], _ = best_of(run_remote, replicate_specs(), 2)
        scaling = rows["remote_1w_reps"] / rows["remote_2w_reps"]

    print_section("Remote fabric vs process pool (smoke sweep, best of 2)")
    print(f"process pool, 2 workers:  {rows['process_2w']:.2f}s")
    print(f"remote,       2 workers:  {rows['remote_2w']:.2f}s   "
          f"overhead {overhead:.2f}x (bound {MAX_OVERHEAD}x)")
    print(f"remote replicate batch:   1 worker {rows['remote_1w_reps']:.2f}s, "
          f"2 workers {rows['remote_2w_reps']:.2f}s   "
          f"scaling {scaling:.2f}x (cores: {cores})")

    if FULL_SCALE:
        record_bench_entry(
            BENCH_JSON,
            sweep="smoke x all mechanisms",
            cpu_count=cores,
            process_2w_seconds=rows["process_2w"],
            remote_2w_seconds=rows["remote_2w"],
            overhead=overhead,
            remote_1w_replicates_seconds=rows["remote_1w_reps"],
            remote_2w_replicates_seconds=rows["remote_2w_reps"],
            scaling_2w_over_1w=scaling,
            reports_identical=True,
        )

        assert overhead <= MAX_OVERHEAD, (
            f"remote backend cost {overhead:.2f}x the process pool on the smoke "
            f"sweep (bound: {MAX_OVERHEAD}x)"
        )
        if cores >= 2:
            assert scaling >= MIN_SCALING, (
                f"2 remote workers only {scaling:.2f}x faster than 1 on the "
                f"replicate batch (bar: {MIN_SCALING}x)"
            )
