"""Benchmark E-BASE: market vs traditional allocation (shortages, surpluses, balance)."""

from conftest import print_section

from repro.experiments.baseline_comparison import run_baseline_comparison


def test_market_vs_traditional_allocation(benchmark, bench_config):
    """Run the same demand through the baselines and the market and compare the outcomes."""
    result = benchmark.pedantic(run_baseline_comparison, args=(bench_config,), rounds=1, iterations=1)

    print_section("Market vs traditional allocation policies (Section I / VI claims)")
    print(
        f"{'policy':<20} {'shortage $':>14} {'surplus $':>14} {'util spread':>12} "
        f"{'satisfied':>10} {'grant rate':>11}"
    )
    for name, metric in result.metrics.items():
        print(
            f"{name:<20} {metric.shortage_cost:>14.0f} {metric.surplus_cost:>14.0f} "
            f"{metric.utilization_spread:>12.3f} {metric.satisfied_fraction:>9.1%} {metric.grant_rate:>10.1%}"
        )
    print()
    print("utilization balance around the first market auction:", {k: round(v, 4) for k, v in result.balance.items()})

    market = result.market()
    fixed = result.baseline("fixed_price_fcfs")
    proportional = result.baseline("proportional_share")
    priority = result.baseline("priority")

    # The paper's qualitative claims: the market evens out utilization across
    # pools and leaves more teams fully provisioned than the manual policies,
    # because demand is steered to where capacity actually exists.
    assert market.utilization_spread < fixed.utilization_spread
    assert market.utilization_spread < proportional.utilization_spread
    assert market.satisfied_fraction > max(
        fixed.satisfied_fraction, proportional.satisfied_fraction, priority.satisfied_fraction
    )
    # All baselines share the same pool-level shortage (they serve the same
    # demand against the same home-cluster capacity) — sanity check.
    assert abs(fixed.shortage_cost - proportional.shortage_cost) < 1e-6
