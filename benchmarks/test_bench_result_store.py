"""Benchmark E-STORE: result-store write overhead on a replicate sweep.

The persistent result store turns every ``run``/``sweep`` into durable,
comparable history — but persistence that slowed the sweeps it records would
not survive.  This benchmark runs a replicate sweep recording into a fresh
sqlite store, times every ``record()`` call from inside the sweep, and
asserts the store's write time stays **under 5% of the sweep's wall time**.
Timing the writes in situ (rather than diffing a with-store run against a
without-store run) keeps the measurement immune to machine-load drift
between two multi-second runs: the sqlite cost is milliseconds, and a
subtraction of seconds-scale wall clocks would measure the machine, not the
store.  At full scale the measurement is appended to
``BENCH_result_store.json`` at the repository root so the trajectory is
tracked across PRs.

Set ``REPRO_BENCH_SCALE=test`` (as for every other benchmark) to run a
reduced sweep that skips the JSON recording.  The overhead bar is only
*enforced* at full scale: a reduced smoke sweep finishes in a fraction of a
second, where the store's constant per-run fsync cost dwarfs 5% of nothing —
the assertion would measure the machine's disk latency, not the store.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from conftest import print_section, record_bench_entry

from repro.results.store import ResultStore
from repro.simulation.runner import ParallelRunner

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_result_store.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"
REPLICATES = 3
TRIALS = 2

#: The acceptance bar from the store's design goal: recording a sweep must
#: cost less than 5% of the sweep's own wall time.
MAX_OVERHEAD = 0.05


class TimedStore(ResultStore):
    """A store that accumulates the wall time spent inside ``record()``."""

    def __init__(self, path):
        super().__init__(path)
        self.write_seconds = 0.0

    def record(self, result, *, code_version=None):
        start = time.perf_counter()
        stored = super().record(result, code_version=code_version)
        self.write_seconds += time.perf_counter() - start
        return stored


def sweep_spec(bench_config):
    spec = bench_config.as_scenario_spec(name="store-overhead")
    if not FULL_SCALE:
        spec = spec.with_overrides(auctions=1)
    return spec


def measure(spec, tmp_path) -> dict[str, float]:
    """Best-of-``TRIALS`` overhead for one recorded replicate sweep."""
    best = {"overhead": float("inf")}
    for trial in range(TRIALS):
        target = tmp_path / f"trial-{trial}.sqlite"
        start = time.perf_counter()
        with TimedStore(target) as store:
            ParallelRunner(workers=1).run_replicates(  # serial: stable timing
                spec, REPLICATES, store=store, code_version="bench"
            )
            wall = time.perf_counter() - start
            assert len(store) == REPLICATES  # the store really holds every replicate
            writes = store.write_seconds
        overhead = writes / wall
        if overhead < best["overhead"]:
            best = {"wall": wall, "writes": writes, "overhead": overhead}
    return best


def test_store_write_overhead_under_5_percent(benchmark, bench_config, tmp_path):
    spec = sweep_spec(bench_config)
    rows = {}

    def run_trials():
        rows.update(measure(spec, tmp_path))
        return rows

    benchmark.pedantic(run_trials, rounds=1, iterations=1)

    print_section(f"Result-store write overhead ({REPLICATES} replicates, serial)")
    print(
        f"sweep {rows['wall']:.2f}s   store writes {rows['writes'] * 1000:.1f}ms   "
        f"overhead {rows['overhead'] * 100:.2f}%"
    )

    if FULL_SCALE:
        record_bench_entry(
            BENCH_JSON,
            scenario=spec.name,
            replicates=REPLICATES,
            sweep_seconds=rows["wall"],
            store_write_seconds=rows["writes"],
            overhead_fraction=rows["overhead"],
        )

        assert rows["overhead"] < MAX_OVERHEAD, (
            f"store writes cost {rows['overhead'] * 100:.1f}% of sweep wall time "
            f"(budget: {MAX_OVERHEAD * 100:.0f}%)"
        )
