"""Benchmark E-TOUR: generational tournament throughput.

A tournament generation is the unit of evolutionary progress: build the
roster's agents, run every replicate economy, score the genomes, and breed
the next roster.  This benchmark measures **generations per second** on the
smoke tournament (serial, so the number prices the engine itself rather than
a process pool) and, at full scale, appends the measurement to
``BENCH_tournament.json`` at the repository root so the trajectory is tracked
across PRs.  Set ``REPRO_BENCH_SCALE=test`` to run a single-auction variant
that skips the JSON recording.

The determinism gate rides along at every scale: the serial run's canonical
report bytes must match a 2-worker process-pool run of the same tournament.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import print_section, record_bench_entry

from repro.agents.tournament import TournamentEngine
from repro.simulation.catalog import get_tournament
from repro.simulation.runner import ParallelRunner

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_tournament.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"


def tournament_config():
    cfg = get_tournament("smoke-tournament")
    if not FULL_SCALE:
        cfg = replace(cfg, auctions=1)
    return cfg


def test_tournament_generations_per_second(benchmark):
    cfg = tournament_config()
    rows: dict[str, float | str] = {}

    def run_serial():
        start = time.perf_counter()
        report = TournamentEngine(cfg, runner=ParallelRunner(workers=1)).run()
        rows["seconds"] = time.perf_counter() - start
        rows["report"] = report.to_json()
        return report

    benchmark.pedantic(run_serial, rounds=1, iterations=1)

    generations_per_second = cfg.generations / float(rows["seconds"])
    process_report = TournamentEngine(
        cfg, runner=ParallelRunner(workers=2, backend="process")
    ).run()
    assert process_report.to_json() == rows["report"], (
        "tournament report bytes differ between serial and process execution"
    )

    print_section("Tournament throughput (smoke tournament, serial)")
    print(
        f"{cfg.generations} generations x {cfg.replicates} replicates in "
        f"{rows['seconds']:.2f}s  ->  {generations_per_second:.2f} generations/s"
    )

    if FULL_SCALE:
        record_bench_entry(
            BENCH_JSON,
            tournament=cfg.name,
            generations=cfg.generations,
            replicates=cfg.replicates,
            serial_seconds=rows["seconds"],
            generations_per_second=generations_per_second,
            reports_identical=True,
        )
