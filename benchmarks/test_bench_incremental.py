"""Benchmark E-INC: the incremental (delta-driven) demand engine vs batch.

The incremental engine re-evaluates only the bundle rows that touch pools
whose prices moved, retires dropped-out buyers permanently, and patches the
running total-demand vector per changed pool.  Its payoff grows as the clock
matures: late rounds move few pools and most buyers have dropped out.  This
module pins that payoff in three measurements:

* ``test_incremental_round_throughput`` runs full clock auctions over
  synthetic bid populations at 1k / 10k bidders with the batch and the
  incremental engines, asserts bit-identical outcomes, and records the
  rounds/second of each.  Synthetic populations keep most pools moving
  (~70% of rows re-evaluated per round), so this is the engine's *worst*
  regime — near parity is the expectation, not a speedup;
* ``test_incremental_stress_late_rounds`` (marked ``slow``) replays the
  recorded price path of the ``10k-bidder-stress`` preset's first auction
  round by round under both engines and asserts the incremental engine
  clears late rounds (after round 2, moved-pool fraction < 50%) at >= 2x
  the batch engine's rounds/second — the regime the engine exists for;
* ``test_row_fraction_paper_reference`` clears the ``paper-reference``
  preset's first auction on the incremental engine and asserts that after
  round 2 it re-evaluates < 30% of the bundle rows per round on average.

All three merge their measurements into ``BENCH_incremental.json`` at the
repository root (one entry per day, capped history).  Set
``REPRO_BENCH_SCALE=test`` for a reduced sweep that skips the recording and
the full-scale speedup bars.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import print_section, record_bench_entry
from test_bench_batch_engine import build_bids, build_index

from repro.core.batch import BatchDemandEngine
from repro.core.clock_auction import AscendingClockAuction, AuctionConfig
from repro.core.reserve import PAPER_PHI_1, ReservePricer
from repro.simulation.catalog import get_scenario
from repro.simulation.economy import MarketEconomySimulation

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper").lower() != "test"
BIDDER_COUNTS = (1_000, 10_000) if FULL_SCALE else (200, 1_000)
POOL_COUNT_CLUSTERS = 17  # x3 resource types = 51 pools

#: The acceptance bar: late-round rounds/second vs the batch engine on the
#: 10k-bidder stress preset's price path.
REQUIRED_LATE_SPEEDUP = 2.0
#: "Late" rounds: after round 2, with under half the pools moving.
LATE_MOVED_FRACTION = 0.5
#: Row-targeting bar on the paper's own scale: after round 2 the delta
#: kernel re-evaluates under 30% of the bundle rows per round on average.
MAX_MEAN_ROW_FRACTION = 0.30

STRESS_PRESET = "10k-bidder-stress" if FULL_SCALE else "smoke"
REPLAY_REPEATS = 3


def stress_bid_window(preset: str):
    """The preset's first-auction bid window, exactly as an epoch collects it."""
    spec = get_scenario(preset)
    scenario = spec.build()
    sim = MarketEconomySimulation(
        scenario, drift_scale=spec.drift_scale, preliminary_runs=spec.preliminary_runs
    )
    platform = scenario.platform
    platform.open_bid_window()
    sim._refresh_agent_state()
    view = sim._market_view()
    bids = [bid for agent in scenario.agents for bid in agent.prepare_bids(view)]
    index = platform.index
    reserve = ReservePricer(weighting=PAPER_PHI_1).reserve_prices(index)
    supply = index.available() * spec.config.operator_supply_fraction
    return index, bids, reserve, supply


def run_engine(index, bids, reserve, supply, engine: str):
    auction = AscendingClockAuction(
        index, bids, reserve_prices=reserve, supply=supply,
        config=AuctionConfig(engine=engine),
    )
    start = time.perf_counter()
    outcome = auction.run()
    return auction, outcome, time.perf_counter() - start


def assert_identical(batch_outcome, inc_outcome) -> None:
    """Identity first: a fast wrong answer is worthless."""
    assert inc_outcome.round_count == batch_outcome.round_count
    assert inc_outcome.final_prices.tobytes() == batch_outcome.final_prices.tobytes()
    assert inc_outcome.excess_demand.tobytes() == batch_outcome.excess_demand.tobytes()


def test_incremental_round_throughput(benchmark):
    index = build_index(POOL_COUNT_CLUSTERS)
    rng = np.random.default_rng(99)
    reserve = np.ones(len(index))
    supply = index.available() * 0.9
    rows = []

    def measure():
        rows.clear()
        for count in BIDDER_COUNTS:
            bids = build_bids(index, count, rng)
            _, batch_outcome, batch_wall = run_engine(index, bids, reserve, supply, "batch")
            inc_auction, inc_outcome, inc_wall = run_engine(
                index, bids, reserve, supply, "incremental"
            )
            assert_identical(batch_outcome, inc_outcome)
            stats = inc_auction.incremental_stats
            rounds = batch_outcome.round_count
            rows.append(
                {
                    "bidders": count,
                    "pools": len(index),
                    "rounds": rounds,
                    "batch_rounds_per_second": rounds / batch_wall,
                    "incremental_rounds_per_second": rounds / inc_wall,
                    "speedup": batch_wall / inc_wall if inc_wall > 0 else float("inf"),
                    "mean_rows_fraction_after_first": stats[
                        "mean_rows_fraction_after_first"
                    ],
                }
            )
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)

    print_section("Batch vs incremental full clock auctions (synthetic bids)")
    print(f"{'bidders':>8} {'rounds':>7} {'batch r/s':>11} {'inc r/s':>11} {'x':>6} {'rows%':>7}")
    for row in rows:
        print(
            f"{row['bidders']:>8d} {row['rounds']:>7d} "
            f"{row['batch_rounds_per_second']:>11.1f} "
            f"{row['incremental_rounds_per_second']:>11.1f} "
            f"{row['speedup']:>5.2f}x {row['mean_rows_fraction_after_first'] * 100:>6.1f}"
        )

    if FULL_SCALE:
        record_bench_entry(BENCH_JSON, merge=True, throughput=rows)


@pytest.mark.slow
def test_incremental_stress_late_rounds(benchmark):
    """Replay the stress preset's price path: late rounds must clear >= 2x.

    A full batch auction run records the price trajectory; both engines then
    replay it round by round (best-of-``REPLAY_REPEATS``, responses checked
    bitwise each round).  The acceptance bar is on the late rounds — after
    round 2, with under half the pools still moving — where retirement and
    delta targeting concentrate the engine's advantage.
    """
    index, bids, reserve, supply = stress_bid_window(STRESS_PRESET)
    _, outcome, _ = run_engine(index, bids, reserve, supply, "batch")
    path = [r.prices for r in outcome.rounds]
    engine = BatchDemandEngine(index, bids)
    engine.respond_all(path[0])  # build the stacked matrices off the clock

    measured: dict[str, object] = {}

    def replay():
        batch_best = None
        for _ in range(REPLAY_REPEATS):
            timings = []
            for prices in path:
                start = time.perf_counter()
                engine.respond_all(prices)
                timings.append(time.perf_counter() - start)
            if batch_best is None or sum(timings) < sum(batch_best):
                batch_best = timings
        inc_best, state = None, None
        for _ in range(REPLAY_REPEATS):
            trial_state = engine.incremental()
            timings = []
            for prices in path:
                start = time.perf_counter()
                trial_state.advance(prices)
                timings.append(time.perf_counter() - start)
            if inc_best is None or sum(timings) < sum(inc_best):
                inc_best, state = timings, trial_state
        measured["batch"] = batch_best
        measured["incremental"] = inc_best
        measured["state"] = state
        return measured

    benchmark.pedantic(replay, rounds=1, iterations=1)

    # Bitwise identity of the replayed rounds (totals and activity).
    check = engine.incremental()
    for prices in path:
        response = check.respond_delta(prices)
        want = engine.respond_all(prices)
        assert response.total.tobytes() == want.total.tobytes()
        assert response.active.tobytes() == want.active.tobytes()

    moved_fraction = [1.0] + [
        float(np.mean(path[i] != path[i - 1])) for i in range(1, len(path))
    ]
    late = [i for i in range(2, len(path)) if moved_fraction[i] < LATE_MOVED_FRACTION]

    def late_sums():
        batch_times = measured["batch"]
        inc_times = measured["incremental"]
        late_batch = sum(batch_times[i] for i in late)
        late_inc = sum(inc_times[i] for i in late)
        speedup = late_batch / late_inc if late_inc > 0 else float("inf")
        return batch_times, inc_times, late_batch, late_inc, speedup

    batch_times, inc_times, late_batch, late_inc, late_speedup = late_sums()
    if late and late_speedup < REQUIRED_LATE_SPEEDUP:
        # One retry before failing: a single scheduling hiccup on a noisy
        # shared runner should not turn the bench red.
        replay()
        batch_times, inc_times, late_batch, late_inc, late_speedup = late_sums()
    stats = measured["state"].stats()
    row = {
        "preset": STRESS_PRESET,
        "bidders": len(bids),
        "pools": len(index),
        "bundle_rows": stats["bundle_rows"],
        "rounds": len(path),
        "late_rounds": len(late),
        "mean_late_moved_fraction": (
            float(np.mean([moved_fraction[i] for i in late])) if late else 0.0
        ),
        "full_path_speedup": sum(batch_times) / sum(inc_times),
        "late_batch_rounds_per_second": len(late) / late_batch if late_batch else 0.0,
        "late_incremental_rounds_per_second": len(late) / late_inc if late_inc else 0.0,
        "late_speedup": late_speedup,
        "rows_fraction_per_round": [
            round(r / stats["bundle_rows"], 4) for r in stats["rows_evaluated"]
        ],
    }

    print_section(f"Incremental vs batch replay ({STRESS_PRESET})")
    print(
        f"bidders={row['bidders']} pools={row['pools']} rounds={row['rounds']} "
        f"late={row['late_rounds']} (moved < {LATE_MOVED_FRACTION * 100:.0f}%)"
    )
    print(
        f"full path {row['full_path_speedup']:.2f}x   late rounds "
        f"{row['late_batch_rounds_per_second']:.1f} -> "
        f"{row['late_incremental_rounds_per_second']:.1f} rounds/s "
        f"({late_speedup:.2f}x)"
    )

    if FULL_SCALE:
        record_bench_entry(BENCH_JSON, merge=True, stress_late_rounds=row)
        assert late, "stress path produced no late rounds to measure"
        assert late_speedup >= REQUIRED_LATE_SPEEDUP, row


def test_row_fraction_paper_reference(benchmark):
    """The paper's own scale: < 30% of rows re-evaluated after round 2."""
    index, bids, reserve, supply = stress_bid_window("paper-reference")
    results: dict[str, object] = {}

    def measure():
        results.clear()
        auction, outcome, wall = run_engine(index, bids, reserve, supply, "incremental")
        results["stats"] = auction.incremental_stats
        results["rounds"] = outcome.round_count
        results["wall"] = wall
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)

    stats = results["stats"]
    k = stats["bundle_rows"]
    fractions = [r / k for r in stats["rows_evaluated"]]
    after_round_2 = fractions[2:]
    mean_after_2 = float(np.mean(after_round_2)) if after_round_2 else 0.0
    row = {
        "bidders": len(bids),
        "bundle_rows": k,
        "rounds": results["rounds"],
        "retired_bidders": stats["retired_bidders"],
        "mean_rows_fraction_after_round_2": mean_after_2,
        "rows_fraction_per_round": [round(f, 4) for f in fractions],
    }

    print_section("Incremental row targeting (paper-reference)")
    print(
        f"rounds={row['rounds']} bundle_rows={k} retired={row['retired_bidders']} "
        f"mean rows after round 2: {mean_after_2 * 100:.1f}%"
    )

    if FULL_SCALE:
        record_bench_entry(BENCH_JSON, merge=True, paper_reference=row)
    assert results["rounds"] > 2, "paper-reference auction ended before round 3"
    assert mean_after_2 < MAX_MEAN_ROW_FRACTION, row
