"""Benchmark E-ABL-R: ablation of the congestion-weighted reserve pricing."""

from conftest import print_section

from repro.experiments.ablation_reserve import run_ablation_reserve


def test_reserve_pricing_ablation(benchmark, bench_config):
    """Compare flat-cost reserves against the three Figure 2 weighting curves."""
    result = benchmark.pedantic(run_ablation_reserve, args=(bench_config,), rounds=1, iterations=1)

    print_section("Ablation: reserve pricing — flat cost vs congestion-weighted (Section IV)")
    print(
        f"{'weighting':<22} {'bid pct':>8} {'offer pct':>10} {'bid@idle':>9} "
        f"{'settled':>8} {'spread':>8} {'congested premium':>18}"
    )
    for row in result.rows:
        print(
            f"{row.weighting:<22} {row.median_bid_percentile:>8.1f} {row.median_offer_percentile:>10.1f} "
            f"{row.bid_share_in_underutilized:>8.1%} {row.settled_fraction:>7.1%} "
            f"{row.utilization_spread_after:>8.3f} {row.congested_premium:>18.2f}"
        )

    flat = result.row("flat")
    phi1 = result.row("phi1")

    # Congestion weighting must steer bid-side demand towards idle pools more
    # strongly than flat pricing, and must open a larger price gap between
    # congested and idle clusters (that gap is the signal the operator wants).
    assert phi1.bid_share_in_underutilized > flat.bid_share_in_underutilized
    assert phi1.congested_premium > flat.congested_premium
    assert phi1.median_bid_percentile <= flat.median_bid_percentile
    # All weighted variants keep a functioning market (some trades settle).
    for row in result.rows:
        assert row.settled_fraction > 0.1
