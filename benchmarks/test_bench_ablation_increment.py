"""Benchmark E-ABL-G: ablation of the price-increment policy g(x, p)."""

from conftest import print_section

from repro.experiments.ablation_increment import run_ablation_increment


def test_increment_policy_ablation(benchmark):
    """Compare the naive, capped, normalized, and proportional increment policies."""
    result = benchmark.pedantic(run_ablation_increment, rounds=1, iterations=1)

    print_section("Ablation: price-increment policy g(x, p) (Section III-C-2)")
    print(f"{'policy':<46} {'converged':>10} {'rounds':>7} {'active':>8} {'disk/CPU ratio skew':>20}")
    for row in result.rows:
        print(
            f"{row.policy:<46} {str(row.converged):>10} {row.rounds:>7d} "
            f"{row.settled_like_fraction:>7.1%} {row.disk_to_cpu_ratio_skew:>20.3f}"
        )

    naive = result.row("additive")
    capped = result.row("capped")
    normalized = result.row("normalized")
    proportional = result.row("proportional")

    # The paper's point: the naive alpha*z+ update mishandles pools with very
    # different unit scales — disk prices end up wildly out of proportion to
    # CPU prices — while the capped / normalized / proportional forms keep the
    # final prices in line and still converge.
    for row in (capped, normalized, proportional):
        assert row.converged
        assert row.disk_to_cpu_ratio_skew < naive.disk_to_cpu_ratio_skew / 10
    assert naive.disk_to_cpu_ratio_skew > 10.0
