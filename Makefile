PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test doctest bench bench-smoke check

## tier-1: full unit/property/integration suite plus quick benchmarks
test:
	$(PYTHON) -m pytest -x -q

## run every docstring example in repro.core and repro.bidlang
doctest:
	$(PYTHON) -m pytest --doctest-modules src/repro/core src/repro/bidlang -q

## paper-scale benchmarks (regenerates the paper's tables/figures)
bench:
	$(PYTHON) -m pytest benchmarks -q

## reduced-scale benchmark smoke check
bench-smoke:
	REPRO_BENCH_SCALE=test $(PYTHON) -m pytest benchmarks -q

## everything CI runs
check: test doctest
