PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Port the smoke target's remote-backend leg listens on (localhost only).
SMOKE_PORT ?= 7351

.PHONY: test doctest bench bench-smoke smoke chaos equivalence check

## tier-1: full unit/property/integration suite plus quick benchmarks
test:
	$(PYTHON) -m pytest -x -q

## run every docstring example in the documented packages
doctest:
	$(PYTHON) -m pytest --doctest-modules src/repro/core src/repro/bidlang src/repro/cluster src/repro/simulation src/repro/results src/repro/mechanisms src/repro/exec src/repro/agents src/repro/cli.py -q

## paper-scale benchmarks (regenerates the paper's tables/figures)
bench:
	$(PYTHON) -m pytest benchmarks -q

## reduced-scale benchmark smoke check
bench-smoke:
	REPRO_BENCH_SCALE=test $(PYTHON) -m pytest benchmarks -q

## scenario CLI + quickstart example smoke runs (docs/examples can't rot);
## the runs persist into the result store — market and one baseline, so the
## mechanism comparison verbs have two mechanisms to diff — and `results
## show` / `compare-mechanisms` read it back (CI uploads the store file as a
## workflow artifact and gates the next PR against it).  The final leg runs
## the same sweep through the distributed backend (2 localhost workers, one
## deliberately streaming jobs to the coordinator over TCP) and through the
## process pool, and diffs the two canonical reports byte for byte — the
## execution-fabric determinism contract, checked on every CI run.  A
## 2-generation smoke tournament exercises the evolving-bidder pipeline
## (traits -> roster -> generations) end to end through the CLI.
smoke:
	$(PYTHON) -m pytest tests/core/test_engine_equivalence.py -q \
	    -k "smoke or Auction or RoundZero or Convergence"
	$(PYTHON) -m repro run paper-reference --workers 1
	$(PYTHON) -m repro tournament smoke-tournament --workers 1 --no-store
	$(PYTHON) -m repro run paper-reference --workers 1 --mechanism fixed-price
	$(PYTHON) -m repro results list
	$(PYTHON) -m repro results show paper-reference --mechanism market
	$(PYTHON) -m repro compare-mechanisms paper-reference
	$(PYTHON) examples/quickstart.py
	$(PYTHON) -m repro worker --connect 127.0.0.1:$(SMOKE_PORT) --id smoke-w1 --retry 60 &
	$(PYTHON) -m repro worker --connect 127.0.0.1:$(SMOKE_PORT) --id smoke-w2 --retry 60 &
	$(PYTHON) -m repro sweep smoke --mechanism all --backend remote \
	    --bind 127.0.0.1:$(SMOKE_PORT) --workers 2 --no-store --json \
	    --out smoke-report-remote.json > /dev/null
	$(PYTHON) -m repro sweep smoke --mechanism all --backend process --no-store \
	    --json --out smoke-report-process.json > /dev/null
	cmp smoke-report-remote.json smoke-report-process.json
	rm -f smoke-report-remote.json smoke-report-process.json

## deterministic fault-injection suite for the persistent worker fleet:
## scripted kills / dropped heartbeats / delayed and duplicated frames
## (seeded, replayable), the job-queue state machine, and the control
## plane + HMAC handshake (see docs/testing.md)
chaos:
	$(PYTHON) -m pytest tests/exec/test_chaos.py tests/exec/test_queue.py \
	    tests/exec/test_control.py tests/property/test_property_queue.py -q

## differential-equivalence harness: scalar vs batch vs incremental vs
## sharded demand engines must produce byte-identical canonical reports and
## round traces on every non-stress catalog preset (plus the sharding and
## incremental-kernel property suites) — engine drift fails the build here,
## not just in the benchmarks
equivalence:
	$(PYTHON) -m pytest tests/core/test_engine_equivalence.py \
	    tests/property/test_property_sharding.py \
	    tests/property/test_property_incremental.py -q

## everything CI runs
check: test doctest chaos equivalence smoke
