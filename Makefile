PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test doctest bench bench-smoke smoke check

## tier-1: full unit/property/integration suite plus quick benchmarks
test:
	$(PYTHON) -m pytest -x -q

## run every docstring example in the documented packages
doctest:
	$(PYTHON) -m pytest --doctest-modules src/repro/core src/repro/bidlang src/repro/cluster src/repro/simulation src/repro/results src/repro/mechanisms src/repro/cli.py -q

## paper-scale benchmarks (regenerates the paper's tables/figures)
bench:
	$(PYTHON) -m pytest benchmarks -q

## reduced-scale benchmark smoke check
bench-smoke:
	REPRO_BENCH_SCALE=test $(PYTHON) -m pytest benchmarks -q

## scenario CLI + quickstart example smoke runs (docs/examples can't rot);
## the runs persist into the result store — market and one baseline, so the
## mechanism comparison verbs have two mechanisms to diff — and `results
## show` / `compare-mechanisms` read it back (CI uploads the store file as a
## workflow artifact and gates the next PR against it)
smoke:
	$(PYTHON) -m repro run paper-reference --workers 1
	$(PYTHON) -m repro run paper-reference --workers 1 --mechanism fixed-price
	$(PYTHON) -m repro results list
	$(PYTHON) -m repro results show paper-reference --mechanism market
	$(PYTHON) -m repro compare-mechanisms paper-reference
	$(PYTHON) examples/quickstart.py

## everything CI runs
check: test doctest smoke
