PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test doctest bench bench-smoke smoke check

## tier-1: full unit/property/integration suite plus quick benchmarks
test:
	$(PYTHON) -m pytest -x -q

## run every docstring example in the documented packages
doctest:
	$(PYTHON) -m pytest --doctest-modules src/repro/core src/repro/bidlang src/repro/cluster src/repro/simulation src/repro/results src/repro/cli.py -q

## paper-scale benchmarks (regenerates the paper's tables/figures)
bench:
	$(PYTHON) -m pytest benchmarks -q

## reduced-scale benchmark smoke check
bench-smoke:
	REPRO_BENCH_SCALE=test $(PYTHON) -m pytest benchmarks -q

## scenario CLI + quickstart example smoke runs (docs/examples can't rot);
## the run persists into the result store, which `results show` then reads
## back (CI uploads the store file as a workflow artifact)
smoke:
	$(PYTHON) -m repro run paper-reference --workers 1
	$(PYTHON) -m repro results list
	$(PYTHON) -m repro results show paper-reference
	$(PYTHON) examples/quickstart.py

## everything CI runs
check: test doctest smoke
