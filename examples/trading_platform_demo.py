#!/usr/bin/env python
"""Trading-platform walkthrough: the two-step bid entry and the market summary.

Mirrors the workflow of the paper's internal web application (Figures 3-5):

1. teams are registered with budget-dollar endowments;
2. a bid window opens and the market-summary page lists per-cluster activity
   and current prices;
3. a team expresses its need in *service* terms ("40 units of a Bigtable-like
   serving service in cluster X, or cluster Y would also do"), the platform
   quotes the covering CPU/RAM/disk amounts and their current prices, and the
   team attaches a maximum bid;
4. preliminary clock-auction runs update the displayed prices during the window;
5. the final binding run settles budgets and quota holdings.

Run with::

    python examples/trading_platform_demo.py
"""

from __future__ import annotations

from repro.bidlang import cluster_bundle, xor
from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.market import ServiceRequest, TradingPlatform, render_market_summary


def main() -> None:
    fleet = generate_fleet(FleetSpec(cluster_count=8, machines_range=(20, 60)), seed=7)
    platform = TradingPlatform(fleet.pool_index, fixed_prices=fleet.fixed_prices)

    clusters = fleet.pool_index.clusters()
    congested = max(clusters, key=lambda c: fleet.pool_index.pool(f"{c}/cpu").utilization)
    idle = min(clusters, key=lambda c: fleet.pool_index.pool(f"{c}/cpu").utilization)

    # 1. Register teams with budget endowments (and one team with quota to sell).
    platform.register_team("search-serving", budget=100_000)
    platform.register_team("ads-batch", budget=60_000)
    platform.register_team("photos-storage", budget=40_000)
    platform.register_team(
        "legacy-pipeline",
        budget=20_000,
        initial_quota={f"{congested}/cpu": 500, f"{congested}/ram": 2_000, f"{congested}/disk": 20_000},
    )

    auction_id = platform.open_bid_window()
    print(f"Opened bid window for auction #{auction_id}\n")

    # 2. The market-summary page before any orders arrive.
    print(render_market_summary(platform.market_summary(), max_rows=8))

    # 3. Two-step bid entry for a service-level request.
    request = ServiceRequest(service="bigtable_serving", cluster=congested, quantity=40)
    ticket = platform.quote("search-serving", request, alternative_clusters=[idle])
    print("\nQuote for search-serving (40 units of bigtable_serving):")
    for bundle, cost in zip(ticket.bundles, ticket.bundle_costs()):
        print(f"  covering bundle {bundle} -> {cost:,.0f} budget dollars at current prices")
    platform.submit_quoted_bid(ticket, max_payment=ticket.estimated_cost * 1.25)

    # A tree-language bid: batch compute that can land in either of two clusters.
    tree = xor(
        cluster_bundle(idle, cpu=200, ram=600, disk=4_000),
        cluster_bundle(clusters[1], cpu=200, ram=600, disk=4_000),
    )
    platform.submit_tree_bid("ads-batch", tree, limit=9_000, service="batch_compute")

    # A storage request quoted in the cheapest cluster.
    storage = platform.quote("photos-storage", ServiceRequest("gfs_storage", idle, 25))
    platform.submit_quoted_bid(storage, max_payment=storage.estimated_cost * 1.1)

    # The legacy pipeline sells the congested quota it no longer needs.
    from repro.core import Bid

    platform.submit_bid(
        Bid.sell(
            "legacy-pipeline",
            platform.index,
            [{f"{congested}/cpu": 400, f"{congested}/ram": 1_600, f"{congested}/disk": 16_000}],
            min_revenue=2_000,
        )
    )

    # 4. Preliminary run: the front end refreshes its displayed prices.
    platform.run_preliminary()
    print("\nMarket summary after the preliminary clock-auction run:")
    print(render_market_summary(platform.market_summary(), max_rows=8))

    # 5. The binding run.
    record = platform.finalize_auction()
    print(f"\nAuction #{record.auction_id} settled {record.settled_fraction:.0%} of orders "
          f"in {record.result.rounds} clock rounds")
    print("\nBudgets and holdings after settlement:")
    for team in ("search-serving", "ads-batch", "photos-storage", "legacy-pipeline"):
        balance = platform.ledger.balance(team)
        holdings = platform.quotas.holdings_map(team)
        print(f"  {team:<16} balance={balance:>12,.0f}  quota={holdings}")


if __name__ == "__main__":
    main()
