#!/usr/bin/env python
"""Operator decision support: turning auction price signals into capacity plans.

The paper frames the final prices as signals to the operator: a persistent
premium over cost in a pool means a shortage the operator should address by
adding capacity, while pools that clear below cost with low utilization are
candidates for reclamation.  This example runs one auction over a synthetic
fleet, prints the capacity recommendations derived from the price signals,
applies the "grow" recommendations, re-runs the auction on the expanded
fleet, and shows how the congestion premium relaxes.

It also compares the three budget-endowment policies the market could be
bootstrapped with.

Run with::

    python examples/operator_decision_support.py
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import MarketView
from repro.agents.population import PopulationSpec, build_population
from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.core import CombinatorialExchange
from repro.market import (
    CapacityAction,
    EndowmentPolicy,
    apply_recommendations,
    plan_endowments,
    recommend_capacity_actions,
    summarize_actions,
)
from repro.market.services import default_catalog


def collect_bids(fleet, index, seed=0, team_count=60):
    catalog = default_catalog()
    agents = build_population(fleet, PopulationSpec(team_count=team_count), catalog=catalog, seed=seed)
    view = MarketView(
        index=index,
        displayed_prices={p.name: p.unit_cost for p in index},
        fixed_prices=dict(fleet.fixed_prices),
        auction_number=1,
        topology=fleet.topology,
    )
    bids = []
    for agent in agents:
        bids.extend(agent.prepare_bids(view))
    return bids, agents


def congestion_premium(result, index):
    ratios = result.outcome.final_prices / np.maximum(index.unit_costs(), 1e-9)
    hot = [ratios[i] for i, p in enumerate(index) if p.utilization > 0.75]
    return float(np.mean(hot)) if hot else 1.0


def main() -> None:
    fleet = generate_fleet(FleetSpec(cluster_count=16, machines_range=(20, 80)), seed=17)
    index = fleet.pool_index
    bids, agents = collect_bids(fleet, index, seed=17)

    result = CombinatorialExchange(index, strict_validation=False).run(bids)
    recommendations = recommend_capacity_actions(result)
    print("Capacity recommendations after auction #1:", summarize_actions(recommendations))
    for rec in recommendations:
        if rec.action is not CapacityAction.HOLD:
            print(f"  {rec.pool:<18} {rec.action.value:<8} delta={rec.suggested_delta:>12.0f}  ({rec.reason})")

    before = congestion_premium(result, index)
    expanded = apply_recommendations(index, recommendations, only=CapacityAction.GROW)
    result_after = CombinatorialExchange(expanded, strict_validation=False).run(bids)
    after = congestion_premium(result_after, expanded)
    print(f"\nMean price/cost ratio in congested pools: {before:.2f}x before build-out, {after:.2f}x after")

    # Budget-endowment policies for bootstrapping the market.
    usage = {
        agent.name: agent.demand.covering_bundle(agent.catalog, index)
        for agent in agents[:20]
    }
    total_budget = 1_000_000.0
    print("\nEndowment policies (first 3 teams shown):")
    for policy in EndowmentPolicy:
        plan = plan_endowments(index, usage, total_budget, policy=policy)
        sample = {team: round(plan.share_of(team)) for team in list(usage)[:3]}
        print(f"  {policy.value:<20} {sample}")


if __name__ == "__main__":
    main()
