#!/usr/bin/env python
"""Multi-auction economy: six periodic auctions with learning agents.

Reproduces the longitudinal structure of the paper's experiment (Section V-B/C):
a ~34-cluster fleet, ~100 engineering-team agents with a realistic mix of
bidding behaviours, and six periodic clock auctions with congestion-weighted
reserve prices.  Prints the Table I premium statistics, the Figure 7 migration
summary, and how the utilization spread across pools evolves.

Run with::

    python examples/multi_auction_economy.py
"""

from __future__ import annotations

from repro.agents.population import strategy_counts
from repro.analysis.reports import render_boxplots, render_premium_table
from repro.analysis.utilization_stats import figure7_boxplots
from repro.experiments.config import PAPER_SCALE
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.scenario import build_scenario


def main() -> None:
    scenario = build_scenario(PAPER_SCALE.scenario_config())
    print(
        f"Scenario: {len(scenario.fleet.clusters)} clusters, "
        f"{len(scenario.pool_index)} resource pools, {len(scenario.agents)} teams"
    )
    print("Strategy mix:", strategy_counts(scenario.agents))

    sim = MarketEconomySimulation(scenario)
    history = sim.run(PAPER_SCALE.auctions)

    print()
    print(render_premium_table(history.premium_rows()))

    print("\nMedian bid premium per auction:", [round(x, 3) for x in history.median_premium_series()])
    print("Utilization spread after each auction:", [round(x, 3) for x in history.utilization_spread_series()])

    print("\nPooled settled trades across all auctions (Figure 7 view):")
    print(render_boxplots(figure7_boxplots(history.settlements())))

    last = history.periods[-1]
    print("\nLast auction migration summary:")
    for key, value in last.migration.items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
