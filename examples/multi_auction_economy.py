#!/usr/bin/env python
"""Multi-auction economy: six periodic auctions with learning agents.

Reproduces the longitudinal structure of the paper's experiment (Section V-B/C)
by running the ``paper-reference`` scenario from the catalog: a ~34-cluster
fleet, ~100 engineering-team agents with a realistic mix of bidding
behaviours, and six periodic clock auctions with congestion-weighted reserve
prices.  Prints the Table I premium statistics, the Figure 7 migration
summary, and how the utilization spread across pools evolves.

Run with::

    python examples/multi_auction_economy.py

The same scenario (and its siblings — run ``python -m repro list``) is
available from the command line::

    python -m repro run paper-reference
"""

from __future__ import annotations

from repro.agents.population import strategy_counts
from repro.analysis.reports import render_boxplots, render_premium_table
from repro.analysis.utilization_stats import figure7_boxplots
from repro.simulation.catalog import get_scenario
from repro.simulation.economy import MarketEconomySimulation


def main() -> None:
    spec = get_scenario("paper-reference")
    scenario = spec.build()
    print(f"Scenario: {spec.name} — {spec.description}")
    print(
        f"  {len(scenario.fleet.clusters)} clusters, "
        f"{len(scenario.pool_index)} resource pools, {len(scenario.agents)} teams"
    )
    print("Strategy mix:", strategy_counts(scenario.agents))

    sim = MarketEconomySimulation(scenario, drift_scale=spec.drift_scale)
    history = sim.run(spec.auctions)

    print()
    print(render_premium_table(history.premium_rows()))

    print("\nMedian bid premium per auction:", [round(x, 3) for x in history.median_premium_series()])
    print("Utilization spread after each auction:", [round(x, 3) for x in history.utilization_spread_series()])

    print("\nPooled settled trades across all auctions (Figure 7 view):")
    print(render_boxplots(figure7_boxplots(history.settlements())))

    last = history.periods[-1]
    print("\nLast auction migration summary:")
    for key, value in last.migration.items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
