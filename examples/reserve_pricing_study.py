#!/usr/bin/env python
"""Reserve-pricing study: the Figure 2 curves and what they do to reserve prices.

Sweeps the three weighting functions of Figure 2 over the utilization range,
verifies the five Section IV-A properties, and then applies each curve to a
synthetic fleet to show how the reserve price of a congested cluster compares
to an idle one under each policy.

Run with::

    python examples/reserve_pricing_study.py
"""

from __future__ import annotations

from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.core.reserve import (
    PAPER_PHI_1,
    PAPER_PHI_2,
    PAPER_PHI_3,
    FlatWeight,
    ReservePricer,
    check_weighting_properties,
    sweep_curve,
)
from repro.experiments.figure2 import run_figure2


def main() -> None:
    # 1. The Figure 2 curves, sampled like the published plot.
    result = run_figure2(points=11)
    print("Figure 2 curves (price multiple at sampled utilizations):")
    xs = result.curves[0].xs
    header = "  utilization: " + "  ".join(f"{x * 100:5.0f}%" for x in xs)
    print(header)
    for curve in result.curves:
        values = "  ".join(f"{y:6.2f}" for y in curve.ys)
        print(f"  {curve.label:<26} {values}")

    # 2. Property checks (Section IV-A).
    print("\nWeighting-function properties:")
    for label, phi in (("phi1", PAPER_PHI_1), ("phi2", PAPER_PHI_2), ("phi3", PAPER_PHI_3), ("flat", FlatWeight(1.0))):
        props = check_weighting_properties(phi)
        print(f"  {label:<5} " + "  ".join(f"{name}={'ok' if ok else 'NO'}" for name, ok in props.items()))

    # 3. Applied to a fleet: what the operator would actually charge.
    fleet = generate_fleet(FleetSpec(cluster_count=10, machines_range=(20, 60)), seed=3)
    index = fleet.pool_index
    clusters = index.clusters()
    congested = max(clusters, key=lambda c: index.pool(f"{c}/cpu").utilization)
    idle = min(clusters, key=lambda c: index.pool(f"{c}/cpu").utilization)
    print(f"\nReserve price of CPU in the most congested ({congested}) vs most idle ({idle}) cluster:")
    print(f"  unit cost c(r) = {index.pool(f'{congested}/cpu').unit_cost:.2f} budget dollars per core")
    for label, phi in (("flat", FlatWeight(1.0)), ("phi1", PAPER_PHI_1), ("phi2", PAPER_PHI_2), ("phi3", PAPER_PHI_3)):
        prices = ReservePricer(weighting=phi).reserve_price_map(index)
        ratio = prices[f"{congested}/cpu"] / prices[f"{idle}/cpu"]
        print(
            f"  {label:<5} congested={prices[f'{congested}/cpu']:7.2f}  idle={prices[f'{idle}/cpu']:7.2f}  "
            f"congested/idle={ratio:5.2f}x"
        )

    # 4. The full sampled series is available for plotting elsewhere.
    xs, ys = sweep_curve(PAPER_PHI_1, points=101)
    print(f"\nphi1 sampled at {len(xs)} points; e.g. phi1(0.99) = {PAPER_PHI_1(0.99):.3f}")


if __name__ == "__main__":
    main()
