#!/usr/bin/env python
"""Bidding-language tour: expressing combinatorial preferences as bid trees.

Shows the TBBL-like tree bidding language end to end: building trees with the
fluent constructors, parsing the s-expression and JSON syntaxes, flattening
trees into the XOR bundle sets the clock auction consumes, and validating a
bid tree against the live pool index.

Run with::

    python examples/bidding_language_tour.py
"""

from __future__ import annotations

from repro.bidlang import (
    and_,
    choose,
    cluster_bundle,
    flatten,
    parse_json,
    parse_sexpr,
    pool,
    tree_bid,
    validate_tree,
    xor,
)
from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.core import CombinatorialExchange


def main() -> None:
    fleet = generate_fleet(FleetSpec(cluster_count=4, machines_range=(20, 40)), seed=5)
    index = fleet.pool_index
    c0, c1, c2, c3 = index.clusters()

    # 1. Fluent constructors: "my serving stack in c0, or the same stack in c1,
    #    or split the cache across any two of c1/c2/c3".
    serving = and_(pool(f"{c0}/cpu", 120), pool(f"{c0}/ram", 480), pool(f"{c0}/disk", 2_000))
    tree = xor(
        serving,
        cluster_bundle(c1, cpu=120, ram=480, disk=2_000),
        choose(
            2,
            cluster_bundle(c1, cpu=60, ram=240, disk=1_000),
            cluster_bundle(c2, cpu=60, ram=240, disk=1_000),
            cluster_bundle(c3, cpu=60, ram=240, disk=1_000),
        ),
    )
    print("Bid tree (s-expression form):")
    print(" ", tree.to_sexpr())

    combos = flatten(tree)
    print(f"\nFlattens into {len(combos)} alternative bundles (XOR indifference set):")
    for combo in combos:
        print("  ", combo)

    # 2. The same tree round-trips through the textual syntax...
    reparsed = parse_sexpr(tree.to_sexpr())
    assert reparsed == tree
    # ...and an equivalent JSON form parses to an equal structure.
    json_tree = parse_json(
        {
            "xor": [
                {"cluster": c0, "cpu": 120, "ram": 480, "disk": 2_000},
                {"cluster": c1, "cpu": 120, "ram": 480, "disk": 2_000},
            ]
        }
    )
    print(f"\nParsed JSON variant has {len(flatten(json_tree))} alternatives")

    # 3. Validation catches unknown pools and absurd quantities.
    problems = validate_tree(xor(pool("nonexistent/cpu", 5), pool(f"{c0}/cpu", 10**9)), index)
    print("\nValidation problems for a bad tree:")
    for problem in problems:
        print("  -", problem)

    # 4. A tree becomes a sealed bid and can go straight into the exchange.
    bid = tree_bid("web-serving-team", tree, index, limit=8_000, service="web_serving")
    result = CombinatorialExchange(index).run([bid])
    line = result.settlement.line_for("web-serving-team")
    print(f"\nAuction outcome for the tree bid: won={line.won}, payment={line.payment:.2f}")
    if line.won:
        print("  awarded bundle:", result.settlement.allocation_map("web-serving-team"))


if __name__ == "__main__":
    main()
