#!/usr/bin/env python
"""Quickstart: run one congestion-priced clock auction end to end.

This example builds a small synthetic fleet, computes congestion-weighted
reserve prices, submits a handful of hand-written bids (including an XOR bid
that is indifferent between two clusters and a selling team), runs the
ascending clock auction, and prints the settled prices and allocations.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.core import Bid, CombinatorialExchange, ExponentialWeight, ReservePricer


def main() -> None:
    # 1. A small planet-wide fleet: 6 clusters spanning idle to congested.
    fleet = generate_fleet(FleetSpec(cluster_count=6, machines_range=(20, 60)), seed=42)
    index = fleet.pool_index
    print("Resource pools and their pre-auction utilization:")
    for pool in index:
        print(f"  {pool.name:<18} capacity={pool.capacity:>12.0f}  utilization={pool.utilization:5.1%}")

    # 2. Congestion-weighted reserve prices (phi_1 of Figure 2).
    pricer = ReservePricer(weighting=ExponentialWeight(steepness=2.0))
    reserves = pricer.reserve_price_map(index)
    print("\nReserve prices (congested pools priced above cost, idle pools below):")
    for cluster in index.clusters()[:3]:
        cpu = index.pool(f"{cluster}/cpu")
        print(
            f"  {cluster}/cpu: cost={cpu.unit_cost:.2f}  reserve={reserves[f'{cluster}/cpu']:.2f}  "
            f"(utilization {cpu.utilization:.0%})"
        )

    # 3. A few sealed bids.
    clusters = index.clusters()
    congested = max(clusters, key=lambda c: index.pool(f"{c}/cpu").utilization)
    idle = min(clusters, key=lambda c: index.pool(f"{c}/cpu").utilization)

    def covering(cluster: str, cpu: float) -> dict[str, float]:
        return {f"{cluster}/cpu": cpu, f"{cluster}/ram": cpu * 4, f"{cluster}/disk": cpu * 60}

    bids = [
        # A team indifferent between the congested and the idle cluster: the
        # market should hand it the idle one.
        Bid.buy("team-flexible", index, [covering(congested, 50), covering(idle, 50)], max_payment=3_000),
        # A team that insists on the congested cluster and pays a premium.
        Bid.buy("team-sticky", index, [covering(congested, 40)], max_payment=12_000),
        # A team that bid too little and should lose.
        Bid.buy("team-lowball", index, [covering(idle, 80)], max_payment=150),
        # A team selling quota it holds in the congested cluster.
        Bid.sell("team-downsizer", index, [covering(congested, 30)], min_revenue=500),
    ]

    # 4. Run the exchange: reserve pricing -> clock auction -> settlement.
    exchange = CombinatorialExchange(index, weighting=ExponentialWeight(steepness=2.0))
    result = exchange.run(bids)

    print(f"\nClock auction cleared in {result.rounds} rounds; constraints satisfied: {result.constraints.satisfied}")
    print("\nSettlement:")
    for line in result.settlement.lines:
        status = "WON " if line.won else "lost"
        payment = f"pays {line.payment:9.2f}" if line.payment >= 0 else f"receives {-line.payment:9.2f}"
        allocation = result.settlement.index.describe(line.allocation) if line.won else {}
        print(f"  {line.bidder:<16} {status}  {payment}  {allocation}")

    print("\nSettled unit prices vs the old fixed prices:")
    ratios = result.price_ratio_to(fleet.fixed_prices)
    for cluster in (congested, idle):
        name = f"{cluster}/cpu"
        print(f"  {name:<18} market/fixed = {ratios[name]:.2f}")


if __name__ == "__main__":
    main()
