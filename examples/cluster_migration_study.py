#!/usr/bin/env python
"""Cluster-migration study: how relocation costs shape who moves and who pays.

The paper observes two opposite behaviours in congested clusters: large teams
that sell their quota and move to cheaper clusters, and teams that pay a big
premium to stay because re-engineering their service for another cluster is
expensive.  This example isolates that trade-off: the same demand is simulated
under three relocation-cost regimes (cheap, realistic, prohibitive) and the
example reports how much bid-side demand escapes the congested clusters in
each regime.

Run with::

    python examples/cluster_migration_study.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.agents.population import PopulationSpec
from repro.agents.relocation import RelocationCostModel
from repro.agents.strategies import RelocatorStrategy
from repro.analysis.utilization_stats import migration_summary
from repro.cluster.fleet_gen import FleetSpec
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.scenario import ScenarioConfig, build_scenario


def run_regime(label: str, relocation: RelocationCostModel) -> dict[str, float]:
    config = ScenarioConfig(
        fleet=FleetSpec(cluster_count=16, machines_range=(20, 80)),
        population=PopulationSpec(
            team_count=60,
            strategy_mix={"relocator": 0.55, "premium_payer": 0.15, "market_tracker": 0.20, "seller": 0.10},
        ),
        seed=11,
    )
    scenario = build_scenario(config)
    # Override every relocator's cost model with this regime's.
    for agent in scenario.agents:
        if isinstance(agent.strategy, RelocatorStrategy):
            agent.strategy = replace(agent.strategy, relocation=relocation)
    sim = MarketEconomySimulation(scenario)
    period = sim.run_one_auction()
    summary = migration_summary(period.trades)
    summary["settled_fraction"] = period.settled_fraction
    print(
        f"{label:<22} median bid percentile={summary['median_bid_percentile']:5.1f}  "
        f"bid share in idle pools={summary['bid_quantity_share_in_underutilized']:6.1%}  "
        f"settled={summary['settled_fraction']:5.1%}"
    )
    return summary


def main() -> None:
    print("Relocation-cost regimes and where settled bid-side demand lands\n")
    cheap = run_regime("free relocation", RelocationCostModel(base_cost=0.0, cost_per_distance=0.0, cost_per_unit=0.0))
    realistic = run_regime("realistic relocation", RelocationCostModel())
    prohibitive = run_regime(
        "prohibitive relocation",
        RelocationCostModel(base_cost=50_000.0, cost_per_distance=100.0, cost_per_unit=500.0),
    )

    print()
    print(
        "Cheaper relocation pushes settled purchases further into idle clusters "
        f"({cheap['median_bid_percentile']:.0f}th vs {prohibitive['median_bid_percentile']:.0f}th percentile); "
        "when moving is prohibitively expensive, teams keep buying where they already run "
        "and pay the congestion premium - the Figure 7 outliers."
    )
    assert cheap["median_bid_percentile"] <= prohibitive["median_bid_percentile"] + 1e-9


if __name__ == "__main__":
    main()
