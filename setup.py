import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__.
VERSION = re.search(
    r'^__version__ = "(.+?)"',
    Path("src/repro/__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro",
    version=VERSION,
    description=(
        "Reproduction of 'Using a Market Economy to Provision Compute "
        "Resources Across Planet-wide Clusters' (IPDPS 2009)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            # The same CLI as `python -m repro`: scenario catalog + parallel runner.
            "repro=repro.cli:main",
        ]
    },
)
