"""The scalar metrics every scenario run is reduced to for persistence.

A :class:`~repro.simulation.runner.ScenarioRunResult` carries full per-auction
trajectories; the result store persists those verbatim, but statistics and
regression checks need one scalar per metric per run.  This module is the
single registry of those scalars: what they are called, how they are computed
from a run, and in which direction each is allowed to move before a change
counts as a *regression* rather than an improvement.

Directions:

``higher``
    Bigger is better (settled fraction, revenue, utilization) — a significant
    drop is a regression.
``lower``
    Smaller is better (premiums, clearing effort, utilization spread) — a
    significant rise is a regression.
``neutral``
    No preferred direction (price levels, trade counts) — *any* significant
    change is flagged, because an unexplained move in either direction means
    the market behaves differently than it used to.

>>> sorted(METRICS) == sorted(METRIC_DIRECTIONS)
True
>>> METRIC_DIRECTIONS["total_revenue"]
'higher'
>>> METRIC_DIRECTIONS["mean_clearing_rounds"]
'lower'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner stores results)
    from repro.simulation.runner import ScenarioRunResult


@dataclass(frozen=True)
class MetricDef:
    """One persisted scalar metric: name, regression direction, extractor."""

    name: str
    #: ``higher`` / ``lower`` / ``neutral`` — see the module docstring.
    direction: str
    description: str
    extract: Callable[["ScenarioRunResult"], float]

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower", "neutral"):
            raise ValueError(f"metric {self.name!r}: unknown direction {self.direction!r}")


def _mean(values) -> float:
    values = list(values)
    return float(sum(values) / len(values))


def _final(values, series: str) -> float:
    """Last entry of a per-epoch series, with a readable error when absent.

    The allocation-comparison series (``shortage_cost`` & co.) default to
    empty lists on :class:`ScenarioRunResult` for constructor compatibility;
    a result built without them cannot be reduced to metrics, and that must
    surface as a clear message rather than a bare ``IndexError`` from deep
    inside ``store.record``.
    """
    values = list(values)
    if not values:
        raise ValueError(
            f"run has no {series!r} trajectory; every mechanism run must fill "
            "the allocation-comparison series (see ScenarioRunResult)"
        )
    return float(values[-1])


#: The registry, in display order.  Every metric maps a finished run to one
#: float; the store persists exactly this set for every recorded run.
METRICS: dict[str, MetricDef] = {
    m.name: m
    for m in (
        MetricDef(
            "final_median_premium",
            "lower",
            "Median bid premium gamma_u of the last auction (Table 1)",
            lambda r: float(r.median_premium[-1]),
        ),
        MetricDef(
            "premium_drop",
            "lower",
            "First-to-last change in median premium (negative = premiums fell)",
            lambda r: float(r.premium_drop),
        ),
        MetricDef(
            "mean_settled_fraction",
            "higher",
            "Mean fraction of orders settled per auction",
            lambda r: _mean(r.settled_fraction),
        ),
        MetricDef(
            "mean_clearing_rounds",
            "lower",
            "Mean clock rounds per binding auction",
            lambda r: _mean(r.clearing_rounds),
        ),
        MetricDef(
            "mean_clearing_price",
            "neutral",
            "Mean settled unit price across pools and auctions",
            lambda r: _mean(r.mean_clearing_price),
        ),
        MetricDef(
            "total_revenue",
            "higher",
            "Net payments collected from winners, summed across auctions",
            lambda r: float(sum(r.revenue)),
        ),
        MetricDef(
            "final_utilization",
            "higher",
            "Mean pool utilization after the last auction",
            lambda r: float(r.mean_utilization[-1]),
        ),
        MetricDef(
            "utilization_spread_change",
            "lower",
            "First-to-last change in utilization spread (negative = flattening)",
            lambda r: float(r.utilization_spread_change),
        ),
        MetricDef(
            "trade_count",
            "neutral",
            "Settled (bidder, pool) trades pooled across auctions",
            lambda r: float(r.trade_count),
        ),
        # The market-vs-baseline comparison scalars (absorbed from
        # ``baselines/comparison.py``): cumulative provisioning after the last
        # epoch, judged against that epoch's demand.  These are what
        # ``results compare --across mechanisms`` reproduces the paper's
        # Table-1-style shortage/surplus claim from.
        MetricDef(
            "shortage_cost",
            "lower",
            "Cost-weighted capacity overcommitted past safe headroom, final epoch",
            lambda r: _final(r.shortage_cost, "shortage_cost"),
        ),
        MetricDef(
            "surplus_cost",
            "lower",
            "Cost-weighted capacity stranded idle, final epoch",
            lambda r: _final(r.surplus_cost, "surplus_cost"),
        ),
        MetricDef(
            "utilization_spread",
            "lower",
            "Std-dev of pool utilization after the final epoch",
            lambda r: _final(r.utilization_spread, "utilization_spread"),
        ),
        MetricDef(
            "satisfied_fraction",
            "higher",
            "Fraction of teams fully provisioned after the final epoch",
            lambda r: _final(r.satisfied_fraction, "satisfied_fraction"),
        ),
    )
}

#: Metric name -> direction, the view the comparison layer consumes.
METRIC_DIRECTIONS: dict[str, str] = {name: m.direction for name, m in METRICS.items()}


def run_metrics(result: "ScenarioRunResult") -> dict[str, float]:
    """Reduce one finished run to its persisted scalar metrics.

    >>> from repro.simulation.runner import ScenarioRunResult
    >>> result = ScenarioRunResult(
    ...     scenario="tiny", seed=0, engine="auto", auctions=2,
    ...     clusters=1, pools=3, teams=2,
    ...     median_premium=[1.4, 1.1], mean_premium=[1.5, 1.2],
    ...     settled_fraction=[0.5, 0.7], clearing_rounds=[4, 2],
    ...     mean_clearing_price=[2.0, 3.0], revenue=[100.0, 140.0],
    ...     mean_utilization=[0.5, 0.6], utilization_spread=[0.2, 0.1],
    ...     migration={}, trade_count=5, mechanism="market",
    ...     shortage_cost=[60.0, 40.0], surplus_cost=[90.0, 70.0],
    ...     satisfied_fraction=[0.5, 0.8])
    >>> metrics = run_metrics(result)
    >>> metrics["total_revenue"], metrics["final_median_premium"]
    (240.0, 1.1)
    >>> metrics["mean_clearing_rounds"]
    3.0
    >>> metrics["shortage_cost"], metrics["satisfied_fraction"]
    (40.0, 0.8)
    """
    return {name: m.extract(result) for name, m in METRICS.items()}
