"""Replicate statistics: mean / stddev / 95% CI per metric, and regression checks.

The conventions, in one place (and spelled out for the docs):

* **Replicates** are independent runs of one scenario under consecutive seeds.
  Each replicate contributes one value per metric (see
  :mod:`repro.results.metrics`).
* **Mean and stddev** are the sample mean and the *sample* standard deviation
  (Bessel-corrected, ``ddof=1``).  With a single replicate the stddev — and
  therefore the CI — is undefined, not zero: both are reported as ``None``.
* **95% confidence interval**: the classic t-interval
  ``mean +/- t(n-1) * stddev / sqrt(n)``, with the two-sided 95% critical
  value from Student's t for up to 30 degrees of freedom and the normal
  1.960 beyond.  Zero-variance replicates yield a legitimate zero-width CI.
* **Regression flagging** compares the candidate mean against the baseline
  mean per metric.  The change is *significant* when it exceeds ``tolerance``
  relative to the baseline magnitude (absolute, when the baseline mean is 0);
  a significant change is a *regression* when it moves against the metric's
  direction — or in any direction for ``neutral`` metrics.

>>> stats = replicate_stats("demo", [1.0, 2.0, 3.0, 4.0, 5.0])
>>> stats.mean, stats.count
(3.0, 5)
>>> round(stats.stddev, 6)   # sqrt(2.5)
1.581139
>>> round(stats.ci_half_width, 4)   # t(4)=2.776 x stddev/sqrt(5)
1.9629
>>> replicate_stats("one", [7.0]).ci95 is None
True
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.results.metrics import METRIC_DIRECTIONS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results.store import ResultStore

#: Two-sided 95% critical values of Student's t by degrees of freedom.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}

#: Normal approximation used beyond 30 degrees of freedom.
_Z_CRITICAL_95 = 1.960


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom.

    >>> t_critical_95(4)
    2.776
    >>> t_critical_95(200)
    1.96
    """
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    return _T_CRITICAL_95.get(df, _Z_CRITICAL_95)


@dataclass(frozen=True)
class ReplicateStats:
    """Mean / stddev / 95% CI of one metric across a scenario's replicates."""

    metric: str
    count: int
    mean: float
    #: Sample standard deviation (``ddof=1``); ``None`` with one replicate.
    stddev: float | None
    #: Half-width of the 95% t-interval; ``None`` with one replicate.
    ci_half_width: float | None

    @property
    def ci95(self) -> tuple[float, float] | None:
        """The 95% confidence interval ``(low, high)``, if defined.

        >>> replicate_stats("zero-var", [2.0, 2.0, 2.0]).ci95
        (2.0, 2.0)
        """
        if self.ci_half_width is None:
            return None
        return (self.mean - self.ci_half_width, self.mean + self.ci_half_width)

    def to_dict(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "ci95": list(self.ci95) if self.ci95 is not None else None,
        }


def replicate_stats(metric: str, values: Sequence[float]) -> ReplicateStats:
    """Aggregate one metric's replicate values into :class:`ReplicateStats`.

    >>> replicate_stats("demo", [1.0, 2.0, 3.0]).mean
    2.0
    >>> replicate_stats("demo", [1.0]).stddev is None
    True
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError(f"metric {metric!r}: no replicate values to aggregate")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return ReplicateStats(metric=metric, count=1, mean=mean, stddev=None, ci_half_width=None)
    stddev = statistics.stdev(values)
    half = t_critical_95(len(values) - 1) * stddev / math.sqrt(len(values))
    return ReplicateStats(
        metric=metric, count=len(values), mean=mean, stddev=stddev, ci_half_width=half
    )


def aggregate_metrics(
    metric_values: Mapping[str, Sequence[float]],
) -> dict[str, ReplicateStats]:
    """Aggregate every metric's replicate values (empty metrics are dropped).

    >>> stats = aggregate_metrics({"a": [1.0, 3.0], "b": []})
    >>> sorted(stats)
    ['a']
    >>> stats["a"].mean
    2.0
    """
    return {
        name: replicate_stats(name, values)
        for name, values in metric_values.items()
        if len(values) > 0
    }


def scenario_stats(
    store: "ResultStore",
    scenario: str,
    *,
    code_version: str | None = None,
    engine: str | None = None,
    mechanism: str | None = None,
) -> dict[str, ReplicateStats]:
    """Replicate statistics for one stored scenario (latest version by default)."""
    return aggregate_metrics(
        store.replicate_metrics(
            scenario, code_version=code_version, engine=engine, mechanism=mechanism
        )
    )


# ---------------------------------------------------------------------------
# Version-to-version comparison.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricComparison:
    """One metric's baseline-vs-candidate verdict."""

    metric: str
    #: ``higher`` / ``lower`` / ``neutral`` (see :mod:`repro.results.metrics`).
    direction: str
    baseline: ReplicateStats
    candidate: ReplicateStats
    #: ``candidate.mean - baseline.mean``.
    delta: float
    #: Delta relative to ``|baseline.mean|``; ``None`` when the baseline mean is 0.
    relative_change: float | None
    #: The change exceeds the tolerance.
    significant: bool
    #: Significant *and* in the metric's bad direction (any, for neutral metrics).
    regression: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
            "delta": self.delta,
            "relative_change": self.relative_change,
            "significant": self.significant,
            "regression": self.regression,
        }


@dataclass(frozen=True)
class ComparisonReport:
    """Every metric's comparison between two labelled sets of replicates."""

    baseline_label: str
    candidate_label: str
    tolerance: float
    comparisons: tuple[MetricComparison, ...]
    #: Metrics present on only one side (compared on neither).
    missing_metrics: tuple[str, ...] = ()

    @property
    def regressions(self) -> tuple[MetricComparison, ...]:
        """The comparisons flagged as regressions.

        >>> report = compare_metrics({"m": [1.0, 1.0]}, {"m": [2.0, 2.0]},
        ...                          directions={"m": "lower"})
        >>> [c.metric for c in report.regressions]
        ['m']
        """
        return tuple(c for c in self.comparisons if c.regression)

    @property
    def ok(self) -> bool:
        """True when no metric regressed beyond the tolerance."""
        return not self.regressions

    def to_dict(self) -> dict[str, object]:
        return {
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "tolerance": self.tolerance,
            "comparisons": [c.to_dict() for c in self.comparisons],
            "missing_metrics": list(self.missing_metrics),
            "regressions": [c.metric for c in self.regressions],
            "ok": self.ok,
        }


def compare_metrics(
    baseline: Mapping[str, Sequence[float]],
    candidate: Mapping[str, Sequence[float]],
    *,
    tolerance: float = 0.05,
    directions: Mapping[str, str] | None = None,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> ComparisonReport:
    """Compare two sets of replicate metrics and flag regressions.

    ``tolerance`` is the relative change (vs the baseline mean's magnitude)
    a metric may move before it is significant; when the baseline mean is 0
    the same number is applied to the absolute delta.  ``directions`` defaults
    to :data:`repro.results.metrics.METRIC_DIRECTIONS`; unknown metrics are
    treated as ``neutral`` (any significant change flags).

    >>> report = compare_metrics({"total_revenue": [100.0, 102.0]},
    ...                          {"total_revenue": [90.0, 92.0]})
    >>> report.ok
    False
    >>> report.regressions[0].metric
    'total_revenue'
    >>> compare_metrics({"total_revenue": [100.0]}, {"total_revenue": [101.0]}).ok
    True
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    directions = METRIC_DIRECTIONS if directions is None else directions
    shared = [name for name in baseline if name in candidate]
    missing = sorted(set(baseline).symmetric_difference(candidate))
    comparisons = []
    for name in shared:
        base = replicate_stats(name, baseline[name])
        cand = replicate_stats(name, candidate[name])
        delta = cand.mean - base.mean
        if base.mean == 0:
            relative = None
            significant = abs(delta) > tolerance
        else:
            relative = delta / abs(base.mean)
            significant = abs(relative) > tolerance
        direction = directions.get(name, "neutral")
        regression = significant and (
            (direction == "higher" and delta < 0)
            or (direction == "lower" and delta > 0)
            or direction == "neutral"
        )
        comparisons.append(
            MetricComparison(
                metric=name,
                direction=direction,
                baseline=base,
                candidate=cand,
                delta=delta,
                relative_change=relative,
                significant=significant,
                regression=regression,
            )
        )
    return ComparisonReport(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        tolerance=tolerance,
        comparisons=tuple(comparisons),
        missing_metrics=tuple(missing),
    )


def compare_versions(
    store: "ResultStore",
    scenario: str,
    *,
    baseline_version: str,
    candidate_version: str,
    tolerance: float = 0.05,
    engine: str | None = None,
    mechanism: str | None = None,
    baseline_store: "ResultStore | None" = None,
) -> ComparisonReport:
    """Compare one scenario's replicates between two stored code versions.

    ``baseline_store`` lets the baseline side come from a *different* store
    file (the cross-PR CI gate compares the current smoke store against the
    previous build's downloaded artifact); by default both sides read from
    ``store``.
    """
    source = store if baseline_store is None else baseline_store
    baseline = source.replicate_metrics(
        scenario, code_version=baseline_version, engine=engine, mechanism=mechanism
    )
    candidate = store.replicate_metrics(
        scenario, code_version=candidate_version, engine=engine, mechanism=mechanism
    )
    if not baseline:
        raise ValueError(
            f"no stored runs of {scenario!r} under baseline version {baseline_version!r}"
        )
    if not candidate:
        raise ValueError(
            f"no stored runs of {scenario!r} under candidate version {candidate_version!r}"
        )
    return compare_metrics(
        baseline,
        candidate,
        tolerance=tolerance,
        baseline_label=baseline_version,
        candidate_label=candidate_version,
    )


# ---------------------------------------------------------------------------
# Mechanism-to-mechanism comparison.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MechanismComparisonReport:
    """Per-metric replicate statistics for several mechanisms of one scenario.

    The statistical reproduction of the paper's Table-1-style claim: for each
    metric, every mechanism's mean and 95% CI side by side, with a
    direction-aware verdict of which mechanism leads.
    """

    scenario: str
    code_version: str
    #: Mechanism names in display order (market first when present).
    mechanisms: tuple[str, ...]
    #: metric -> {mechanism: ReplicateStats}; only metrics every compared
    #: mechanism recorded appear here.
    metric_stats: dict[str, dict[str, ReplicateStats]]
    #: metric -> direction (``higher`` / ``lower`` / ``neutral``).
    directions: dict[str, str]

    def best(self, metric: str) -> str | None:
        """The mechanism with the best mean for a directional metric.

        ``None`` for neutral metrics (no preferred direction) and for ties.
        """
        direction = self.directions.get(metric, "neutral")
        if direction == "neutral":
            return None
        stats = self.metric_stats[metric]
        ordered = sorted(
            stats.items(),
            key=lambda item: item[1].mean,
            reverse=(direction == "higher"),
        )
        if len(ordered) > 1 and ordered[0][1].mean == ordered[1][1].mean:
            return None
        return ordered[0][0]

    def market_leads(self, metric: str) -> bool:
        """Whether the market's mean beats every other compared mechanism."""
        return "market" in self.metric_stats.get(metric, {}) and self.best(metric) == "market"

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "code_version": self.code_version,
            "mechanisms": list(self.mechanisms),
            "metrics": {
                metric: {
                    "direction": self.directions.get(metric, "neutral"),
                    "best": self.best(metric),
                    "stats": {name: s.to_dict() for name, s in stats.items()},
                }
                for metric, stats in self.metric_stats.items()
            },
        }


def compare_mechanisms(
    store: "ResultStore",
    scenario: str,
    *,
    mechanisms: Sequence[str] | None = None,
    code_version: str | None = None,
    engine: str | None = None,
) -> MechanismComparisonReport:
    """Compare one scenario's replicates across stored mechanisms.

    ``mechanisms=None`` compares every mechanism stored for the scenario
    under ``code_version`` (latest recorded by default).  Metrics present for
    only some mechanisms are dropped — a mean is only comparable to a mean of
    the same thing.
    """
    if code_version is None:
        code_version = store.latest_code_version(scenario=scenario)
    if code_version is None:
        raise ValueError(f"no stored runs of {scenario!r}")
    names = (
        list(mechanisms)
        if mechanisms is not None
        else store.mechanisms(scenario=scenario, code_version=code_version)
    )
    if "market" in names:  # market leads the display order
        names = ["market"] + [n for n in names if n != "market"]
    if len(names) < 2:
        if mechanisms is not None:
            raise ValueError(
                f"a mechanism comparison needs at least two mechanisms; got "
                f"{', '.join(names) or 'none'} — pass a comma list like "
                "'market,fixed-price' or omit the selection to compare every "
                "stored mechanism"
            )
        raise ValueError(
            f"scenario {scenario!r} has runs under {len(names)} mechanism(s) at "
            f"{code_version!r}; a mechanism comparison needs at least two "
            "(run `sweep --mechanism all` first)"
        )
    per_mechanism: dict[str, dict[str, ReplicateStats]] = {}
    for name in names:
        values = store.replicate_metrics(
            scenario, code_version=code_version, engine=engine, mechanism=name
        )
        if not values:
            raise ValueError(
                f"no stored runs of {scenario!r} under mechanism {name!r} at {code_version!r}"
            )
        per_mechanism[name] = aggregate_metrics(values)
    shared = [
        metric
        for metric in per_mechanism[names[0]]
        if all(metric in per_mechanism[name] for name in names)
    ]
    return MechanismComparisonReport(
        scenario=scenario,
        code_version=code_version,
        mechanisms=tuple(names),
        metric_stats={
            metric: {name: per_mechanism[name][metric] for name in names}
            for metric in shared
        },
        directions={metric: METRIC_DIRECTIONS.get(metric, "neutral") for metric in shared},
    )
