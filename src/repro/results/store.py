"""The persistent result store: sqlite, keyed by (scenario, seed, code_version, engine, mechanism).

One row per *run*.  A run is uniquely identified by the scenario it executed,
the replicate seed, the code version that produced it, the demand engine it
used, and the allocation mechanism that produced the outcome; recording the
same key twice replaces the earlier row (re-running an experiment under
unchanged code is a refresh, not a new observation).  Each run stores the
full canonical trajectory report (as JSON, for provenance), the scalar
metrics of :mod:`repro.results.metrics` (as rows, for querying), the
observed wall time (for measured-cost scheduling), and the executing worker
(``serial:<pid>``, ``process:<pid>``, or a remote worker id — placement
provenance for distributed sweeps).  Wall time and worker are deliberately
*outside* the canonical JSON, which must stay deterministic: where and how
fast a run executed must never change its bytes.

Schema::

    runs    (id, scenario, seed, code_version, engine, mechanism, auctions,
             recorded_at, wall_time, worker, result_json,
             UNIQUE (scenario, seed, code_version, engine, mechanism))
    metrics (run_id -> runs.id, metric, value,
             PRIMARY KEY (run_id, metric))

Stores created before the mechanism dimension existed (no ``mechanism`` /
``wall_time`` columns, four-column unique key) are migrated in place on open:
their rows are market runs by construction, so they re-key under
``mechanism='market'`` with unknown wall times.  Stores from before the
execution-backend layer merely lack the nullable ``worker`` column, which is
added in place.

``code_version`` defaults to the version of the working tree — ``git describe
--always --dirty`` where the package lives inside a git checkout, the package
version otherwise, and the ``REPRO_CODE_VERSION`` environment variable
overrides both (useful in CI, where the checkout may be shallow or absent).

Everything is standard library only; the store adds no runtime dependency.

>>> store = ResultStore(":memory:")
>>> len(store.runs())
0
>>> store.close()
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro import __version__
from repro.results.metrics import METRICS, run_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner stores results)
    from repro.simulation.runner import ScenarioRunResult, SweepReport

#: Environment variable that overrides the default store location.
DB_ENV = "REPRO_RESULTS_DB"

#: Environment variable that overrides code-version derivation.
CODE_VERSION_ENV = "REPRO_CODE_VERSION"

#: Default store filename (created in the working directory).
DEFAULT_DB_NAME = "repro_results.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id           INTEGER PRIMARY KEY,
    scenario     TEXT    NOT NULL,
    seed         INTEGER NOT NULL,
    code_version TEXT    NOT NULL,
    engine       TEXT    NOT NULL,
    mechanism    TEXT    NOT NULL DEFAULT 'market',
    auctions     INTEGER NOT NULL,
    recorded_at  TEXT    NOT NULL,
    wall_time    REAL,
    worker       TEXT,
    result_json  TEXT    NOT NULL,
    UNIQUE (scenario, seed, code_version, engine, mechanism)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    metric TEXT    NOT NULL,
    value  REAL    NOT NULL,
    PRIMARY KEY (run_id, metric)
);
CREATE INDEX IF NOT EXISTS idx_runs_scenario ON runs (scenario, code_version, engine, mechanism);
"""

#: Migration for stores written before the mechanism dimension existed: the
#: old four-column unique key lives inside the table definition, so the table
#: is rebuilt with the new shape and the rows re-keyed as market runs.  Run
#: with foreign keys OFF (sqlite's documented table-rebuild recipe) so the
#: ``metrics`` table's reference to ``runs`` survives the swap untouched.
_MIGRATE_PRE_MECHANISM = """
DROP INDEX IF EXISTS idx_runs_scenario;
CREATE TABLE runs_migrated (
    id           INTEGER PRIMARY KEY,
    scenario     TEXT    NOT NULL,
    seed         INTEGER NOT NULL,
    code_version TEXT    NOT NULL,
    engine       TEXT    NOT NULL,
    mechanism    TEXT    NOT NULL DEFAULT 'market',
    auctions     INTEGER NOT NULL,
    recorded_at  TEXT    NOT NULL,
    wall_time    REAL,
    worker       TEXT,
    result_json  TEXT    NOT NULL,
    UNIQUE (scenario, seed, code_version, engine, mechanism)
);
INSERT INTO runs_migrated (id, scenario, seed, code_version, engine, mechanism,
                           auctions, recorded_at, wall_time, worker, result_json)
SELECT id, scenario, seed, code_version, engine, 'market', auctions,
       recorded_at, NULL, NULL, result_json
FROM runs;
DROP TABLE runs;
ALTER TABLE runs_migrated RENAME TO runs;
"""


def default_db_path() -> Path:
    """Where the CLI persists results: ``$REPRO_RESULTS_DB`` or ``./repro_results.sqlite``.

    >>> import os
    >>> os.environ[DB_ENV] = "/tmp/my-results.sqlite"
    >>> str(default_db_path())
    '/tmp/my-results.sqlite'
    >>> del os.environ[DB_ENV]
    """
    override = os.environ.get(DB_ENV)
    return Path(override) if override else Path(DEFAULT_DB_NAME)


def default_code_version() -> str:
    """The code version runs are recorded under when none is given explicitly.

    Resolution order: the ``REPRO_CODE_VERSION`` environment variable; ``git
    describe --always --dirty`` run in the checkout containing this package;
    the installed package version (``v0.1.0`` style) when neither applies.

    >>> import os
    >>> os.environ[CODE_VERSION_ENV] = "pr-demo"
    >>> default_code_version()
    'pr-demo'
    >>> del os.environ[CODE_VERSION_ENV]
    >>> isinstance(default_code_version(), str)
    True
    """
    override = os.environ.get(CODE_VERSION_ENV)
    if override:
        return override
    root = _git_root(Path(__file__).resolve().parent)
    if root is not None:
        try:
            described = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=10,
                check=False,
            )
            if described.returncode == 0 and described.stdout.strip():
                return described.stdout.strip()
        except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git binary
            pass
    return f"v{__version__}"


def _git_root(start: Path) -> Path | None:
    """The enclosing directory holding ``.git``, if this package lives in a checkout."""
    for candidate in (start, *start.parents):
        if (candidate / ".git").exists():
            return candidate
    return None


@dataclass(frozen=True)
class StoredRun:
    """One persisted run: its key, its scalar metrics, its full trajectory."""

    run_id: int
    scenario: str
    seed: int
    code_version: str
    engine: str
    mechanism: str
    auctions: int
    recorded_at: str
    #: Observed wall time in seconds (``None`` for pre-migration rows).
    wall_time: float | None
    #: Execution lane that produced the run — ``serial:<pid>``,
    #: ``process:<pid>``, or a remote worker id (``None`` when unknown).
    worker: str | None
    #: Scalar metrics (see :mod:`repro.results.metrics`).
    metrics: dict[str, float]
    #: The full canonical per-run report, as recorded.
    result: dict[str, object]

    @property
    def key(self) -> tuple[str, int, str, str, str]:
        """The store's unique key for this run."""
        return (self.scenario, self.seed, self.code_version, self.engine, self.mechanism)


class ResultStore:
    """Sqlite-backed persistent store of scenario-run results.

    ``path`` may be a filesystem path (created on first use) or the sqlite
    ``":memory:"`` sentinel for an ephemeral store.  The store is safe to use
    as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str | Path | None = None):
        raw = default_db_path() if path is None else path
        #: The filesystem location, or ``None`` for an in-memory store.
        self.path: Path | None = None if str(raw) == ":memory:" else Path(raw)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(":memory:" if self.path is None else str(self.path))
        self._migrate_pre_mechanism()
        self._migrate_pre_worker()
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def _migrate_pre_mechanism(self) -> None:
        """Rebuild a pre-mechanism ``runs`` table in place (no-op otherwise)."""
        table_exists = self._conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = 'runs'"
        ).fetchone()
        if not table_exists:
            return
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(runs)").fetchall()
        }
        if "mechanism" in columns:
            return
        # Foreign keys stay OFF during the rebuild so sqlite neither rewrites
        # nor enforces the metrics -> runs reference mid-swap (run ids are
        # preserved verbatim, so the reference is intact afterwards).
        self._conn.execute("PRAGMA foreign_keys = OFF")
        self._conn.executescript(_MIGRATE_PRE_MECHANISM)
        self._conn.commit()

    def _migrate_pre_worker(self) -> None:
        """Add the nullable ``worker`` provenance column to older stores.

        Unlike the mechanism migration this needs no table rebuild: the
        column is not part of the unique key, so a plain ``ALTER TABLE``
        suffices and existing rows keep ``NULL`` (worker unknown).
        """
        table_exists = self._conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = 'runs'"
        ).fetchone()
        if not table_exists:
            return
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(runs)").fetchall()
        }
        if "worker" in columns:
            return
        self._conn.execute("ALTER TABLE runs ADD COLUMN worker TEXT")
        self._conn.commit()

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -----------------------------------------------------------------------
    def record(
        self, result: "ScenarioRunResult", *, code_version: str | None = None
    ) -> StoredRun:
        """Persist one finished run; same-key records replace earlier ones."""
        version = code_version if code_version is not None else default_code_version()
        metrics = run_metrics(result)
        recorded_at = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        wall_time = getattr(result, "wall_time_seconds", None)
        worker = getattr(result, "worker", None)
        result_dict = result.to_dict()
        payload = json.dumps(result_dict, sort_keys=True)
        self._conn.execute(
            """
            INSERT INTO runs (scenario, seed, code_version, engine, mechanism,
                              auctions, recorded_at, wall_time, worker, result_json)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            ON CONFLICT (scenario, seed, code_version, engine, mechanism) DO UPDATE SET
                auctions = excluded.auctions,
                recorded_at = excluded.recorded_at,
                wall_time = excluded.wall_time,
                worker = excluded.worker,
                result_json = excluded.result_json
            """,
            (
                result.scenario,
                result.seed,
                version,
                result.engine,
                result.mechanism,
                result.auctions,
                recorded_at,
                wall_time,
                worker,
                payload,
            ),
        )
        # lastrowid is unreliable on the upsert's UPDATE path: look the row up.
        run_id = self._conn.execute(
            """
            SELECT id FROM runs
            WHERE scenario = ? AND seed = ? AND code_version = ? AND engine = ?
              AND mechanism = ?
            """,
            (result.scenario, result.seed, version, result.engine, result.mechanism),
        ).fetchone()[0]
        self._conn.execute("DELETE FROM metrics WHERE run_id = ?", (run_id,))
        self._conn.executemany(
            "INSERT INTO metrics (run_id, metric, value) VALUES (?, ?, ?)",
            [(run_id, name, float(value)) for name, value in metrics.items()],
        )
        self._conn.commit()
        return StoredRun(
            run_id=run_id,
            scenario=result.scenario,
            seed=result.seed,
            code_version=version,
            engine=result.engine,
            mechanism=result.mechanism,
            auctions=result.auctions,
            recorded_at=recorded_at,
            wall_time=wall_time,
            worker=worker,
            metrics=metrics,
            result=result_dict,
        )

    def record_report(
        self, report: "SweepReport", *, code_version: str | None = None
    ) -> list[StoredRun]:
        """Persist every run of a sweep report under one code version."""
        version = code_version if code_version is not None else default_code_version()
        return [self.record(result, code_version=version) for result in report.results]

    # -- reading -----------------------------------------------------------------------
    def runs(
        self,
        *,
        scenario: str | None = None,
        code_version: str | None = None,
        engine: str | None = None,
        mechanism: str | None = None,
    ) -> list[StoredRun]:
        """Stored runs matching the given key fields, ordered by key."""
        clauses, params = _filters(
            scenario=scenario, code_version=code_version, engine=engine, mechanism=mechanism
        )
        rows = self._conn.execute(
            f"""
            SELECT id, scenario, seed, code_version, engine, mechanism, auctions,
                   recorded_at, wall_time, worker, result_json
            FROM runs {clauses}
            ORDER BY scenario, code_version, engine, mechanism, seed
            """,
            params,
        ).fetchall()
        return [self._hydrate(row) for row in rows]

    def mechanisms(
        self, *, scenario: str | None = None, code_version: str | None = None
    ) -> list[str]:
        """Distinct mechanism names present in the store, sorted."""
        clauses, params = _filters(scenario=scenario, code_version=code_version)
        rows = self._conn.execute(
            f"SELECT DISTINCT mechanism FROM runs {clauses} ORDER BY mechanism", params
        )
        return [row[0] for row in rows.fetchall()]

    def mean_wall_times(self) -> dict[tuple[str, str, str, int], float]:
        """Observed mean wall seconds per (scenario, mechanism, engine, auctions).

        The measured costs the parallel runner prefers over static
        ``cost_estimate()`` ranking when scheduling longest-job-first.  The
        key matches :meth:`repro.simulation.catalog.ScenarioSpec.cost_key`:
        runs under a different engine or auction count are a different job
        and must not stand in for this one's cost.  Rows without a recorded
        wall time (pre-migration stores) are ignored; versions are pooled on
        purpose (timings drift slowly and more samples beat freshness).
        """
        rows = self._conn.execute(
            """
            SELECT scenario, mechanism, engine, auctions, AVG(wall_time)
            FROM runs
            WHERE wall_time IS NOT NULL
            GROUP BY scenario, mechanism, engine, auctions
            """
        ).fetchall()
        return {
            (scenario, mechanism, engine, int(auctions)): float(seconds)
            for scenario, mechanism, engine, auctions, seconds in rows
        }

    def worker_speeds(self) -> dict[str, float]:
        """Mean relative speed per worker id (1.0 = fleet average, lower = faster).

        Host-aware scheduling input for the remote backend: for every job key
        that at least two distinct workers have timed, each worker's mean wall
        time is divided by the key's fleet-wide mean, and those ratios are
        averaged per worker.  Comparing only *within* a key keeps the factor a
        pure host-speed signal — a worker that happened to draw the heavy
        scenarios is not "slow", it just ran bigger jobs.  Keys timed by a
        single worker say nothing about relative speed and are skipped, so a
        store with no multi-worker history returns ``{}`` (every worker then
        schedules as average).
        """
        rows = self._conn.execute(
            """
            SELECT worker, scenario, mechanism, engine, auctions, AVG(wall_time)
            FROM runs
            WHERE wall_time IS NOT NULL AND worker IS NOT NULL
            GROUP BY worker, scenario, mechanism, engine, auctions
            """
        ).fetchall()
        by_key: dict[tuple, list[tuple[str, float]]] = {}
        for worker, scenario, mechanism, engine, auctions, seconds in rows:
            key = (scenario, mechanism, engine, int(auctions))
            by_key.setdefault(key, []).append((str(worker), float(seconds)))
        ratios: dict[str, list[float]] = {}
        for pairs in by_key.values():
            if len(pairs) < 2:
                continue
            key_mean = sum(seconds for _, seconds in pairs) / len(pairs)
            if key_mean <= 0:
                continue
            for worker, seconds in pairs:
                ratios.setdefault(worker, []).append(seconds / key_mean)
        return {
            worker: sum(values) / len(values)
            for worker, values in sorted(ratios.items())
        }

    def scenarios(self) -> list[str]:
        """Distinct scenario names present in the store, sorted."""
        rows = self._conn.execute("SELECT DISTINCT scenario FROM runs ORDER BY scenario")
        return [row[0] for row in rows.fetchall()]

    def code_versions(self, *, scenario: str | None = None) -> list[str]:
        """Distinct code versions, oldest first (by first recording).

        Ordered by the smallest row id per version, not by ``recorded_at``:
        row ids survive the upsert, so *refreshing* an old version's runs
        (re-recording the same keys) does not promote it to "latest" — which
        would silently flip the default baseline/candidate direction of
        ``results show`` / ``results compare``.
        """
        clauses, params = _filters(scenario=scenario)
        rows = self._conn.execute(
            f"""
            SELECT code_version
            FROM runs {clauses}
            GROUP BY code_version
            ORDER BY MIN(id)
            """,
            params,
        ).fetchall()
        return [row[0] for row in rows]

    def latest_code_version(self, *, scenario: str | None = None) -> str | None:
        """The most recently recorded code version (``None`` on an empty store)."""
        versions = self.code_versions(scenario=scenario)
        return versions[-1] if versions else None

    def replicate_metrics(
        self,
        scenario: str,
        *,
        code_version: str | None = None,
        engine: str | None = None,
        mechanism: str | None = None,
    ) -> dict[str, list[float]]:
        """Metric -> one value per stored replicate (ordered by seed).

        ``code_version=None`` selects the scenario's most recently recorded
        version, which is what ``results show`` displays by default.  Runs
        from different demand engines are never pooled: the engines produce
        bit-identical economies by design, so merging them would double-count
        seeds and understate the confidence intervals — when the selection
        spans several engines, ``engine`` must pick one.  Runs from different
        *mechanisms* are never pooled either, for the opposite reason: they
        are different economies entirely, and pooling them would average a
        market with a quota policy — when the selection spans several
        mechanisms, ``mechanism`` must pick one.
        """
        if code_version is None:
            code_version = self.latest_code_version(scenario=scenario)
        for column, value in (("engine", engine), ("mechanism", mechanism)):
            if value is not None:
                continue
            # The span check honours the *other* dimension's explicit filter:
            # runs of one mechanism recorded under a single engine must not be
            # rejected because a different mechanism used a different engine.
            clauses, params = _filters(
                scenario=scenario,
                code_version=code_version,
                engine=engine if column != "engine" else None,
                mechanism=mechanism if column != "mechanism" else None,
            )
            values = [
                row[0]
                for row in self._conn.execute(
                    f"SELECT DISTINCT {column} FROM runs {clauses} ORDER BY {column}",
                    params,
                )
            ]
            if len(values) > 1:
                raise ValueError(
                    f"stored runs of {scenario!r} under {code_version!r} span {column}s "
                    f"{', '.join(values)}; pass {column}=... to pick one"
                )
        # One JOIN over the metrics table: statistics only need the scalars,
        # not N hydrated trajectory payloads.
        clauses, params = _filters(
            prefix="r.",
            scenario=scenario,
            code_version=code_version,
            engine=engine,
            mechanism=mechanism,
        )
        rows = self._conn.execute(
            f"""
            SELECT m.metric, m.value
            FROM metrics m JOIN runs r ON r.id = m.run_id
            {clauses}
            ORDER BY r.seed, r.id
            """,
            params,
        ).fetchall()
        values: dict[str, list[float]] = {}
        for name, value in rows:
            if name in METRICS:
                values.setdefault(name, []).append(float(value))
        return values

    def summary(self) -> list[dict[str, object]]:
        """One row per (scenario, code_version, engine, mechanism): what ``results list`` shows."""
        rows = self._conn.execute(
            """
            SELECT scenario, code_version, engine, mechanism,
                   COUNT(*) AS replicates,
                   MIN(seed) AS seed_min, MAX(seed) AS seed_max,
                   MAX(recorded_at) AS recorded_at
            FROM runs
            GROUP BY scenario, code_version, engine, mechanism
            ORDER BY scenario, MIN(id)
            """
        ).fetchall()
        return [
            {
                "scenario": scenario,
                "code_version": code_version,
                "engine": engine,
                "mechanism": mechanism,
                "replicates": replicates,
                "seeds": f"{seed_min}..{seed_max}" if seed_min != seed_max else str(seed_min),
                "recorded_at": recorded_at,
            }
            for scenario, code_version, engine, mechanism, replicates,
                seed_min, seed_max, recorded_at in rows
        ]

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    # -- internals ---------------------------------------------------------------------
    def _hydrate(self, row: Iterable[object]) -> StoredRun:
        (
            run_id,
            scenario,
            seed,
            code_version,
            engine,
            mechanism,
            auctions,
            recorded_at,
            wall_time,
            worker,
            payload,
        ) = row
        metric_rows = self._conn.execute(
            "SELECT metric, value FROM metrics WHERE run_id = ?", (run_id,)
        ).fetchall()
        return StoredRun(
            run_id=int(run_id),
            scenario=str(scenario),
            seed=int(seed),
            code_version=str(code_version),
            engine=str(engine),
            mechanism=str(mechanism),
            auctions=int(auctions),
            recorded_at=str(recorded_at),
            wall_time=None if wall_time is None else float(wall_time),
            worker=None if worker is None else str(worker),
            metrics={str(name): float(value) for name, value in metric_rows},
            result=json.loads(payload),
        )


def _filters(*, prefix: str = "", **fields: str | None) -> tuple[str, tuple]:
    """Build a WHERE clause from the non-None key fields (columns under ``prefix``)."""
    clauses = [f"{prefix}{name} = ?" for name, value in fields.items() if value is not None]
    params = tuple(value for value in fields.values() if value is not None)
    return ("WHERE " + " AND ".join(clauses)) if clauses else "", params


def open_store(path: str | Path | None = None) -> ResultStore:
    """Open (creating if needed) the store at ``path`` or the default location.

    >>> store = open_store(":memory:")
    >>> store.scenarios()
    []
    >>> store.close()
    """
    return ResultStore(path if path is not None else default_db_path())
