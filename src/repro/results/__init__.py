"""repro.results — the persistent result store and replicate statistics.

The paper's headline claims (Table 1, Figures 6-7) are statistical: they
only mean something across *repeated* runs.  This package makes those runs
durable and comparable:

* :mod:`repro.results.metrics` — the scalar metrics extracted from every
  scenario run (utilization, clearing price, rounds, revenue, premiums) and
  the direction in which each one is allowed to move;
* :mod:`repro.results.store` — a sqlite-backed :class:`ResultStore` keyed by
  ``(scenario, seed, code_version, engine, mechanism)`` that the parallel
  runner and the ``python -m repro`` CLI write into, replacing throwaway JSON
  reports as the canonical record (observed wall times included, for
  measured-cost scheduling);
* :mod:`repro.results.stats` — replicate statistics (mean / stddev / 95%
  confidence intervals per metric), version-to-version comparison with
  regression flagging, and cross-mechanism comparison, surfaced by
  ``python -m repro results list|show|compare`` and ``compare-mechanisms``.

Everything here is standard library only (``sqlite3``, ``statistics``); the
store adds no dependency to the runtime.
"""

from repro.results.metrics import METRIC_DIRECTIONS, METRICS, MetricDef, run_metrics
from repro.results.stats import (
    ComparisonReport,
    MechanismComparisonReport,
    MetricComparison,
    ReplicateStats,
    aggregate_metrics,
    compare_mechanisms,
    compare_metrics,
    compare_versions,
    replicate_stats,
    scenario_stats,
    t_critical_95,
)
from repro.results.store import (
    ResultStore,
    StoredRun,
    default_code_version,
    default_db_path,
    open_store,
)

__all__ = [
    "METRICS",
    "METRIC_DIRECTIONS",
    "MetricDef",
    "run_metrics",
    "ResultStore",
    "StoredRun",
    "default_code_version",
    "default_db_path",
    "open_store",
    "ReplicateStats",
    "MetricComparison",
    "ComparisonReport",
    "replicate_stats",
    "aggregate_metrics",
    "scenario_stats",
    "compare_metrics",
    "compare_versions",
    "MechanismComparisonReport",
    "compare_mechanisms",
    "t_critical_95",
]
