"""The combinatorial exchange: reserve pricing + clock auction + settlement.

This is the top-level mechanism the paper's trading platform maps user
requests into ("the trading platform then maps these into a simulated clock
auction of the form discussed previously").  One :class:`CombinatorialExchange`
instance corresponds to one auction event: it is configured with the current
pool index (capacities, unit costs, utilizations), computes congestion-weighted
reserve prices, runs the ascending clock auction over the collected bids plus
the operator's own supply, settles at the final prices, and verifies the
SYSTEM constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.bids import Bid, validate_bid
from repro.core.clock_auction import (
    AscendingClockAuction,
    AuctionConfig,
    AuctionOutcome,
    ShardOutcome,
)
from repro.core.increment import IncrementPolicy, default_increment
from repro.core.prices import PriceTable, price_ratios
from repro.core.reserve import PAPER_PHI_1, ReservePricer, WeightingFunction
from repro.core.settlement import (
    ConstraintReport,
    Settlement,
    SettlementLine,
    settle,
    settle_bid,
    verify_system_constraints,
)


class BidValidationError(ValueError):
    """A submitted bid failed structural validation."""


@dataclass
class ExchangeResult:
    """Everything produced by one auction event."""

    index: PoolIndex
    reserve_prices: np.ndarray
    outcome: AuctionOutcome
    settlement: Settlement
    constraints: ConstraintReport
    operator_supply: np.ndarray
    #: Shard partition / worker facts when the sharded engine ran (else None).
    shard_stats: dict[str, object] | None = None
    #: Delta-kernel facts (rows re-evaluated per round, retirements) when the
    #: incremental engine ran (else None).  Diagnostic only, never canonical.
    incremental_stats: dict[str, object] | None = None

    @property
    def final_prices(self) -> PriceTable:
        """Final uniform unit prices as a :class:`PriceTable`."""
        return PriceTable(index=self.index, prices=self.outcome.final_prices)

    @property
    def rounds(self) -> int:
        """Number of clock rounds the auction took."""
        return self.outcome.round_count

    def price_ratio_to(self, fixed_prices: Mapping[str, float]) -> dict[str, float]:
        """Settled price / former fixed price per pool (Figure 6)."""
        return price_ratios(self.final_prices.as_map(), dict(fixed_prices))

    def summary(self) -> dict[str, float]:
        """Headline numbers for dashboards and logs."""
        premiums = self.settlement.premiums()
        return {
            "bidders": float(len(self.settlement.lines)),
            "winners": float(len(self.settlement.winners)),
            "settled_fraction": self.settlement.settled_fraction(),
            "rounds": float(self.rounds),
            "median_premium": float(np.median(premiums)) if premiums else 0.0,
            "mean_premium": float(np.mean(premiums)) if premiums else 0.0,
            "total_payments": self.settlement.total_payments(),
        }


class CombinatorialExchange:
    """Runs one complete auction event over a pool index.

    Parameters
    ----------
    index:
        Resource pools with capacities, unit costs, and current utilizations.
    weighting:
        Weighting function (or :class:`ReservePricer`) used for the
        congestion-weighted reserve prices; defaults to the paper's phi_1.
    increment:
        Price-increment policy for the clock; defaults to the proportional
        policy scaled by pool capacities.
    auction_config:
        Round limits / tolerances for the clock auction.
    operator_supply_fraction:
        Fraction of each pool's *unused* capacity the operator offers to the
        market (the company "acts as a seller of resources").  1.0 offers
        everything that is currently free; 0.0 makes the operator a pure
        price-setter and all supply must come from selling teams.
    strict_validation:
        If ``True`` (default), structurally invalid bids raise
        :class:`BidValidationError`; if ``False`` they are silently dropped.

    Examples
    --------
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> exchange = CombinatorialExchange(index)
    >>> result = exchange.run([Bid.buy("t", index, [{"b/cpu": 10}], max_payment=500.0)])
    >>> result.outcome.converged and result.constraints.satisfied
    True
    >>> [line.bidder for line in result.settlement.winners]
    ['t']
    """

    def __init__(
        self,
        index: PoolIndex,
        *,
        weighting: WeightingFunction | ReservePricer | None = None,
        increment: IncrementPolicy | None = None,
        auction_config: AuctionConfig | None = None,
        operator_supply_fraction: float = 1.0,
        strict_validation: bool = True,
    ):
        if not (0.0 <= operator_supply_fraction <= 1.0):
            raise ValueError("operator_supply_fraction must lie in [0, 1]")
        self.index = index
        if isinstance(weighting, ReservePricer):
            self.reserve_pricer = weighting
        else:
            self.reserve_pricer = ReservePricer(weighting=weighting or PAPER_PHI_1)
        self.increment = increment or default_increment(index.capacities())
        self.auction_config = auction_config or AuctionConfig()
        self.operator_supply_fraction = operator_supply_fraction
        self.strict_validation = strict_validation

    # -- components ----------------------------------------------------------------
    def reserve_prices(self) -> np.ndarray:
        """Congestion-weighted reserve prices for the current pool state."""
        return self.reserve_pricer.reserve_prices(self.index)

    def operator_supply(self) -> np.ndarray:
        """The quantity of each pool the operator offers to the market."""
        return self.index.available() * self.operator_supply_fraction

    def _validated(self, bids: Sequence[Bid]) -> list[Bid]:
        accepted: list[Bid] = []
        for bid in bids:
            problems = validate_bid(bid)
            if problems:
                if self.strict_validation:
                    raise BidValidationError(
                        f"bid from {bid.bidder!r} is invalid: {'; '.join(problems)}"
                    )
                continue
            accepted.append(bid)
        return accepted

    # -- main entry point --------------------------------------------------------------
    def run(self, bids: Sequence[Bid]) -> ExchangeResult:
        """Run reserve pricing, the clock auction, and settlement over ``bids``."""
        accepted = self._validated(bids)
        reserve = self.reserve_prices()
        supply = self.operator_supply()
        auction = AscendingClockAuction(
            self.index,
            accepted,
            reserve_prices=reserve,
            supply=supply,
            increment=self.increment,
            config=self.auction_config,
        )
        # Pipelined settlement: with the sharded engine, settle each shard's
        # bids the moment its price discovery finishes — the shard's
        # provisional prices already agree with the final prices on every
        # pool the shard's bids reference (bids are structurally zero
        # elsewhere), so the lines come out bit-identical to settling at the
        # end.  The one exception — the global stop froze a shard before its
        # own fixed point — is caught below and those shards re-settle.
        shard_lines: dict[int, SettlementLine] = {}
        shards_seen: list[ShardOutcome] = []
        if auction.engine == "sharded":

            def _settle_shard(shard: ShardOutcome) -> None:
                shards_seen.append(shard)
                for position in shard.bid_positions:
                    shard_lines[position] = settle_bid(
                        self.index, accepted[position], shard.provisional_prices
                    )

            auction.on_shard = _settle_shard
        outcome = auction.run()
        if shards_seen and len(shard_lines) == len(accepted):
            final = outcome.final_prices
            for shard in shards_seen:
                pools = list(shard.pool_positions)
                if not np.array_equal(shard.provisional_prices[pools], final[pools]):
                    for position in shard.bid_positions:
                        shard_lines[position] = settle_bid(self.index, accepted[position], final)
            settlement = Settlement(
                index=self.index,
                prices=final.copy(),
                lines=[shard_lines[i] for i in range(len(accepted))],
                supply=supply.copy(),
            )
        else:
            settlement = settle(self.index, accepted, outcome.final_prices, supply=supply)
        constraints = verify_system_constraints(settlement, accepted)
        return ExchangeResult(
            index=self.index,
            reserve_prices=reserve,
            outcome=outcome,
            settlement=settlement,
            constraints=constraints,
            operator_supply=supply,
            shard_stats=auction.shard_stats,
            incremental_stats=auction.incremental_stats,
        )

    def preliminary_prices(self, bids: Sequence[Bid]) -> PriceTable:
        """Run a full simulation and return only the prices.

        The trading platform ran this "at periodic intervals during the bid
        collection phase" to display preliminary settlement prices on the
        market front end (Figure 5); only the final run is binding.
        """
        return self.run(bids).final_prices
