"""Bundles and indifference (XOR) sets of bundles.

A *bundle* is an R-component vector over resource pools where positive entries
are quantities demanded and negative entries are quantities offered (paper
Section II).  A user's bid names a set of bundles over which the user is
indifferent — the user wants exactly one of them (XOR semantics) — plus one
willingness-to-pay scalar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex


class BundleKind(str, enum.Enum):
    """Sign structure of a bundle (drives convergence guarantees, Section III-C-3)."""

    EMPTY = "empty"
    BUY = "buy"  # all components >= 0, at least one > 0
    SELL = "sell"  # all components <= 0, at least one < 0
    TRADE = "trade"  # mixed signs


def bundle_kind(quantities: np.ndarray, *, tol: float = 1e-12) -> BundleKind:
    """Classify a raw quantity vector into buy / sell / trade / empty.

    Parameters
    ----------
    quantities:
        Quantity vector; positive entries are demands, negative are offers.
    tol:
        Magnitudes at or below this count as zero.

    Examples
    --------
    >>> bundle_kind([1.0, 0.0]).value
    'buy'
    >>> bundle_kind([1.0, -2.0]).value
    'trade'
    >>> bundle_kind([0.0, 0.0]).value
    'empty'
    """
    arr = np.asarray(quantities, dtype=float)
    has_pos = bool(np.any(arr > tol))
    has_neg = bool(np.any(arr < -tol))
    if has_pos and has_neg:
        return BundleKind.TRADE
    if has_pos:
        return BundleKind.BUY
    if has_neg:
        return BundleKind.SELL
    return BundleKind.EMPTY


@dataclass(frozen=True)
class Bundle:
    """One R-component bundle of resource quantities.

    ``quantities`` is stored as an immutable float array of length
    ``len(index)``.  Positive entries are demands, negative entries offers.

    Examples
    --------
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> b = Bundle.from_mapping(index, {"a/cpu": 10, "a/ram": 40})
    >>> b.kind.value
    'buy'
    >>> b.cost(np.array([2.0, 0.5, 0.0, 0.0]))
    40.0
    >>> b.describe()
    {'a/cpu': 10.0, 'a/ram': 40.0}
    """

    index: PoolIndex
    quantities: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        arr = np.asarray(self.quantities, dtype=float)
        if arr.ndim != 1 or arr.shape[0] != len(self.index):
            raise ValueError(
                f"bundle has {arr.shape} quantities, expected ({len(self.index)},)"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError("bundle quantities must be finite")
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "quantities", arr)

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def from_mapping(index: PoolIndex, quantities: Mapping[str, float], label: str = "") -> "Bundle":
        """Build a bundle from a ``{pool name: quantity}`` mapping."""
        return Bundle(index=index, quantities=index.vector(quantities), label=label)

    @staticmethod
    def empty(index: PoolIndex, label: str = "") -> "Bundle":
        """The all-zero bundle."""
        return Bundle(index=index, quantities=np.zeros(len(index)), label=label)

    # -- properties -------------------------------------------------------------
    @property
    def kind(self) -> BundleKind:
        """Buy / sell / trade / empty classification."""
        return bundle_kind(self.quantities)

    def is_empty(self, *, tol: float = 1e-12) -> bool:
        return self.kind is BundleKind.EMPTY

    def cost(self, prices: np.ndarray) -> float:
        """Linear cost ``q . p`` of this bundle at the given unit prices.

        Positive cost means the bidder pays; negative cost means the bidder
        is paid (it is offering more value than it demands).
        """
        prices = np.asarray(prices, dtype=float)
        if prices.shape != self.quantities.shape:
            raise ValueError(f"price vector shape {prices.shape} != bundle shape {self.quantities.shape}")
        return float(self.quantities @ prices)

    def demanded(self) -> np.ndarray:
        """Positive part of the bundle (quantities demanded)."""
        return np.clip(self.quantities, 0.0, None)

    def offered(self) -> np.ndarray:
        """Magnitude of the negative part (quantities offered)."""
        return np.clip(-self.quantities, 0.0, None)

    def pools_touched(self, *, tol: float = 1e-12) -> list[str]:
        """Names of pools with non-zero quantities."""
        return [
            self.index.pools[i].name
            for i in np.flatnonzero(np.abs(self.quantities) > tol)
        ]

    def describe(self) -> dict[str, float]:
        """Human-readable ``{pool name: quantity}`` for non-zero entries."""
        return self.index.describe(self.quantities)

    def scaled(self, factor: float) -> "Bundle":
        """A new bundle with every quantity multiplied by ``factor``."""
        return Bundle(index=self.index, quantities=self.quantities * float(factor), label=self.label)

    def __add__(self, other: "Bundle") -> "Bundle":
        if other.index is not self.index and other.index.names != self.index.names:
            raise ValueError("cannot add bundles over different pool indexes")
        return Bundle(index=self.index, quantities=self.quantities + other.quantities)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bundle):
            return NotImplemented
        return self.index.names == other.index.names and np.array_equal(
            self.quantities, other.quantities
        )

    def __hash__(self) -> int:
        return hash((tuple(self.index.names), self.quantities.tobytes()))


class BundleSet:
    """An XOR indifference set of bundles ``q_u^1 XOR q_u^2 XOR ...``.

    Internally stores a 2-D array of shape ``(k, R)`` so that evaluating the
    cost of every bundle at a price vector is a single matrix-vector product —
    the inner loop of the clock auction.

    Examples
    --------
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> qs = BundleSet(index, [{"a/cpu": 10}, {"b/cpu": 10}])
    >>> len(qs)
    2
    >>> qs.cheapest(np.array([3.0, 0.0, 1.0, 0.0]))   # (index, cost)
    (1, 10.0)
    >>> qs.aggregate_kind().value
    'buy'
    """

    def __init__(self, index: PoolIndex, bundles: Sequence[Bundle | np.ndarray | Mapping[str, float]]):
        if not bundles:
            raise ValueError("a BundleSet needs at least one bundle")
        self.index = index
        rows: list[np.ndarray] = []
        labels: list[str] = []
        for item in bundles:
            if isinstance(item, Bundle):
                if item.index.names != index.names:
                    raise ValueError("bundle defined over a different pool index")
                rows.append(np.asarray(item.quantities, dtype=float))
                labels.append(item.label)
            elif isinstance(item, Mapping):
                rows.append(index.vector(item))
                labels.append("")
            else:
                arr = np.asarray(item, dtype=float)
                if arr.shape != (len(index),):
                    raise ValueError(f"bundle array has shape {arr.shape}, expected ({len(index)},)")
                rows.append(arr)
                labels.append("")
        self._matrix = np.vstack(rows)
        self._matrix.setflags(write=False)
        self._labels = labels

    # -- accessors ----------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(k, R)`` matrix of bundle quantities."""
        return self._matrix

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def __iter__(self) -> Iterator[Bundle]:
        for i in range(len(self)):
            yield self.bundle(i)

    def bundle(self, i: int) -> Bundle:
        """The ``i``-th bundle as a :class:`Bundle`."""
        return Bundle(index=self.index, quantities=self._matrix[i], label=self._labels[i])

    def costs(self, prices: np.ndarray) -> np.ndarray:
        """Vector of bundle costs ``Q p`` at the given prices (length k)."""
        prices = np.asarray(prices, dtype=float)
        return self._matrix @ prices

    def cheapest(self, prices: np.ndarray) -> tuple[int, float]:
        """Index and cost of the cheapest bundle at ``prices`` (argmin q.p).

        Ties are broken by the lowest index, which makes the proxy behaviour
        deterministic across runs.
        """
        costs = self.costs(prices)
        i = int(np.argmin(costs))
        return i, float(costs[i])

    def kinds(self) -> list[BundleKind]:
        """Classification of every bundle in the set."""
        return [bundle_kind(self._matrix[i]) for i in range(len(self))]

    def aggregate_kind(self) -> BundleKind:
        """Classification of the set as a whole (used for convergence analysis).

        A set is a BUY set if every bundle is a buy (or empty), a SELL set if
        every bundle is a sell (or empty), EMPTY if all bundles are empty, and
        TRADE otherwise.
        """
        kinds = set(self.kinds()) - {BundleKind.EMPTY}
        if not kinds:
            return BundleKind.EMPTY
        if kinds == {BundleKind.BUY}:
            return BundleKind.BUY
        if kinds == {BundleKind.SELL}:
            return BundleKind.SELL
        return BundleKind.TRADE

    def max_demand(self) -> np.ndarray:
        """Component-wise maximum demanded quantity across bundles (>= 0)."""
        return np.clip(self._matrix, 0.0, None).max(axis=0)

    def max_offer(self) -> np.ndarray:
        """Component-wise maximum offered quantity across bundles (>= 0)."""
        return np.clip(-self._matrix, 0.0, None).max(axis=0)


def stack_bundle_sets(sets: Iterable[BundleSet]) -> np.ndarray:
    """Stack the matrices of several bundle sets into one array (for analysis)."""
    matrices = [bundle_set.matrix for bundle_set in sets]
    if not matrices:
        raise ValueError("no bundle sets given")
    return np.vstack(matrices)
