"""Bids: an XOR bundle set plus a willingness-to-pay scalar.

Each user ``u`` submits ``B_u = {Q_u, pi_u}`` (paper Section II):

* ``Q_u`` — the XOR indifference set of bundles (:class:`repro.core.bundles.BundleSet`);
* ``pi_u`` — a scalar: the *maximum* total amount the user is willing to pay
  (positive) or the *minimum* amount the user is willing to receive expressed
  as a negative payment (e.g. ``pi_u = -500`` means "pay me at least 500").

The sign conventions make the proxy rule (Eq. 1) uniform across buyers and
sellers: a bundle is acceptable at prices ``p`` iff its cost ``q.p <= pi_u``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.bundles import Bundle, BundleKind, BundleSet


class BidderClass(str, enum.Enum):
    """Participant classification used in the convergence discussion (III-C-3)."""

    PURE_BUYER = "pure_buyer"
    PURE_SELLER = "pure_seller"
    TRADER = "trader"
    NULL = "null"


@dataclass(frozen=True)
class Bid:
    """One participant's sealed bid for the clock auction.

    Attributes
    ----------
    bidder:
        Participant identifier (an engineering team or the operator).
    bundles:
        The XOR indifference set ``Q_u``.
    limit:
        ``pi_u``: maximum willingness to pay (positive) or minimum acceptable
        revenue as a negative number (sellers).
    metadata:
        Free-form annotations (owning team, originating service request,
        auction round, etc.); never interpreted by the mechanism itself.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> bid = Bid.buy("web-team", index, [{"a/cpu": 10}, {"b/cpu": 10}], max_payment=50.0)
    >>> bid.bidder_class.value
    'pure_buyer'
    >>> bid.acceptable_at(np.array([4.0, 0.0, 6.0, 0.0]))   # cheapest costs 40 <= 50
    True
    >>> bid.acceptable_at(np.array([6.0, 0.0, 7.0, 0.0]))   # cheapest costs 60 > 50
    False
    """

    bidder: str
    bundles: BundleSet
    limit: float
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.bidder:
            raise ValueError("bidder id must be non-empty")
        if not np.isfinite(self.limit):
            raise ValueError("bid limit (pi_u) must be finite")

    # -- convenience constructors ------------------------------------------------
    @staticmethod
    def buy(
        bidder: str,
        index: PoolIndex,
        bundles: Sequence[Mapping[str, float] | np.ndarray | Bundle],
        max_payment: float,
        **metadata: object,
    ) -> "Bid":
        """A buy bid: demand one of ``bundles``, pay at most ``max_payment``.

        Examples
        --------
        >>> from repro.cluster.pools import demo_pool_index
        >>> index = demo_pool_index()
        >>> Bid.buy("t", index, [{"a/cpu": 5}], max_payment=100.0).limit
        100.0
        """
        if max_payment < 0:
            raise ValueError("max_payment must be non-negative for a buy bid")
        return Bid(bidder=bidder, bundles=BundleSet(index, bundles), limit=float(max_payment), metadata=dict(metadata))

    @staticmethod
    def sell(
        bidder: str,
        index: PoolIndex,
        bundles: Sequence[Mapping[str, float] | np.ndarray | Bundle],
        min_revenue: float,
        **metadata: object,
    ) -> "Bid":
        """A sell bid: give up one of ``bundles``, receive at least ``min_revenue``.

        ``bundles`` should contain non-positive quantity vectors (offers); a
        mapping with positive values is negated for convenience so callers can
        write the amounts they are offering as positive numbers.

        Examples
        --------
        >>> from repro.cluster.pools import demo_pool_index
        >>> index = demo_pool_index()
        >>> bid = Bid.sell("t", index, [{"a/cpu": 5}], min_revenue=40.0)
        >>> bid.limit                      # minimum revenue as a negative limit
        -40.0
        >>> bid.bidder_class.value
        'pure_seller'
        """
        if min_revenue < 0:
            raise ValueError("min_revenue must be non-negative for a sell bid")
        normalized: list[np.ndarray] = []
        for item in bundles:
            if isinstance(item, Bundle):
                vec = np.asarray(item.quantities, dtype=float)
            elif isinstance(item, Mapping):
                vec = index.vector(item)
            else:
                vec = np.asarray(item, dtype=float)
            if np.any(vec > 0):
                vec = -np.abs(vec)
            normalized.append(vec)
        return Bid(
            bidder=bidder,
            bundles=BundleSet(index, normalized),
            limit=-float(min_revenue),
            metadata=dict(metadata),
        )

    # -- derived properties --------------------------------------------------------
    @property
    def index(self) -> PoolIndex:
        """The pool index the bid's bundles are expressed over."""
        return self.bundles.index

    @property
    def bidder_class(self) -> BidderClass:
        """Pure buyer / pure seller / trader classification of this bid."""
        return classify_bidder(self)

    def cheapest_bundle(self, prices: np.ndarray) -> tuple[Bundle, float]:
        """The cheapest bundle in ``Q_u`` at ``prices`` and its cost."""
        i, cost = self.bundles.cheapest(prices)
        return self.bundles.bundle(i), cost

    def acceptable_at(self, prices: np.ndarray) -> bool:
        """True iff the cheapest bundle satisfies ``q.p <= pi_u`` (Eq. 1)."""
        _, cost = self.bundles.cheapest(prices)
        return cost <= self.limit + 1e-9


def classify_bidder(bid: Bid) -> BidderClass:
    """Classify a bid by the sign structure of its bundle set (Section III-C-3).

    Examples
    --------
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bundles import BundleSet
    >>> index = demo_pool_index()
    >>> trader = Bid("t", BundleSet(index, [{"a/cpu": 1, "b/cpu": -1}]), limit=0.0)
    >>> classify_bidder(trader).value
    'trader'
    """
    kind = bid.bundles.aggregate_kind()
    if kind is BundleKind.BUY:
        return BidderClass.PURE_BUYER
    if kind is BundleKind.SELL:
        return BidderClass.PURE_SELLER
    if kind is BundleKind.EMPTY:
        return BidderClass.NULL
    return BidderClass.TRADER


def validate_bid(bid: Bid, *, budget: float | None = None) -> list[str]:
    """Validate a bid, returning a list of human-readable problems (empty = valid).

    Checks the structural requirements of the model plus optional budget
    feasibility (a buy bid whose limit exceeds the bidder's budget can never
    be honored by the ledger).

    Examples
    --------
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> bid = Bid.buy("t", index, [{"a/cpu": 5}], max_payment=100.0)
    >>> validate_bid(bid)
    []
    >>> validate_bid(bid, budget=50.0)
    ['bid limit 100.00 exceeds available budget 50.00']
    """
    problems: list[str] = []
    cls = classify_bidder(bid)
    if cls is BidderClass.NULL:
        problems.append("bid contains only empty bundles")
    if cls is BidderClass.PURE_BUYER and bid.limit < 0:
        problems.append("buy bid has a negative willingness to pay")
    if cls is BidderClass.PURE_SELLER and bid.limit > 0:
        problems.append("sell bid has a positive limit; expected a minimum-revenue (negative) limit")
    if budget is not None and bid.limit > budget:
        problems.append(
            f"bid limit {bid.limit:.2f} exceeds available budget {budget:.2f}"
        )
    matrix = bid.bundles.matrix
    if not np.all(np.isfinite(matrix)):
        problems.append("bundle quantities contain non-finite values")
    return problems


def group_bids_by_class(bids: Sequence[Bid]) -> dict[BidderClass, list[Bid]]:
    """Group bids by their :class:`BidderClass` (helper for analysis/reporting).

    Examples
    --------
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> bids = [Bid.buy("t", index, [{"a/cpu": 5}], max_payment=10.0)]
    >>> [b.bidder for b in group_bids_by_class(bids)[BidderClass.PURE_BUYER]]
    ['t']
    """
    groups: dict[BidderClass, list[Bid]] = {cls: [] for cls in BidderClass}
    for bid in bids:
        groups[classify_bidder(bid)].append(bid)
    return groups
