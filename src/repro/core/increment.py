"""Price-increment policies ``g(x, p)`` for the clock auction.

Section III-C-2 of the paper discusses how to pick the increment function:

* the simplest choice is ``g = alpha * z+`` (a small multiple of the positive
  part of excess demand), but it "often causes the prices to move too quickly
  in the early rounds of the auction and then too slowly in the later ones";
* a more effective choice caps the per-round change, Eq. (3):
  ``g = min(alpha * z+, delta * e)``;
* a further adjustment normalizes for differences in base resource prices so
  that cheap resources (disk) do not end up with prices "out of proportion
  from their expected relative sizes".

All three are implemented here, plus a proportional policy that raises each
price by a fraction of its current value scaled by relative excess demand —
the most robust default for heterogeneous pools and the one the experiment
drivers use unless told otherwise.  The ablation benchmark
``benchmarks/test_bench_ablation_increment.py`` compares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


class IncrementPolicy(Protocol):
    """Maps the current system state into a non-negative additive price update."""

    def increment(self, excess_demand: np.ndarray, prices: np.ndarray) -> np.ndarray:
        """Return ``g(x, p) >= 0``, the per-pool additive price change."""
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        """Short human-readable description (used in traces and reports)."""
        ...  # pragma: no cover - protocol


def _positive_part(excess_demand: np.ndarray) -> np.ndarray:
    """``z+ = max(z, 0)`` taken component-wise."""
    return np.clip(np.asarray(excess_demand, dtype=float), 0.0, None)


@dataclass(frozen=True)
class AdditiveIncrement:
    """The naive policy ``g = alpha * z+``.

    Simple but fragile: with heterogeneous pool sizes the excess demand for a
    large disk pool (thousands of GiB) dwarfs the excess demand for CPU, so a
    single ``alpha`` either crawls on CPU or explodes on disk.

    Examples
    --------
    >>> import numpy as np
    >>> policy = AdditiveIncrement(alpha=0.1)
    >>> policy.increment(np.array([50.0, -20.0]), np.array([1.0, 1.0])).tolist()
    [5.0, 0.0]
    """

    alpha: float = 0.01

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def increment(self, excess_demand: np.ndarray, prices: np.ndarray) -> np.ndarray:
        return self.alpha * _positive_part(excess_demand)

    def describe(self) -> str:
        return f"additive(alpha={self.alpha})"


@dataclass(frozen=True)
class CappedIncrement:
    """Paper Eq. (3): ``g = min(alpha * z+, cap)``.

    ``cap_fraction`` bounds each pool's per-round change to a fraction
    ``delta`` of its *current* price (the "no price changes by more than some
    fixed fraction, say delta" reading); set ``absolute_cap`` instead to use
    the literal ``delta * e`` form with a constant cap.

    Examples
    --------
    >>> import numpy as np
    >>> policy = CappedIncrement(alpha=0.1, cap_fraction=0.10)
    >>> # raw step would be 5.0, but the cap is 10% of the current price (1.0)
    >>> policy.increment(np.array([50.0]), np.array([1.0])).tolist()
    [0.1]
    """

    alpha: float = 0.01
    cap_fraction: float | None = 0.10
    absolute_cap: float | None = None

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.cap_fraction is None and self.absolute_cap is None:
            raise ValueError("one of cap_fraction or absolute_cap must be set")
        if self.cap_fraction is not None and self.cap_fraction <= 0:
            raise ValueError("cap_fraction must be positive")
        if self.absolute_cap is not None and self.absolute_cap <= 0:
            raise ValueError("absolute_cap must be positive")

    def increment(self, excess_demand: np.ndarray, prices: np.ndarray) -> np.ndarray:
        raw = self.alpha * _positive_part(excess_demand)
        prices = np.asarray(prices, dtype=float)
        if self.cap_fraction is not None:
            # Fractional cap relative to current price; floor the base at a
            # small constant so zero-priced pools can still move.
            cap = self.cap_fraction * np.maximum(prices, 1e-6)
        else:
            cap = np.full_like(prices, float(self.absolute_cap))
        return np.minimum(raw, cap)

    def describe(self) -> str:
        if self.cap_fraction is not None:
            return f"capped(alpha={self.alpha}, delta={self.cap_fraction} of price)"
        return f"capped(alpha={self.alpha}, cap={self.absolute_cap})"


@dataclass(frozen=True)
class NormalizedIncrement:
    """Capped increment normalized by base resource prices (Section III-C-2).

    Each pool's raw increment is scaled by ``base[r] / mean(base)`` so that a
    pool whose unit cost is 200x smaller (disk vs CPU) also rises 200x more
    slowly in absolute terms, keeping final prices "in proportion from their
    expected relative sizes".

    Examples
    --------
    >>> import numpy as np
    >>> policy = NormalizedIncrement(base_prices=np.array([10.0, 0.1]), alpha=0.01)
    >>> # same excess demand, but the cheap pool's step is scaled down ~100x
    >>> policy.increment(np.array([5.0, 5.0]), np.array([100.0, 1.0])).tolist()
    [0.09900990099009901, 0.0009900990099009901]
    """

    base_prices: np.ndarray
    alpha: float = 0.01
    cap_fraction: float = 0.10

    def __post_init__(self) -> None:
        base = np.asarray(self.base_prices, dtype=float)
        if np.any(base < 0) or not np.all(np.isfinite(base)):
            raise ValueError("base prices must be finite and non-negative")
        if self.alpha <= 0 or self.cap_fraction <= 0:
            raise ValueError("alpha and cap_fraction must be positive")
        object.__setattr__(self, "base_prices", base)

    def increment(self, excess_demand: np.ndarray, prices: np.ndarray) -> np.ndarray:
        base = self.base_prices
        mean_base = float(base.mean()) if base.size else 1.0
        scale = base / mean_base if mean_base > 0 else np.ones_like(base)
        raw = self.alpha * _positive_part(excess_demand) * scale
        cap = self.cap_fraction * np.maximum(np.asarray(prices, dtype=float), 1e-6)
        return np.minimum(raw, cap)

    def describe(self) -> str:
        return f"normalized(alpha={self.alpha}, delta={self.cap_fraction})"


@dataclass(frozen=True)
class ProportionalIncrement:
    """Raise each price by a fraction of itself, proportional to relative excess demand.

    ``g_r = p_r * clip(alpha * z_r+ / scale_r, delta_min, delta)`` where
    ``scale_r`` is a per-pool demand scale (by default the pool's capacity).
    This makes the policy invariant to the units of each pool — a 5%
    over-demand moves CPU and disk prices by the same *relative* amount — and
    caps every step at ``delta`` of the current price, which is the property
    the paper's Eq. (3) is after.  The floor ``delta_min`` addresses the
    opposite failure the paper notes ("too slowly in the later ones"): once a
    pool is over-demanded its price rises by at least ``delta_min`` per round,
    so a trickle of residual excess demand cannot stall the auction.

    Examples
    --------
    >>> import numpy as np
    >>> policy = ProportionalIncrement(scale=np.array([1000.0]), alpha=2.0)
    >>> # 5% over-demand -> 10% relative step, capped at cap_fraction (10%)
    >>> policy.increment(np.array([50.0]), np.array([20.0])).tolist()
    [2.0]
    """

    scale: np.ndarray
    alpha: float = 2.0
    cap_fraction: float = 0.10
    min_fraction: float = 0.01
    min_step: float = 1e-9

    def __post_init__(self) -> None:
        scale = np.asarray(self.scale, dtype=float)
        if np.any(scale <= 0) or not np.all(np.isfinite(scale)):
            raise ValueError("scale must be finite and strictly positive")
        if self.alpha <= 0 or self.cap_fraction <= 0:
            raise ValueError("alpha and cap_fraction must be positive")
        if not (0 <= self.min_fraction <= self.cap_fraction):
            raise ValueError("min_fraction must lie in [0, cap_fraction]")
        object.__setattr__(self, "scale", scale)

    def increment(self, excess_demand: np.ndarray, prices: np.ndarray) -> np.ndarray:
        prices = np.asarray(prices, dtype=float)
        positive = _positive_part(excess_demand)
        relative = self.alpha * positive / self.scale
        fraction = np.clip(relative, 0.0, self.cap_fraction)
        # Floor the relative step on over-demanded pools so the clock cannot crawl.
        fraction = np.where(positive > 0, np.maximum(fraction, self.min_fraction), fraction)
        step = np.maximum(prices, 1e-6) * fraction
        # Guarantee strictly positive movement on over-demanded pools so the
        # auction cannot stall at a zero price.
        step = np.where(positive > 0, np.maximum(step, self.min_step), step)
        return step

    def describe(self) -> str:
        return f"proportional(alpha={self.alpha}, delta={self.cap_fraction})"


def default_increment(capacities: np.ndarray, *, cap_fraction: float = 0.10, alpha: float = 2.0) -> ProportionalIncrement:
    """The recommended default increment policy for a set of pools.

    Uses pool capacities as the per-pool demand scale, so "excess demand equal
    to 1% of the pool" raises its price by ``alpha * 1%`` (capped at
    ``cap_fraction``) regardless of the pool's absolute size.

    Examples
    --------
    >>> import numpy as np
    >>> policy = default_increment(np.array([100.0, 400.0]))
    >>> policy.describe()
    'proportional(alpha=2.0, delta=0.1)'
    """
    capacities = np.asarray(capacities, dtype=float)
    safe = np.where(capacities > 0, capacities, 1.0)
    return ProportionalIncrement(scale=safe, alpha=alpha, cap_fraction=cap_fraction)
