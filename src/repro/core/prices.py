"""Price tables and price-ratio utilities.

These helpers turn raw price vectors into the structures the paper reports:
Figure 6 plots each pool's settled market price as a *ratio over the former
fixed price*; the market-summary page (Figure 3) lists the current market
price of every pool alongside activity counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.cluster.resources import ResourceType


@dataclass(frozen=True)
class PriceTable:
    """Uniform unit prices for every pool, with convenient lookups.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> table = PriceTable(demo_pool_index(), np.array([4.0, 1.0, 2.0, 0.5]))
    >>> table.price("a/cpu")
    4.0
    >>> table.bundle_cost({"a/cpu": 10, "a/ram": 20})
    60.0
    >>> table.ratios_to(np.array([2.0, 1.0, 2.0, 1.0]))["a/cpu"]
    2.0
    """

    index: PoolIndex
    prices: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.prices, dtype=float)
        if arr.shape != (len(self.index),):
            raise ValueError(f"prices have shape {arr.shape}, expected ({len(self.index)},)")
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("prices must be finite and non-negative")
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "prices", arr)

    # -- lookups ---------------------------------------------------------------
    def price(self, pool_name: str) -> float:
        """Unit price of one pool."""
        return float(self.prices[self.index.index_of(pool_name)])

    def cluster_prices(self, cluster: str) -> dict[ResourceType, float]:
        """CPU/RAM/disk unit prices of one cluster."""
        return {
            pool.rtype: float(self.prices[self.index.index_of(pool.name)])
            for pool in self.index.pools_of_cluster(cluster)
        }

    def as_map(self) -> dict[str, float]:
        """Prices keyed by pool name."""
        return {pool.name: float(self.prices[i]) for i, pool in enumerate(self.index)}

    def bundle_cost(self, quantities: Mapping[str, float]) -> float:
        """Cost of a ``{pool name: quantity}`` bundle at these prices."""
        return float(self.index.vector(quantities) @ self.prices)

    # -- comparisons --------------------------------------------------------------
    def ratios_to(self, baseline: "PriceTable | Mapping[str, float] | np.ndarray") -> dict[str, float]:
        """Per-pool ratio of these prices to a baseline price table.

        Pools whose baseline price is zero are reported as ``inf`` when their
        market price is positive and ``1.0`` when both are zero.
        """
        if isinstance(baseline, PriceTable):
            base = baseline.prices
        elif isinstance(baseline, Mapping):
            base = np.array([baseline[name] for name in self.index.names], dtype=float)
        else:
            base = np.asarray(baseline, dtype=float)
        if base.shape != self.prices.shape:
            raise ValueError("baseline has the wrong length")
        result: dict[str, float] = {}
        for i, pool in enumerate(self.index):
            if base[i] > 0:
                result[pool.name] = float(self.prices[i] / base[i])
            else:
                result[pool.name] = float("inf") if self.prices[i] > 0 else 1.0
        return result


def price_ratios(
    market_prices: Mapping[str, float],
    fixed_prices: Mapping[str, float],
) -> dict[str, float]:
    """Market price / former fixed price per pool (the Figure 6 quantity).

    Examples
    --------
    >>> price_ratios({"a/cpu": 30.0}, {"a/cpu": 10.0})
    {'a/cpu': 3.0}
    """
    ratios: dict[str, float] = {}
    for name, market in market_prices.items():
        base = fixed_prices.get(name)
        if base is None:
            raise KeyError(f"no fixed price recorded for pool {name!r}")
        if base > 0:
            ratios[name] = market / base
        else:
            ratios[name] = float("inf") if market > 0 else 1.0
    return ratios


def mean_price_by_type(
    index: PoolIndex, prices: np.ndarray | Sequence[float]
) -> dict[ResourceType, float]:
    """Average unit price per resource dimension (for summaries and sanity checks)."""
    prices = np.asarray(prices, dtype=float)
    result: dict[ResourceType, float] = {}
    for rtype in ResourceType:
        pools = index.pools_of_type(rtype)
        if not pools:
            continue
        values = [prices[index.index_of(pool.name)] for pool in pools]
        result[rtype] = float(np.mean(values))
    return result


def price_dispersion(ratios: Iterable[float]) -> float:
    """Coefficient of variation of a set of price ratios (spread measure)."""
    arr = np.asarray([r for r in ratios if np.isfinite(r)], dtype=float)
    if arr.size == 0 or arr.mean() == 0:
        return 0.0
    return float(arr.std() / arr.mean())
