"""Settlement: turning final clock prices into allocations, payments, and checks.

Once the clock auction clears, the outcome is settled at the final, uniform
unit prices: every bidder whose proxy is still active receives the cheapest
bundle in its indifference set and pays (or is paid) that bundle's linear
cost; everyone else receives nothing.  This module also verifies the SYSTEM
feasibility constraints of Section III-B against the settled outcome and
computes the bid-premium statistic ``gamma_u`` (Eq. 5) used by Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.bids import Bid
from repro.core.clock_auction import AuctionOutcome
from repro.core.proxy import BidderProxy


@dataclass(frozen=True)
class SettlementLine:
    """The settled outcome for one bidder."""

    bidder: str
    won: bool
    #: Quantity vector allocated (zeros when the bidder lost).
    allocation: np.ndarray
    #: Payment ``x_u . p``; positive = bidder pays, negative = bidder is paid.
    payment: float
    #: The bidder's limit ``pi_u``.
    limit: float
    #: Index of the awarded bundle within the bid's bundle set (None if lost).
    bundle_index: int | None

    @property
    def premium(self) -> float | None:
        """Bid premium ``gamma_u = |pi_u - x.p| / |x.p|`` (Eq. 5); ``None`` for losers.

        Undefined (returns ``None``) when the settled payment is zero, which
        can only happen for degenerate free bundles.
        """
        if not self.won:
            return None
        denom = abs(self.payment)
        if denom <= 0.0:
            return None
        return abs(self.limit - self.payment) / denom


@dataclass
class ConstraintReport:
    """Result of checking the SYSTEM constraints (Section III-B) on a settlement."""

    satisfied: bool
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfied


@dataclass
class Settlement:
    """Full settled outcome of one auction."""

    index: PoolIndex
    prices: np.ndarray
    lines: list[SettlementLine]
    supply: np.ndarray

    # -- winners / losers -------------------------------------------------------
    @property
    def winners(self) -> list[SettlementLine]:
        """Lines for bidders who were awarded a bundle."""
        return [line for line in self.lines if line.won]

    @property
    def losers(self) -> list[SettlementLine]:
        """Lines for bidders who were not awarded anything."""
        return [line for line in self.lines if not line.won]

    def line_for(self, bidder: str) -> SettlementLine:
        """The settlement line of one bidder."""
        for line in self.lines:
            if line.bidder == bidder:
                return line
        raise KeyError(f"no settlement line for bidder {bidder!r}")

    # -- aggregates ----------------------------------------------------------------
    def total_allocated(self) -> np.ndarray:
        """Sum of all allocations (net demand minus net offers), per pool."""
        total = np.zeros(len(self.index), dtype=float)
        for line in self.lines:
            total += line.allocation
        return total

    def settled_fraction(self) -> float:
        """Fraction of bids that settled (the '% Settled' column of Table I)."""
        if not self.lines:
            return 0.0
        return len(self.winners) / len(self.lines)

    def total_payments(self) -> float:
        """Net payments collected from winners (buyers pay, sellers receive)."""
        return float(sum(line.payment for line in self.winners))

    def premiums(self) -> list[float]:
        """All defined winner premiums ``gamma_u`` (Eq. 5)."""
        values = [line.premium for line in self.winners]
        return [v for v in values if v is not None]

    def price_map(self) -> dict[str, float]:
        """Final settled prices keyed by pool name."""
        return {pool.name: float(self.prices[i]) for i, pool in enumerate(self.index)}

    def allocation_map(self, bidder: str) -> dict[str, float]:
        """Non-zero allocation of one bidder keyed by pool name."""
        return self.index.describe(self.line_for(bidder).allocation)


def settle(
    index: PoolIndex,
    bids: Sequence[Bid],
    prices: np.ndarray,
    *,
    supply: np.ndarray | None = None,
) -> Settlement:
    """Settle a set of bids at the given uniform unit prices.

    Each bid is settled independently through its proxy: if the cheapest
    bundle at ``prices`` is within the bidder's limit, the bidder wins that
    bundle and pays its cost; otherwise the bidder loses.  This mirrors how
    the final simulation run of the trading platform produced "the final,
    binding market prices and engineering team allocations".

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bids = [Bid.buy("rich", index, [{"a/cpu": 10}], max_payment=100.0),
    ...         Bid.buy("poor", index, [{"a/cpu": 10}], max_payment=10.0)]
    >>> result = settle(index, bids, np.array([5.0, 0.0, 0.0, 0.0]))
    >>> [line.bidder for line in result.winners]
    ['rich']
    >>> result.line_for("rich").payment
    50.0
    >>> result.settled_fraction()
    0.5
    """
    prices = np.asarray(prices, dtype=float)
    if prices.shape != (len(index),):
        raise ValueError(f"price vector has shape {prices.shape}, expected ({len(index)},)")
    supply_vec = (
        np.zeros(len(index), dtype=float) if supply is None else np.asarray(supply, dtype=float)
    )
    lines = [settle_bid(index, bid, prices) for bid in bids]
    return Settlement(index=index, prices=prices.copy(), lines=lines, supply=supply_vec.copy())


def settle_bid(index: PoolIndex, bid: Bid, prices: np.ndarray) -> SettlementLine:
    """Settle a single bid at the given uniform unit prices.

    One line of :func:`settle`, exposed on its own so the exchange can settle
    a shard's bids as soon as that shard's price discovery finishes (the
    sharded engine's ``on_shard`` pipeline) instead of waiting for the whole
    auction.  A bid is structurally zero outside the pools it references, so
    settling it at any price vector that agrees with the final prices on
    those pools produces the identical line.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bid = Bid.buy("rich", index, [{"a/cpu": 10}], max_payment=100.0)
    >>> line = settle_bid(index, bid, np.array([5.0, 0.0, 0.0, 0.0]))
    >>> line.won, line.payment
    (True, 50.0)
    """
    decision = BidderProxy(bid).respond(prices)
    won = bool(decision.active and np.any(np.abs(decision.quantities) > 0))
    return SettlementLine(
        bidder=bid.bidder,
        won=won,
        allocation=decision.quantities if won else np.zeros(len(index)),
        payment=decision.cost if won else 0.0,
        limit=bid.limit,
        bundle_index=decision.bundle_index if won else None,
    )


def settle_outcome(bids: Sequence[Bid], outcome: AuctionOutcome, *, supply: np.ndarray | None = None) -> Settlement:
    """Settle at the final prices of a completed clock auction."""
    return settle(outcome.index, bids, outcome.final_prices, supply=supply)


def verify_system_constraints(
    settlement: Settlement,
    bids: Sequence[Bid],
    *,
    tolerance: float = 1e-6,
) -> ConstraintReport:
    """Check the six SYSTEM constraints of Section III-B against a settlement.

    1. ``x_u in {0, Q_u}`` — every allocation is either zero or one of the
       bidder's own bundles;
    2. ``sum_u x_u <= supply`` — no pool is allocated beyond what is available;
    3. ``pi_u >= x_u . p`` for winners;
    4. ``x_u . p = min_q q . p`` for winners (cheapest-bundle rule);
    5. ``pi_u < min_q q . p`` for losers;
    6. ``p >= 0``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bids = [Bid.buy("t", index, [{"a/cpu": 10}], max_payment=100.0)]
    >>> settlement = settle(index, bids, np.array([5.0, 0.0, 0.0, 0.0]),
    ...                     supply=np.full(len(index), 50.0))
    >>> verify_system_constraints(settlement, bids).satisfied
    True
    """
    violations: list[str] = []
    prices = settlement.prices
    bids_by_name = {bid.bidder: bid for bid in bids}
    scale = np.maximum(np.abs(prices).max(initial=1.0), 1.0)

    # (6) non-negative prices
    if np.any(prices < -tolerance):
        violations.append("constraint 6 violated: negative prices present")

    # (2) no over-allocation
    over = settlement.total_allocated() - settlement.supply
    capacities = np.maximum(settlement.index.capacities(), 1.0)
    bad = np.flatnonzero(over > tolerance * capacities + tolerance)
    for i in bad:
        violations.append(
            f"constraint 2 violated: pool {settlement.index.pools[i].name} over-allocated by {over[i]:.6g}"
        )

    for line in settlement.lines:
        bid = bids_by_name.get(line.bidder)
        if bid is None:
            violations.append(f"settlement contains unknown bidder {line.bidder!r}")
            continue
        costs = bid.bundles.costs(prices)
        min_cost = float(np.min(costs))
        if line.won:
            # (1) allocation is one of the bidder's bundles
            matches = np.any(
                np.all(np.isclose(bid.bundles.matrix, line.allocation, atol=tolerance), axis=1)
            )
            if not matches:
                violations.append(
                    f"constraint 1 violated: {line.bidder} was allocated a bundle outside Q_u"
                )
            # (3) winners pay no more than their limit
            if line.payment > bid.limit + tolerance * scale:
                violations.append(
                    f"constraint 3 violated: {line.bidder} pays {line.payment:.6g} above limit {bid.limit:.6g}"
                )
            # (4) winners get the cheapest bundle in their set
            if line.payment > min_cost + tolerance * scale:
                violations.append(
                    f"constraint 4 violated: {line.bidder} pays {line.payment:.6g} but cheapest bundle costs {min_cost:.6g}"
                )
        else:
            # (5) losers bid too little.  Bids whose cheapest bundle is the
            # empty bundle are degenerate (they "win nothing" by definition)
            # and are exempt from the check.
            cheapest_i = int(np.argmin(costs))
            cheapest_is_empty = bool(
                np.all(np.abs(bid.bundles.matrix[cheapest_i]) <= tolerance)
            )
            if not cheapest_is_empty and bid.limit >= min_cost - tolerance * scale:
                violations.append(
                    f"constraint 5 violated: {line.bidder} lost but its limit {bid.limit:.6g} covers the cheapest bundle cost {min_cost:.6g}"
                )
    return ConstraintReport(satisfied=not violations, violations=violations)
