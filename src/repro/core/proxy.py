"""Bidder proxies: the automated demand functions of the clock auction.

The paper adapts the multi-round clock auction to a single sealed-bid round by
introducing proxies that re-express each bid at every price step (Section
III-C, Eq. 1-2)::

    G_u(p) = q_hat_u   if q_hat_u . p <= pi_u
             0         otherwise
    q_hat_u in argmin_{q in Q_u} q . p

i.e. at each round the proxy demands the cheapest bundle in the bidder's
indifference set, unless even that bundle exceeds the bidder's limit, in which
case the bidder drops out (demands nothing) for that round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bids import Bid
from repro.core.bundles import Bundle

#: Numerical slack in the acceptability test ``q.p <= pi_u + DROPOUT_SLACK``.
#: The batch demand engine (:mod:`repro.core.batch`) applies the identical
#: slack so both engines make the same drop-out decisions.
DROPOUT_SLACK = 1e-9


@dataclass(frozen=True)
class ProxyDecision:
    """The proxy's response to one price vector."""

    bidder: str
    #: Quantity vector demanded (positive) / offered (negative); all zeros if
    #: the bidder dropped out at these prices.
    quantities: np.ndarray
    #: Index of the chosen bundle in the bid's bundle set, or ``None`` if the
    #: bidder dropped out.
    bundle_index: int | None
    #: Cost ``q . p`` of the chosen bundle (0.0 when dropped out).
    cost: float
    #: Whether the bidder is in (demanding a bundle) at these prices.
    active: bool


class BidderProxy:
    """A proxy wrapping one sealed bid, implementing ``G_u(p)``.

    The proxy is stateless between calls — it simply re-evaluates the bid at
    whatever prices the auctioneer announces — but it records the last
    decision for inspection and tracing.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bid = Bid.buy("t", index, [{"a/cpu": 10}], max_payment=30.0)
    >>> proxy = BidderProxy(bid)
    >>> proxy.respond(np.array([2.0, 0.0, 0.0, 0.0])).active   # costs 20 <= 30
    True
    >>> proxy.respond(np.array([5.0, 0.0, 0.0, 0.0])).active   # costs 50 > 30
    False
    """

    def __init__(self, bid: Bid):
        self.bid = bid
        self._last: ProxyDecision | None = None

    @property
    def bidder(self) -> str:
        return self.bid.bidder

    @property
    def last_decision(self) -> ProxyDecision | None:
        """The most recent decision (for round traces); ``None`` before the first call."""
        return self._last

    def respond(self, prices: np.ndarray) -> ProxyDecision:
        """Evaluate ``G_u(p)`` at the given prices."""
        prices = np.asarray(prices, dtype=float)
        bundle_i, cost = self.bid.bundles.cheapest(prices)
        if cost <= self.bid.limit + DROPOUT_SLACK:
            decision = ProxyDecision(
                bidder=self.bid.bidder,
                quantities=self.bid.bundles.matrix[bundle_i].copy(),
                bundle_index=bundle_i,
                cost=cost,
                active=True,
            )
        else:
            decision = ProxyDecision(
                bidder=self.bid.bidder,
                quantities=np.zeros(len(self.bid.index), dtype=float),
                bundle_index=None,
                cost=0.0,
                active=False,
            )
        self._last = decision
        return decision

    def chosen_bundle(self, prices: np.ndarray) -> Bundle | None:
        """The bundle the proxy would take at ``prices``, or ``None`` if it drops out."""
        decision = self.respond(prices)
        if not decision.active or decision.bundle_index is None:
            return None
        return self.bid.bundles.bundle(decision.bundle_index)

    def dropout_price_scale(self, prices: np.ndarray, *, max_scale: float = 1e6) -> float:
        """Scalar ``s`` such that the proxy drops out at prices ``s * p``.

        Only meaningful for pure buyers (whose bundle costs grow linearly in
        the price scale); used by diagnostics to bound the number of rounds a
        clock auction can take.  Returns ``max_scale`` if the bidder never
        drops out along this ray (e.g. sellers, whose costs decrease).
        """
        prices = np.asarray(prices, dtype=float)
        costs = self.bid.bundles.costs(prices)
        cheapest = float(np.min(costs))
        if cheapest <= 0.0:
            return float(max_scale)
        return float(min(max_scale, self.bid.limit / cheapest))


def aggregate_demand(proxies: list[BidderProxy], prices: np.ndarray) -> np.ndarray:
    """Excess demand ``z(p) = sum_u G_u(p)`` across all proxies.

    The vectorized equivalent over many bidders is
    :meth:`repro.core.batch.BatchDemandEngine.aggregate_demand`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> proxies = [BidderProxy(Bid.buy(f"t{i}", index, [{"a/cpu": 10}], max_payment=100.0))
    ...            for i in range(3)]
    >>> aggregate_demand(proxies, np.ones(len(index))).tolist()
    [30.0, 0.0, 0.0, 0.0]
    """
    prices = np.asarray(prices, dtype=float)
    total = np.zeros_like(prices)
    for proxy in proxies:
        total += proxy.respond(prices).quantities
    return total
