"""Vectorized batch demand engine for the clock auction.

The scalar reference path walks a Python list of
:class:`~repro.core.proxy.BidderProxy` objects and evaluates ``G_u(p)``
(paper Section III-C, Eq. 1-2) one bidder at a time.  That loop dominates the
cost of every auction round and caps scenario scale at a few hundred bidders.

This module flattens *all* sealed bids into dense NumPy arrays once, up
front, and evaluates one full auction round — every bidder's cheapest-bundle
choice, drop-out test, demand vector, and the market-wide demand total — as a
handful of matrix operations:

1. stack every bundle of every bid into one ``(K, R)`` quantity matrix
   (``K`` = total bundle rows across all bidders, ``R`` = pools);
2. per round, one matrix-vector product gives all ``K`` bundle costs;
3. segmented ``np.minimum.reduceat`` reductions give each bidder's cheapest
   bundle (with the same lowest-index tie-break as the scalar proxy);
4. a comparison against the stacked limit vector gives the drop-out mask
   (with the same ``DROPOUT_SLACK`` tolerance the scalar proxy uses);
5. one masked gather plus a single axis-0 reduction gives the total demand.

The engine produces exactly the per-round values the scalar path produces —
the same chosen bundle indices, activity flags, demand vectors, and total
demand — so :class:`~repro.core.clock_auction.AscendingClockAuction` can swap
it in underneath the existing round-trace contract (``AuctionRound`` /
``AuctionOutcome``) without any caller noticing anything but speed.

Beyond the one-shot evaluation this module is also the substrate of the
*sharded* engine (``engine="sharded"`` in
:class:`~repro.core.clock_auction.AuctionConfig`): :func:`plan_shards`
partitions the pool index into independent shards — groups of pools that no
bid couples across — straight from the stacked bid matrix, and
:meth:`BatchDemandEngine.restrict` carves a per-shard row view of the stacked
arrays so each shard's price discovery runs on its own (smaller) batch
engine.  See ``docs/sharding.md`` for the merge semantics.

The third layer is the *incremental* kernel (``engine="incremental"``):
:meth:`BatchDemandEngine.incremental` opens an
:class:`IncrementalDemandState` that exploits round-to-round sparsity.  The
clock only raises prices on over-demanded pools, so late rounds move a
shrinking subset of the price vector; the state keeps a CSR-style
pool → bundle-row inverted index and per-row cost accumulators, and
:meth:`IncrementalDemandState.respond_delta` re-evaluates only the rows that
reference a pool whose price actually moved.  Bidders that are pure buyers
(all bundle quantities non-negative) are *retired* the round they drop out —
their bundle costs are monotone non-decreasing along the clock's ascending
price path, so they can never re-enter and their rows are permanently
excluded from future deltas.  Sellers and traders (any negative quantity)
are never retired: their costs can fall as prices rise, so they may re-enter
and must be re-evaluated whenever one of their pools moves.  See
``docs/engines.md`` for the engine matrix and the full soundness argument.

Numerical-identity notes
------------------------

* Demand *totals* are accumulated with :func:`sum_demand_rows`
  (``np.add.reduce`` over axis 0), which is bit-identical to the scalar
  path's sequential ``total += quantities`` accumulation for IEEE floats.
  Because a bid's bundle rows are structurally zero outside the pools it
  references (and structural zeros stay exactly ``+0.0`` under any finite
  price), a shard's per-pool total is bit-identical to the full stacked
  sum restricted to the shard's pools — the property the sharded engine's
  trace merge rests on.
* Bundle *costs* come from one stacked matrix-vector product instead of one
  small product per bidder; BLAS may order the per-row dot products'
  partial sums differently, so costs can differ from the scalar path in the
  last few ULPs.  The same qualification applies between the full stacked
  matrix and a shard's row subset (gemv partial-sum order depends on the
  row count).  This only matters when a bundle cost sits within ~1e-15
  (relative) of another bundle's cost or of the bidder's limit — knife-edge
  ties that the equivalence test suite shows do not occur for generic
  instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.bids import Bid
from repro.core.proxy import DROPOUT_SLACK


def _gather_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate the index ranges ``[starts[i], starts[i] + counts[i])``.

    Vectorized equivalent of ``np.concatenate([np.arange(s, s + c) ...])``
    without a Python-level loop: the workhorse behind both
    :meth:`BatchDemandEngine.restrict` (gathering each selected bid's
    contiguous row range) and the incremental kernel (gathering the bundle
    rows of a set of bidders).

    Examples
    --------
    >>> import numpy as np
    >>> _gather_ranges(np.array([5, 0]), np.array([2, 3])).tolist()
    [5, 6, 0, 1, 2]
    >>> _gather_ranges(np.zeros(0, dtype=np.intp), np.zeros(0, dtype=np.intp)).size
    0
    """
    starts = np.asarray(starts, dtype=np.intp)
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.intp)
    ends = np.cumsum(counts)
    local = np.arange(total, dtype=np.intp) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + local


def sum_demand_rows(rows: np.ndarray) -> np.ndarray:
    """Sum per-bidder demand rows into the market-wide total demand.

    Uses ``np.add.reduce`` over axis 0, which accumulates rows in order and is
    bit-identical to the scalar engine's sequential ``total += quantities``
    loop — the property the scalar/batch trace-equivalence guarantee rests on.

    Parameters
    ----------
    rows:
        ``(n, R)`` array of per-bidder quantity vectors.

    Returns
    -------
    numpy.ndarray
        Length-``R`` total demand vector (zeros when ``rows`` is empty).

    Examples
    --------
    >>> import numpy as np
    >>> sum_demand_rows(np.array([[1.0, 0.0], [2.0, -1.0]]))
    array([ 3., -1.])
    >>> sum_demand_rows(np.zeros((0, 2)))
    array([0., 0.])
    """
    rows = np.asarray(rows, dtype=float)
    if rows.shape[0] == 0:
        return np.zeros(rows.shape[1], dtype=float)
    return np.add.reduce(rows, axis=0)


@dataclass(frozen=True)
class ShardPlan:
    """A partition of pools (and the bids over them) into independent shards.

    Two pools belong to the same shard exactly when some bid references both
    (any bundle of a bid couples *all* pools the bid touches, because the XOR
    set is evaluated jointly against one limit).  Pools no bid references —
    plus bids whose bundles are all-zero — are collected into one trailing
    *leftover* shard, which trivially clears in a single round.

    Attributes
    ----------
    pool_groups:
        Pool positions per shard, each sorted ascending; together they cover
        every pool exactly once.
    bid_groups:
        Bid positions (submission order) per shard, aligned with
        ``pool_groups``; together they cover every bid exactly once.
    """

    pool_groups: tuple[tuple[int, ...], ...]
    bid_groups: tuple[tuple[int, ...], ...]

    @property
    def shard_count(self) -> int:
        """Number of shards, including a trailing leftover shard if any."""
        return len(self.pool_groups)

    @property
    def effective_shards(self) -> int:
        """Number of shards that actually carry bids.

        The sharded engine only pays its orchestration overhead when at least
        two shards have price discovery to do; below that it falls back to
        the plain batch loop.
        """
        return sum(1 for group in self.bid_groups if group)

    def describe(self) -> dict[str, object]:
        """Scalar facts for logs and stats: shard count and size spread."""
        sizes = sorted((len(g) for g in self.bid_groups), reverse=True)
        return {
            "shards": self.shard_count,
            "effective_shards": self.effective_shards,
            "largest_shard_bids": sizes[0] if sizes else 0,
            "pool_groups": [len(g) for g in self.pool_groups],
        }


@dataclass(frozen=True)
class BatchResponse:
    """All bidders' proxy decisions for one price vector, in dense form.

    The batched analogue of a list of
    :class:`~repro.core.proxy.ProxyDecision` objects: row ``i`` of every
    array describes bidder ``bidders[i]``.

    Attributes
    ----------
    bidders:
        Bidder identifiers, in submission order.
    quantities:
        ``(n, R)`` demand matrix; row ``i`` is bidder ``i``'s demanded
        (positive) / offered (negative) quantities, all zeros on drop-out.
    total:
        Length-``R`` market-wide demand ``sum_u G_u(p)``.
    bundle_indices:
        Chosen bundle index within each bidder's own bundle set, ``-1`` for
        bidders that dropped out.
    costs:
        Chosen-bundle cost ``q.p`` per bidder (``0.0`` on drop-out).
    active:
        Boolean drop-out mask: ``True`` where the bidder is still in.
    """

    bidders: tuple[str, ...]
    quantities: np.ndarray
    total: np.ndarray
    bundle_indices: np.ndarray
    costs: np.ndarray
    active: np.ndarray

    @property
    def active_count(self) -> int:
        """Number of bidders still demanding a bundle at these prices."""
        return int(np.count_nonzero(self.active))

    def demand_map(self) -> dict[str, np.ndarray]:
        """Per-bidder demand vectors keyed by bidder id (round-trace form)."""
        return {name: self.quantities[i] for i, name in enumerate(self.bidders)}


@dataclass(frozen=True)
class _DeltaLayout:
    """Inverted indexes the incremental kernel needs, built once per engine.

    All three structures are derived purely from the *structural* sparsity of
    the stacked bundle matrix (which entries are nonzero), never from prices,
    so they stay valid for the engine's whole lifetime.

    Attributes
    ----------
    col_indptr / col_rows:
        CSR-over-columns (i.e. CSC) view of the bundle matrix: bundle rows
        referencing pool ``c`` are ``col_rows[col_indptr[c]:col_indptr[c+1]]``,
        ascending.  A price move on pool ``c`` can only change the costs of
        exactly these rows.
    pool_bidder_indptr / pool_bidders:
        The same inversion one level up: bidders whose *bid* references pool
        ``c`` (any bundle row nonzero there) are
        ``pool_bidders[pool_bidder_indptr[c]:pool_bidder_indptr[c+1]]``,
        ascending.  Only these bidders can contribute a nonzero demand to
        pool ``c``'s total, which is what lets the running total be patched
        per pool by re-accumulating just this subsequence.
    buyer_mask:
        ``True`` for bidders whose every bundle quantity is non-negative
        (pure buyers).  Only these may be permanently retired on drop-out:
        their bundle costs are monotone non-decreasing along the clock's
        ascending price path.  Sellers/traders can re-enter and never retire.
    """

    col_indptr: np.ndarray
    col_rows: np.ndarray
    pool_bidder_indptr: np.ndarray
    pool_bidders: np.ndarray
    buyer_mask: np.ndarray


class BatchDemandEngine:
    """Evaluates every bidder's proxy response in one shot per round.

    Flattens a sequence of sealed bids into dense arrays at construction time
    and answers each price announcement with a :class:`BatchResponse`
    containing the same decisions the scalar proxies would have made.

    Parameters
    ----------
    index:
        The pool index all bids are expressed over.
    bids:
        Sealed bids; their XOR bundle sets are stacked row-wise into one
        matrix.  Bids over a different pool index raise ``ValueError``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bids = [
    ...     Bid.buy("team-a", index, [{"a/cpu": 10}], max_payment=100.0),
    ...     Bid.buy("team-b", index, [{"b/cpu": 5}], max_payment=1.0),
    ... ]
    >>> engine = BatchDemandEngine(index, bids)
    >>> response = engine.respond_all(np.full(len(index), 2.0))
    >>> response.active.tolist()          # team-b's bundle costs 10 > 1
    [True, False]
    >>> float(response.total[index.index_of("a/cpu")])
    10.0
    """

    def __init__(self, index: PoolIndex, bids: Sequence[Bid]):
        self.index = index
        bids = list(bids)
        for bid in bids:
            if bid.index.names != index.names:
                raise ValueError(
                    f"bid from {bid.bidder!r} is defined over a different pool index"
                )
        self.bidders: tuple[str, ...] = tuple(bid.bidder for bid in bids)
        n = len(bids)
        r = len(index)
        if n == 0:
            self._matrix = np.zeros((0, r), dtype=float)
            counts = np.zeros(0, dtype=np.intp)
        else:
            self._matrix = np.vstack([bid.bundles.matrix for bid in bids]).astype(float, copy=False)
            counts = np.array([len(bid.bundles) for bid in bids], dtype=np.intp)
        self._limits = np.array([bid.limit for bid in bids], dtype=float)
        self._init_layout(counts)

    def _init_layout(self, counts: np.ndarray) -> None:
        """Derive the segment bookkeeping from per-bidder bundle counts."""
        n = len(self.bidders)
        offsets = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        self._starts = offsets[:-1]
        self._offsets = offsets
        k = int(offsets[-1])
        self._k = k
        #: Global row number of every bundle row (argmin tie-break helper).
        self._row_ids = np.arange(k, dtype=np.intp)
        #: Which bidder each bundle row belongs to.
        self._segment_ids = np.repeat(np.arange(n, dtype=np.intp), counts)
        #: Lazily built inverted indexes for the incremental kernel
        #: (see :meth:`_ensure_delta_layout`).
        self._delta_layout: _DeltaLayout | None = None

    def __len__(self) -> int:
        return len(self.bidders)

    @property
    def bundle_rows(self) -> int:
        """Total number of stacked bundle rows ``K`` across all bidders."""
        return self._k

    @property
    def matrix(self) -> np.ndarray:
        """The stacked ``(K, R)`` bundle-quantity matrix."""
        return self._matrix

    @property
    def limits(self) -> np.ndarray:
        """Per-bidder willingness-to-pay limits ``pi_u``."""
        return self._limits

    def restrict(self, positions: Sequence[int]) -> "BatchDemandEngine":
        """A new engine over the given bid positions (submission-order subset).

        The stacked matrix rows of the selected bids are gathered into a
        contiguous copy over the *full* pool axis, so the restricted engine
        answers the same full-length price vectors as its parent — which is
        what lets a shard's responses slot bitwise into the global trace
        (structural zeros outside the shard's pools contribute exact ``+0.0``
        to every cost and total).

        Examples
        --------
        >>> import numpy as np
        >>> from repro.cluster.pools import demo_pool_index
        >>> from repro.core.bids import Bid
        >>> index = demo_pool_index()
        >>> bids = [Bid.buy(f"t{i}", index, [{"a/cpu": 5}], max_payment=50.0) for i in range(3)]
        >>> sub = BatchDemandEngine(index, bids).restrict([2, 0])
        >>> sub.bidders
        ('t2', 't0')
        >>> sub.matrix.shape
        (2, 4)
        """
        positions = np.asarray(positions, dtype=np.intp)
        sub = object.__new__(BatchDemandEngine)
        sub.index = self.index
        sub.bidders = tuple(self.bidders[int(i)] for i in positions)
        sub._limits = self._limits[positions]
        counts = self._offsets[positions + 1] - self._offsets[positions]
        rows = _gather_ranges(self._starts[positions], counts)
        if rows.size:
            sub._matrix = np.ascontiguousarray(self._matrix[rows])
        else:
            sub._matrix = np.zeros((0, len(self.index)), dtype=float)
        sub._init_layout(counts)
        return sub

    def plan_shards(self) -> ShardPlan:
        """Partition pools and bids into independent shards (see :class:`ShardPlan`).

        Union-find over pool positions: every bid unions together all pools
        any of its bundles references.  Shards are ordered by their smallest
        pool position; unreferenced pools and all-zero bids form one trailing
        leftover shard.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.cluster.pools import demo_pool_index
        >>> from repro.core.bids import Bid
        >>> index = demo_pool_index()   # pools: a/cpu a/ram b/cpu b/ram
        >>> bids = [Bid.buy("a", index, [{"a/cpu": 1, "a/ram": 2}], max_payment=9.0),
        ...         Bid.buy("b", index, [{"b/cpu": 1}], max_payment=9.0)]
        >>> plan = BatchDemandEngine(index, bids).plan_shards()
        >>> plan.pool_groups
        ((0, 1), (2,), (3,))
        >>> plan.bid_groups
        ((0,), (1,), ())
        """
        r = len(self.index)
        n = len(self.bidders)
        parent = list(range(r))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            # Attach the larger root under the smaller so every component's
            # root is its smallest pool position (deterministic ordering).
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb

        nz_rows, nz_cols = np.nonzero(self._matrix)
        seg = self._segment_ids
        #: First referenced pool of each bid; -1 for all-zero bids.
        anchor = np.full(n, -1, dtype=np.intp)
        current_bid = -1
        current_anchor = -1
        for row, col in zip(nz_rows.tolist(), nz_cols.tolist()):
            bid = int(seg[row])
            if bid != current_bid:
                current_bid = bid
                current_anchor = col
                anchor[bid] = col
            else:
                union(current_anchor, col)

        referenced = np.zeros(r, dtype=bool)
        referenced[nz_cols] = True
        pool_by_root: dict[int, list[int]] = {}
        leftover_pools: list[int] = []
        for p in range(r):
            if referenced[find(p)] or referenced[p]:
                pool_by_root.setdefault(find(p), []).append(p)
            else:
                leftover_pools.append(p)
        roots = sorted(pool_by_root)
        shard_of_root = {root: i for i, root in enumerate(roots)}
        bid_by_shard: list[list[int]] = [[] for _ in roots]
        leftover_bids: list[int] = []
        for b in range(n):
            if anchor[b] < 0:
                leftover_bids.append(b)
            else:
                bid_by_shard[shard_of_root[find(int(anchor[b]))]].append(b)
        pool_groups = [tuple(pool_by_root[root]) for root in roots]
        bid_groups = [tuple(group) for group in bid_by_shard]
        if leftover_pools or leftover_bids:
            pool_groups.append(tuple(leftover_pools))
            bid_groups.append(tuple(leftover_bids))
        return ShardPlan(pool_groups=tuple(pool_groups), bid_groups=tuple(bid_groups))

    def respond_all(self, prices: np.ndarray) -> BatchResponse:
        """Evaluate ``G_u(p)`` for every bidder at once.

        One stacked matrix-vector product computes all bundle costs; segmented
        minimum reductions pick each bidder's cheapest bundle with the same
        lowest-index tie-break as :meth:`repro.core.proxy.BidderProxy.respond`,
        and the same ``limit + DROPOUT_SLACK`` drop-out rule is applied.
        """
        prices = np.asarray(prices, dtype=float)
        n = len(self.bidders)
        r = len(self.index)
        if n == 0:
            return BatchResponse(
                bidders=(),
                quantities=np.zeros((0, r), dtype=float),
                total=np.zeros(r, dtype=float),
                bundle_indices=np.zeros(0, dtype=np.intp),
                costs=np.zeros(0, dtype=float),
                active=np.zeros(0, dtype=bool),
            )
        costs = self._matrix @ prices
        cheapest = np.minimum.reduceat(costs, self._starts)
        active = cheapest <= self._limits + DROPOUT_SLACK
        dropped = ~active
        # Lowest-index argmin per segment: replace non-minimal rows with K
        # (past-the-end sentinel) and take the segmented minimum of row ids.
        candidates = np.where(costs == cheapest[self._segment_ids], self._row_ids, self._k)
        chosen_rows = np.minimum.reduceat(candidates, self._starts)
        bundle_indices = np.where(active, chosen_rows - self._starts, -1)
        # Gather the chosen rows (a fresh copy), then zero dropped-out bidders
        # in place — far cheaper than a masked np.where over a temporary.
        quantities = self._matrix[chosen_rows]
        quantities[dropped] = 0.0
        chosen_costs = costs[chosen_rows]
        chosen_costs[dropped] = 0.0
        return BatchResponse(
            bidders=self.bidders,
            quantities=quantities,
            total=sum_demand_rows(quantities),
            bundle_indices=bundle_indices,
            costs=chosen_costs,
            active=active,
        )

    def aggregate_demand(self, prices: np.ndarray) -> np.ndarray:
        """Total demand ``z(p) = sum_u G_u(p)``; batched twin of
        :func:`repro.core.proxy.aggregate_demand`."""
        return self.respond_all(prices).total

    def dropout_price_scales(self, prices: np.ndarray, *, max_scale: float = 1e6) -> np.ndarray:
        """Per-bidder scalar ``s`` such that bidder ``u`` drops out at ``s * p``.

        Vectorized twin of
        :meth:`repro.core.proxy.BidderProxy.dropout_price_scale`: meaningful
        for pure buyers (whose costs grow linearly in the price scale);
        bidders that never drop out along the ray report ``max_scale``.
        """
        prices = np.asarray(prices, dtype=float)
        if len(self.bidders) == 0:
            return np.zeros(0, dtype=float)
        costs = self._matrix @ prices
        cheapest = np.minimum.reduceat(costs, self._starts)
        scales = np.full(len(self.bidders), float(max_scale))
        positive = cheapest > 0.0
        scales[positive] = np.minimum(max_scale, self._limits[positive] / cheapest[positive])
        return scales

    # -- incremental kernel ---------------------------------------------------
    def _ensure_delta_layout(self) -> _DeltaLayout:
        """Build (once) the inverted indexes of :class:`_DeltaLayout`."""
        if self._delta_layout is not None:
            return self._delta_layout
        n = len(self.bidders)
        r = len(self.index)
        nz_rows, nz_cols = np.nonzero(self._matrix)
        # CSC: stable sort by column keeps rows ascending within each column.
        order = np.argsort(nz_cols, kind="stable")
        col_rows = nz_rows[order]
        col_indptr = np.zeros(r + 1, dtype=np.intp)
        np.cumsum(np.bincount(nz_cols, minlength=r), out=col_indptr[1:])
        # Pool -> referencing bidders: dedup (column, bidder) pairs.  The
        # encoded keys are already sorted (columns ascending; within a column
        # rows — hence segment ids — ascending), so dedup is one comparison.
        keys = nz_cols[order] * n + self._segment_ids[col_rows]
        if keys.size:
            keep = np.concatenate(([True], keys[1:] != keys[:-1]))
            keys = keys[keep]
        pool_bidders = keys % max(n, 1)
        pool_bidder_indptr = np.zeros(r + 1, dtype=np.intp)
        np.cumsum(np.bincount(keys // max(n, 1), minlength=r), out=pool_bidder_indptr[1:])
        if self._k:
            buyer_mask = np.logical_and.reduceat(
                np.all(self._matrix >= 0.0, axis=1), self._starts
            )
        else:
            buyer_mask = np.zeros(n, dtype=bool)
        self._delta_layout = _DeltaLayout(
            col_indptr=col_indptr,
            col_rows=col_rows,
            pool_bidder_indptr=pool_bidder_indptr,
            pool_bidders=pool_bidders.astype(np.intp, copy=False),
            buyer_mask=buyer_mask,
        )
        return self._delta_layout

    def incremental(self) -> "IncrementalDemandState":
        """Open a delta-driven evaluation state over this engine's bids.

        The returned :class:`IncrementalDemandState` answers a *monotone*
        sequence of price announcements (the clock only raises prices) by
        re-evaluating only the bundle rows that reference a pool whose price
        actually moved, while producing exactly the decisions
        :meth:`respond_all` would.  Each state is one clock run; open a fresh
        state to restart from the reserve prices.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.cluster.pools import demo_pool_index
        >>> from repro.core.bids import Bid
        >>> index = demo_pool_index()   # pools: a/cpu a/ram b/cpu b/ram
        >>> bids = [
        ...     Bid.buy("a", index, [{"a/cpu": 10}], max_payment=25.0),
        ...     Bid.buy("b", index, [{"b/cpu": 5}], max_payment=1e6),
        ... ]
        >>> engine = BatchDemandEngine(index, bids)
        >>> state = engine.incremental()
        >>> p = np.ones(len(index))
        >>> state.advance(p); state.rows_evaluated        # round 0: all rows
        [2]
        >>> p2 = p.copy(); p2[0] = 3.0                    # only a/cpu moves
        >>> state.advance(p2); state.rows_evaluated[-1]   # only team a's row
        1
        >>> bool(state.active[0])                         # 30 > 25: dropped
        False
        >>> state.retired_count                           # pure buyer: retired
        1
        >>> p3 = p2.copy(); p3[0] = 9.0
        >>> state.advance(p3); state.rows_evaluated[-1]   # row is retired now
        0
        """
        return IncrementalDemandState(self)


class IncrementalDemandState:
    """Delta-driven round evaluation over a :class:`BatchDemandEngine`.

    Maintains, across a monotone (non-decreasing) price sequence:

    * per-bundle-row cost accumulators, refreshed only for rows touching
      pools whose prices moved (via the CSC pool -> row index);
    * each bidder's cheapest bundle / drop-out flag / demand row, recomputed
      only for bidders owning a touched row, with the identical segmented
      reductions, tie-break, and ``DROPOUT_SLACK`` rule as
      :meth:`BatchDemandEngine.respond_all`;
    * the market-wide total-demand vector as a *running sum*, patched per
      changed pool instead of re-reduced over all bidders;
    * a permanent retired set: pure buyers that drop out can never re-enter
      under ascending prices, so their rows leave the active set for good.

    The state's round sequence is bit-identical to calling ``respond_all``
    afresh each round (see the numerical-identity notes in the module
    docstring for the one ULP qualification on bundle costs, shared with the
    sharded engine).  ``quantities``/``total`` expose live internal buffers
    that later ``advance`` calls mutate in place — callers that record them
    must copy (:meth:`demand_map` does).
    """

    def __init__(self, engine: BatchDemandEngine):
        self.engine = engine
        self._layout = engine._ensure_delta_layout()
        n = len(engine.bidders)
        r = len(engine.index)
        k = engine._k
        self._prices: np.ndarray | None = None
        self._costs = np.zeros(k, dtype=float)
        self._cheapest = np.zeros(n, dtype=float)
        self._chosen_rows = np.zeros(n, dtype=np.intp)
        self._active = np.zeros(n, dtype=bool)
        self._quantities = np.zeros((n, r), dtype=float)
        self._total = np.zeros(r, dtype=float)
        self._active_count = 0
        self._retired = np.zeros(n, dtype=bool)
        self._live_rows = np.ones(k, dtype=bool)
        # Scratch masks for duplicate-free touched-row / affected-bidder
        # collection (a linear scan beats ``np.unique``'s sort by ~40x at
        # stress scale).
        self._row_scratch = np.zeros(k, dtype=bool)
        self._bidder_scratch = np.zeros(n, dtype=bool)
        #: Number of bundle rows re-evaluated per round (round 0 = all rows).
        self.rows_evaluated: list[int] = []

    # -- read side (live buffers: do not mutate) ------------------------------
    @property
    def round_count(self) -> int:
        """Number of price announcements evaluated so far."""
        return len(self.rows_evaluated)

    @property
    def total(self) -> np.ndarray:
        """The running total demand ``sum_u G_u(p)`` (borrowed buffer)."""
        return self._total

    @property
    def quantities(self) -> np.ndarray:
        """Per-bidder ``(n, R)`` demand rows at the last prices (borrowed)."""
        return self._quantities

    @property
    def active(self) -> np.ndarray:
        """Per-bidder drop-out mask at the last prices (borrowed)."""
        return self._active

    @property
    def active_count(self) -> int:
        """Number of bidders still demanding a bundle at the last prices."""
        return self._active_count

    @property
    def retired_count(self) -> int:
        """Number of bidders permanently retired (dropped-out pure buyers)."""
        return int(np.count_nonzero(self._retired))

    def demand_map(self) -> dict[str, np.ndarray]:
        """Caller-owned per-bidder demand copies (round-trace form)."""
        return {
            name: self._quantities[i].copy()
            for i, name in enumerate(self.engine.bidders)
        }

    def stats(self) -> dict[str, object]:
        """Diagnostic facts about the delta run (never canonical output)."""
        k = self.engine._k
        later = self.rows_evaluated[1:]
        return {
            "bundle_rows": k,
            "rounds": len(self.rows_evaluated),
            "rows_evaluated": list(self.rows_evaluated),
            "retired_bidders": self.retired_count,
            "live_rows": int(np.count_nonzero(self._live_rows)),
            "mean_rows_fraction_after_first": (
                float(np.mean(later)) / k if (k and later) else 0.0
            ),
        }

    # -- write side -----------------------------------------------------------
    def advance(self, prices: np.ndarray, moved_mask: np.ndarray | None = None) -> None:
        """Evaluate the next price announcement of the clock.

        The first call performs one full evaluation (identical operations to
        :meth:`BatchDemandEngine.respond_all`); every later call re-evaluates
        only live bundle rows touching pools whose prices moved.

        Parameters
        ----------
        prices:
            The announced price vector; must be component-wise >= the
            previous announcement (the clock never lowers a price).
        moved_mask:
            Optional caller hint: boolean mask of pools whose prices *may*
            have moved.  Validated against the actual price changes — a mask
            missing a moved pool raises ``ValueError`` — then intersected
            with the pools that really moved, so a conservative (all-true)
            hint costs nothing.
        """
        eng = self.engine
        prices = np.asarray(prices, dtype=float)
        if prices.shape != (len(eng.index),):
            raise ValueError(
                f"prices have shape {prices.shape}, expected ({len(eng.index)},)"
            )
        if self._prices is None:
            self._full_eval(prices)
        else:
            if np.any(prices < self._prices):
                raise ValueError(
                    "incremental state requires non-decreasing prices; "
                    "open a fresh state to restart the clock"
                )
            moved = prices != self._prices
            if moved_mask is not None:
                moved_mask = np.asarray(moved_mask, dtype=bool)
                if moved_mask.shape != moved.shape:
                    raise ValueError("moved_mask has the wrong shape")
                if np.any(moved & ~moved_mask):
                    raise ValueError("moved_mask misses pools whose prices changed")
            self._delta_eval(prices, moved)
        self._prices = prices.copy()

    def respond_delta(
        self, prices: np.ndarray, moved_mask: np.ndarray | None = None
    ) -> BatchResponse:
        """``advance`` then snapshot the round as a :class:`BatchResponse`.

        The response's ``quantities``/``total``/``active`` arrays are the
        state's live buffers (borrowed, mutated by the next ``advance``);
        ``bundle_indices`` and ``costs`` are fresh.
        """
        self.advance(prices, moved_mask)
        eng = self.engine
        dropped = ~self._active
        chosen_costs = (
            self._costs[self._chosen_rows].copy()
            if eng._k
            else np.zeros(0, dtype=float)
        )
        chosen_costs[dropped] = 0.0
        bundle_indices = np.where(self._active, self._chosen_rows - eng._starts, -1)
        return BatchResponse(
            bidders=eng.bidders,
            quantities=self._quantities,
            total=self._total,
            bundle_indices=bundle_indices,
            costs=chosen_costs,
            active=self._active,
        )

    # -- internals ------------------------------------------------------------
    def _full_eval(self, prices: np.ndarray) -> None:
        """Round 0: the exact operation sequence of ``respond_all``."""
        eng = self.engine
        self.rows_evaluated.append(eng._k)
        if len(eng.bidders) == 0:
            return
        costs = eng._matrix @ prices
        cheapest = np.minimum.reduceat(costs, eng._starts)
        active = cheapest <= eng._limits + DROPOUT_SLACK
        candidates = np.where(costs == cheapest[eng._segment_ids], eng._row_ids, eng._k)
        chosen_rows = np.minimum.reduceat(candidates, eng._starts)
        quantities = eng._matrix[chosen_rows]
        quantities[~active] = 0.0
        self._costs = costs
        self._cheapest = cheapest
        self._chosen_rows = chosen_rows
        self._active = active
        self._quantities = quantities
        self._total = sum_demand_rows(quantities)
        self._active_count = int(np.count_nonzero(active))
        self._retire(np.flatnonzero(~active))

    def _delta_eval(self, prices: np.ndarray, moved: np.ndarray) -> None:
        """Re-evaluate only live rows touching moved pools; patch the total."""
        eng = self.engine
        layout = self._layout
        moved_cols = np.flatnonzero(moved)
        if moved_cols.size == 0 or eng._k == 0:
            self.rows_evaluated.append(0)
            return
        counts = layout.col_indptr[moved_cols + 1] - layout.col_indptr[moved_cols]
        hit = layout.col_rows[_gather_ranges(layout.col_indptr[moved_cols], counts)]
        row_mask = self._row_scratch
        row_mask[:] = False
        row_mask[hit] = True
        row_mask &= self._live_rows
        touched = np.flatnonzero(row_mask)
        self.rows_evaluated.append(int(touched.size))
        if touched.size == 0:
            return
        if 3 * touched.size >= eng._k:
            # Dense round: one contiguous gemv over the whole matrix beats
            # the row gather, and reproduces ``respond_all``'s costs exactly
            # (an untouched row holds zeros in every moved pool, so its dot
            # product is bitwise unchanged by the new prices).
            self._costs = eng._matrix @ prices
        else:
            self._costs[touched] = eng._matrix[touched] @ prices
        bidder_mask = self._bidder_scratch
        bidder_mask[:] = False
        bidder_mask[eng._segment_ids[touched]] = True
        affected = np.flatnonzero(bidder_mask)
        # Re-run the full-width segmented reductions (cheap contiguous scans,
        # identical per-segment operations to ``respond_all``) and restrict
        # the write-back to affected bidders: every other live bidder's
        # inputs are unchanged, so its outputs are reproduced identically,
        # and a retired buyer's frozen costs already sat above its limit
        # when it dropped — ascending prices keep it out.
        cheapest_all = np.minimum.reduceat(self._costs, eng._starts)
        candidates = np.where(
            self._costs == cheapest_all[eng._segment_ids], eng._row_ids, eng._k
        )
        chosen_all = np.minimum.reduceat(candidates, eng._starts)
        cheapest = cheapest_all[affected]
        chosen = chosen_all[affected]
        active = cheapest <= eng._limits[affected] + DROPOUT_SLACK
        changed = (active != self._active[affected]) | (
            active & (chosen != self._chosen_rows[affected])
        )
        self._cheapest[affected] = cheapest
        self._chosen_rows[affected] = chosen
        self._active[affected] = active
        changed_idx = affected[changed]
        if changed_idx.size:
            old_rows = self._quantities[changed_idx]
            new_rows = eng._matrix[chosen[changed]]
            new_rows[~active[changed]] = 0.0
            self._quantities[changed_idx] = new_rows
            self._patch_total(old_rows, new_rows)
        self._active_count = int(np.count_nonzero(self._active))
        self._retire(affected[~active])

    def _patch_total(self, old_rows: np.ndarray, new_rows: np.ndarray) -> None:
        """Re-derive the running total on exactly the pools whose value moved.

        Each changed pool's entry is re-accumulated sequentially over the
        bidders whose bids reference that pool (everyone else's entry is a
        structural ``+0.0``, which leaves partial sums bitwise unchanged), so
        either branch below reproduces ``np.add.reduce(quantities, axis=0)``
        bit-for-bit — the choice is purely a cost call.  The one exception is
        a single-pool index, where NumPy's axis-0 reduction over an ``(n, 1)``
        array pairs up terms instead of accumulating sequentially; there the
        full re-reduction (the identical operation) is always used.
        """
        eng = self.engine
        layout = self._layout
        r = len(eng.index)
        n = len(eng.bidders)
        diff_cols = np.flatnonzero(np.any(old_rows != new_rows, axis=0))
        if diff_cols.size == 0:
            return
        starts = layout.pool_bidder_indptr[diff_cols]
        ref_counts = layout.pool_bidder_indptr[diff_cols + 1] - starts
        if r == 1 or 2 * int(ref_counts.sum()) >= n * r:
            self._total = sum_demand_rows(self._quantities)
            return
        for c, s, e in zip(
            diff_cols.tolist(), starts.tolist(), (starts + ref_counts).tolist()
        ):
            column = self._quantities[layout.pool_bidders[s:e], c]
            self._total[c] = np.add.accumulate(column)[-1] if column.size else 0.0

    def _retire(self, dropped: np.ndarray) -> None:
        """Permanently retire dropped-out pure buyers and their rows."""
        if dropped.size == 0:
            return
        eng = self.engine
        newly = dropped[self._layout.buyer_mask[dropped] & ~self._retired[dropped]]
        if newly.size == 0:
            return
        self._retired[newly] = True
        counts = eng._offsets[newly + 1] - eng._offsets[newly]
        self._live_rows[_gather_ranges(eng._starts[newly], counts)] = False
