"""Vectorized batch demand engine for the clock auction.

The scalar reference path walks a Python list of
:class:`~repro.core.proxy.BidderProxy` objects and evaluates ``G_u(p)``
(paper Section III-C, Eq. 1-2) one bidder at a time.  That loop dominates the
cost of every auction round and caps scenario scale at a few hundred bidders.

This module flattens *all* sealed bids into dense NumPy arrays once, up
front, and evaluates one full auction round — every bidder's cheapest-bundle
choice, drop-out test, demand vector, and the market-wide demand total — as a
handful of matrix operations:

1. stack every bundle of every bid into one ``(K, R)`` quantity matrix
   (``K`` = total bundle rows across all bidders, ``R`` = pools);
2. per round, one matrix-vector product gives all ``K`` bundle costs;
3. segmented ``np.minimum.reduceat`` reductions give each bidder's cheapest
   bundle (with the same lowest-index tie-break as the scalar proxy);
4. a comparison against the stacked limit vector gives the drop-out mask
   (with the same ``DROPOUT_SLACK`` tolerance the scalar proxy uses);
5. one masked gather plus a single axis-0 reduction gives the total demand.

The engine produces exactly the per-round values the scalar path produces —
the same chosen bundle indices, activity flags, demand vectors, and total
demand — so :class:`~repro.core.clock_auction.AscendingClockAuction` can swap
it in underneath the existing round-trace contract (``AuctionRound`` /
``AuctionOutcome``) without any caller noticing anything but speed.

Beyond the one-shot evaluation this module is also the substrate of the
*sharded* engine (``engine="sharded"`` in
:class:`~repro.core.clock_auction.AuctionConfig`): :func:`plan_shards`
partitions the pool index into independent shards — groups of pools that no
bid couples across — straight from the stacked bid matrix, and
:meth:`BatchDemandEngine.restrict` carves a per-shard row view of the stacked
arrays so each shard's price discovery runs on its own (smaller) batch
engine.  See ``docs/sharding.md`` for the merge semantics.

Numerical-identity notes
------------------------

* Demand *totals* are accumulated with :func:`sum_demand_rows`
  (``np.add.reduce`` over axis 0), which is bit-identical to the scalar
  path's sequential ``total += quantities`` accumulation for IEEE floats.
  Because a bid's bundle rows are structurally zero outside the pools it
  references (and structural zeros stay exactly ``+0.0`` under any finite
  price), a shard's per-pool total is bit-identical to the full stacked
  sum restricted to the shard's pools — the property the sharded engine's
  trace merge rests on.
* Bundle *costs* come from one stacked matrix-vector product instead of one
  small product per bidder; BLAS may order the per-row dot products'
  partial sums differently, so costs can differ from the scalar path in the
  last few ULPs.  The same qualification applies between the full stacked
  matrix and a shard's row subset (gemv partial-sum order depends on the
  row count).  This only matters when a bundle cost sits within ~1e-15
  (relative) of another bundle's cost or of the bidder's limit — knife-edge
  ties that the equivalence test suite shows do not occur for generic
  instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.bids import Bid
from repro.core.proxy import DROPOUT_SLACK


def sum_demand_rows(rows: np.ndarray) -> np.ndarray:
    """Sum per-bidder demand rows into the market-wide total demand.

    Uses ``np.add.reduce`` over axis 0, which accumulates rows in order and is
    bit-identical to the scalar engine's sequential ``total += quantities``
    loop — the property the scalar/batch trace-equivalence guarantee rests on.

    Parameters
    ----------
    rows:
        ``(n, R)`` array of per-bidder quantity vectors.

    Returns
    -------
    numpy.ndarray
        Length-``R`` total demand vector (zeros when ``rows`` is empty).

    Examples
    --------
    >>> import numpy as np
    >>> sum_demand_rows(np.array([[1.0, 0.0], [2.0, -1.0]]))
    array([ 3., -1.])
    >>> sum_demand_rows(np.zeros((0, 2)))
    array([0., 0.])
    """
    rows = np.asarray(rows, dtype=float)
    if rows.shape[0] == 0:
        return np.zeros(rows.shape[1], dtype=float)
    return np.add.reduce(rows, axis=0)


@dataclass(frozen=True)
class ShardPlan:
    """A partition of pools (and the bids over them) into independent shards.

    Two pools belong to the same shard exactly when some bid references both
    (any bundle of a bid couples *all* pools the bid touches, because the XOR
    set is evaluated jointly against one limit).  Pools no bid references —
    plus bids whose bundles are all-zero — are collected into one trailing
    *leftover* shard, which trivially clears in a single round.

    Attributes
    ----------
    pool_groups:
        Pool positions per shard, each sorted ascending; together they cover
        every pool exactly once.
    bid_groups:
        Bid positions (submission order) per shard, aligned with
        ``pool_groups``; together they cover every bid exactly once.
    """

    pool_groups: tuple[tuple[int, ...], ...]
    bid_groups: tuple[tuple[int, ...], ...]

    @property
    def shard_count(self) -> int:
        """Number of shards, including a trailing leftover shard if any."""
        return len(self.pool_groups)

    @property
    def effective_shards(self) -> int:
        """Number of shards that actually carry bids.

        The sharded engine only pays its orchestration overhead when at least
        two shards have price discovery to do; below that it falls back to
        the plain batch loop.
        """
        return sum(1 for group in self.bid_groups if group)

    def describe(self) -> dict[str, object]:
        """Scalar facts for logs and stats: shard count and size spread."""
        sizes = sorted((len(g) for g in self.bid_groups), reverse=True)
        return {
            "shards": self.shard_count,
            "effective_shards": self.effective_shards,
            "largest_shard_bids": sizes[0] if sizes else 0,
            "pool_groups": [len(g) for g in self.pool_groups],
        }


@dataclass(frozen=True)
class BatchResponse:
    """All bidders' proxy decisions for one price vector, in dense form.

    The batched analogue of a list of
    :class:`~repro.core.proxy.ProxyDecision` objects: row ``i`` of every
    array describes bidder ``bidders[i]``.

    Attributes
    ----------
    bidders:
        Bidder identifiers, in submission order.
    quantities:
        ``(n, R)`` demand matrix; row ``i`` is bidder ``i``'s demanded
        (positive) / offered (negative) quantities, all zeros on drop-out.
    total:
        Length-``R`` market-wide demand ``sum_u G_u(p)``.
    bundle_indices:
        Chosen bundle index within each bidder's own bundle set, ``-1`` for
        bidders that dropped out.
    costs:
        Chosen-bundle cost ``q.p`` per bidder (``0.0`` on drop-out).
    active:
        Boolean drop-out mask: ``True`` where the bidder is still in.
    """

    bidders: tuple[str, ...]
    quantities: np.ndarray
    total: np.ndarray
    bundle_indices: np.ndarray
    costs: np.ndarray
    active: np.ndarray

    @property
    def active_count(self) -> int:
        """Number of bidders still demanding a bundle at these prices."""
        return int(np.count_nonzero(self.active))

    def demand_map(self) -> dict[str, np.ndarray]:
        """Per-bidder demand vectors keyed by bidder id (round-trace form)."""
        return {name: self.quantities[i] for i, name in enumerate(self.bidders)}


class BatchDemandEngine:
    """Evaluates every bidder's proxy response in one shot per round.

    Flattens a sequence of sealed bids into dense arrays at construction time
    and answers each price announcement with a :class:`BatchResponse`
    containing the same decisions the scalar proxies would have made.

    Parameters
    ----------
    index:
        The pool index all bids are expressed over.
    bids:
        Sealed bids; their XOR bundle sets are stacked row-wise into one
        matrix.  Bids over a different pool index raise ``ValueError``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bids = [
    ...     Bid.buy("team-a", index, [{"a/cpu": 10}], max_payment=100.0),
    ...     Bid.buy("team-b", index, [{"b/cpu": 5}], max_payment=1.0),
    ... ]
    >>> engine = BatchDemandEngine(index, bids)
    >>> response = engine.respond_all(np.full(len(index), 2.0))
    >>> response.active.tolist()          # team-b's bundle costs 10 > 1
    [True, False]
    >>> float(response.total[index.index_of("a/cpu")])
    10.0
    """

    def __init__(self, index: PoolIndex, bids: Sequence[Bid]):
        self.index = index
        bids = list(bids)
        for bid in bids:
            if bid.index.names != index.names:
                raise ValueError(
                    f"bid from {bid.bidder!r} is defined over a different pool index"
                )
        self.bidders: tuple[str, ...] = tuple(bid.bidder for bid in bids)
        n = len(bids)
        r = len(index)
        if n == 0:
            self._matrix = np.zeros((0, r), dtype=float)
            counts = np.zeros(0, dtype=np.intp)
        else:
            self._matrix = np.vstack([bid.bundles.matrix for bid in bids]).astype(float, copy=False)
            counts = np.array([len(bid.bundles) for bid in bids], dtype=np.intp)
        self._limits = np.array([bid.limit for bid in bids], dtype=float)
        self._init_layout(counts)

    def _init_layout(self, counts: np.ndarray) -> None:
        """Derive the segment bookkeeping from per-bidder bundle counts."""
        n = len(self.bidders)
        offsets = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        self._starts = offsets[:-1]
        self._offsets = offsets
        k = int(offsets[-1])
        self._k = k
        #: Global row number of every bundle row (argmin tie-break helper).
        self._row_ids = np.arange(k, dtype=np.intp)
        #: Which bidder each bundle row belongs to.
        self._segment_ids = np.repeat(np.arange(n, dtype=np.intp), counts)

    def __len__(self) -> int:
        return len(self.bidders)

    @property
    def bundle_rows(self) -> int:
        """Total number of stacked bundle rows ``K`` across all bidders."""
        return self._k

    @property
    def matrix(self) -> np.ndarray:
        """The stacked ``(K, R)`` bundle-quantity matrix."""
        return self._matrix

    @property
    def limits(self) -> np.ndarray:
        """Per-bidder willingness-to-pay limits ``pi_u``."""
        return self._limits

    def restrict(self, positions: Sequence[int]) -> "BatchDemandEngine":
        """A new engine over the given bid positions (submission-order subset).

        The stacked matrix rows of the selected bids are gathered into a
        contiguous copy over the *full* pool axis, so the restricted engine
        answers the same full-length price vectors as its parent — which is
        what lets a shard's responses slot bitwise into the global trace
        (structural zeros outside the shard's pools contribute exact ``+0.0``
        to every cost and total).

        Examples
        --------
        >>> import numpy as np
        >>> from repro.cluster.pools import demo_pool_index
        >>> from repro.core.bids import Bid
        >>> index = demo_pool_index()
        >>> bids = [Bid.buy(f"t{i}", index, [{"a/cpu": 5}], max_payment=50.0) for i in range(3)]
        >>> sub = BatchDemandEngine(index, bids).restrict([2, 0])
        >>> sub.bidders
        ('t2', 't0')
        >>> sub.matrix.shape
        (2, 4)
        """
        positions = np.asarray(positions, dtype=np.intp)
        sub = object.__new__(BatchDemandEngine)
        sub.index = self.index
        sub.bidders = tuple(self.bidders[int(i)] for i in positions)
        sub._limits = self._limits[positions]
        counts = self._offsets[positions + 1] - self._offsets[positions]
        total = int(counts.sum())
        if total:
            # Row gather: for each selected bid, its contiguous row range.
            ends = np.cumsum(counts)
            local = np.arange(total, dtype=np.intp) - np.repeat(ends - counts, counts)
            rows = np.repeat(self._starts[positions], counts) + local
            sub._matrix = np.ascontiguousarray(self._matrix[rows])
        else:
            sub._matrix = np.zeros((0, len(self.index)), dtype=float)
        sub._init_layout(counts)
        return sub

    def plan_shards(self) -> ShardPlan:
        """Partition pools and bids into independent shards (see :class:`ShardPlan`).

        Union-find over pool positions: every bid unions together all pools
        any of its bundles references.  Shards are ordered by their smallest
        pool position; unreferenced pools and all-zero bids form one trailing
        leftover shard.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.cluster.pools import demo_pool_index
        >>> from repro.core.bids import Bid
        >>> index = demo_pool_index()   # pools: a/cpu a/ram b/cpu b/ram
        >>> bids = [Bid.buy("a", index, [{"a/cpu": 1, "a/ram": 2}], max_payment=9.0),
        ...         Bid.buy("b", index, [{"b/cpu": 1}], max_payment=9.0)]
        >>> plan = BatchDemandEngine(index, bids).plan_shards()
        >>> plan.pool_groups
        ((0, 1), (2,), (3,))
        >>> plan.bid_groups
        ((0,), (1,), ())
        """
        r = len(self.index)
        n = len(self.bidders)
        parent = list(range(r))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            # Attach the larger root under the smaller so every component's
            # root is its smallest pool position (deterministic ordering).
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb

        nz_rows, nz_cols = np.nonzero(self._matrix)
        seg = self._segment_ids
        #: First referenced pool of each bid; -1 for all-zero bids.
        anchor = np.full(n, -1, dtype=np.intp)
        current_bid = -1
        current_anchor = -1
        for row, col in zip(nz_rows.tolist(), nz_cols.tolist()):
            bid = int(seg[row])
            if bid != current_bid:
                current_bid = bid
                current_anchor = col
                anchor[bid] = col
            else:
                union(current_anchor, col)

        referenced = np.zeros(r, dtype=bool)
        referenced[nz_cols] = True
        pool_by_root: dict[int, list[int]] = {}
        leftover_pools: list[int] = []
        for p in range(r):
            if referenced[find(p)] or referenced[p]:
                pool_by_root.setdefault(find(p), []).append(p)
            else:
                leftover_pools.append(p)
        roots = sorted(pool_by_root)
        shard_of_root = {root: i for i, root in enumerate(roots)}
        bid_by_shard: list[list[int]] = [[] for _ in roots]
        leftover_bids: list[int] = []
        for b in range(n):
            if anchor[b] < 0:
                leftover_bids.append(b)
            else:
                bid_by_shard[shard_of_root[find(int(anchor[b]))]].append(b)
        pool_groups = [tuple(pool_by_root[root]) for root in roots]
        bid_groups = [tuple(group) for group in bid_by_shard]
        if leftover_pools or leftover_bids:
            pool_groups.append(tuple(leftover_pools))
            bid_groups.append(tuple(leftover_bids))
        return ShardPlan(pool_groups=tuple(pool_groups), bid_groups=tuple(bid_groups))

    def respond_all(self, prices: np.ndarray) -> BatchResponse:
        """Evaluate ``G_u(p)`` for every bidder at once.

        One stacked matrix-vector product computes all bundle costs; segmented
        minimum reductions pick each bidder's cheapest bundle with the same
        lowest-index tie-break as :meth:`repro.core.proxy.BidderProxy.respond`,
        and the same ``limit + DROPOUT_SLACK`` drop-out rule is applied.
        """
        prices = np.asarray(prices, dtype=float)
        n = len(self.bidders)
        r = len(self.index)
        if n == 0:
            return BatchResponse(
                bidders=(),
                quantities=np.zeros((0, r), dtype=float),
                total=np.zeros(r, dtype=float),
                bundle_indices=np.zeros(0, dtype=np.intp),
                costs=np.zeros(0, dtype=float),
                active=np.zeros(0, dtype=bool),
            )
        costs = self._matrix @ prices
        cheapest = np.minimum.reduceat(costs, self._starts)
        active = cheapest <= self._limits + DROPOUT_SLACK
        dropped = ~active
        # Lowest-index argmin per segment: replace non-minimal rows with K
        # (past-the-end sentinel) and take the segmented minimum of row ids.
        candidates = np.where(costs == cheapest[self._segment_ids], self._row_ids, self._k)
        chosen_rows = np.minimum.reduceat(candidates, self._starts)
        bundle_indices = np.where(active, chosen_rows - self._starts, -1)
        # Gather the chosen rows (a fresh copy), then zero dropped-out bidders
        # in place — far cheaper than a masked np.where over a temporary.
        quantities = self._matrix[chosen_rows]
        quantities[dropped] = 0.0
        chosen_costs = costs[chosen_rows]
        chosen_costs[dropped] = 0.0
        return BatchResponse(
            bidders=self.bidders,
            quantities=quantities,
            total=sum_demand_rows(quantities),
            bundle_indices=bundle_indices,
            costs=chosen_costs,
            active=active,
        )

    def aggregate_demand(self, prices: np.ndarray) -> np.ndarray:
        """Total demand ``z(p) = sum_u G_u(p)``; batched twin of
        :func:`repro.core.proxy.aggregate_demand`."""
        return self.respond_all(prices).total

    def dropout_price_scales(self, prices: np.ndarray, *, max_scale: float = 1e6) -> np.ndarray:
        """Per-bidder scalar ``s`` such that bidder ``u`` drops out at ``s * p``.

        Vectorized twin of
        :meth:`repro.core.proxy.BidderProxy.dropout_price_scale`: meaningful
        for pure buyers (whose costs grow linearly in the price scale);
        bidders that never drop out along the ray report ``max_scale``.
        """
        prices = np.asarray(prices, dtype=float)
        if len(self.bidders) == 0:
            return np.zeros(0, dtype=float)
        costs = self._matrix @ prices
        cheapest = np.minimum.reduceat(costs, self._starts)
        scales = np.full(len(self.bidders), float(max_scale))
        positive = cheapest > 0.0
        scales[positive] = np.minimum(max_scale, self._limits[positive] / cheapest[positive])
        return scales
