"""Vectorized batch demand engine for the clock auction.

The scalar reference path walks a Python list of
:class:`~repro.core.proxy.BidderProxy` objects and evaluates ``G_u(p)``
(paper Section III-C, Eq. 1-2) one bidder at a time.  That loop dominates the
cost of every auction round and caps scenario scale at a few hundred bidders.

This module flattens *all* sealed bids into dense NumPy arrays once, up
front, and evaluates one full auction round — every bidder's cheapest-bundle
choice, drop-out test, demand vector, and the market-wide demand total — as a
handful of matrix operations:

1. stack every bundle of every bid into one ``(K, R)`` quantity matrix
   (``K`` = total bundle rows across all bidders, ``R`` = pools);
2. per round, one matrix-vector product gives all ``K`` bundle costs;
3. segmented ``np.minimum.reduceat`` reductions give each bidder's cheapest
   bundle (with the same lowest-index tie-break as the scalar proxy);
4. a comparison against the stacked limit vector gives the drop-out mask
   (with the same ``DROPOUT_SLACK`` tolerance the scalar proxy uses);
5. one masked gather plus a single axis-0 reduction gives the total demand.

The engine produces exactly the per-round values the scalar path produces —
the same chosen bundle indices, activity flags, demand vectors, and total
demand — so :class:`~repro.core.clock_auction.AscendingClockAuction` can swap
it in underneath the existing round-trace contract (``AuctionRound`` /
``AuctionOutcome``) without any caller noticing anything but speed.

Numerical-identity notes
------------------------

* Demand *totals* are accumulated with :func:`sum_demand_rows`
  (``np.add.reduce`` over axis 0), which is bit-identical to the scalar
  path's sequential ``total += quantities`` accumulation for IEEE floats.
* Bundle *costs* come from one stacked matrix-vector product instead of one
  small product per bidder; BLAS may order the per-row dot products'
  partial sums differently, so costs can differ from the scalar path in the
  last few ULPs.  This only matters when a bundle cost sits within ~1e-15
  (relative) of another bundle's cost or of the bidder's limit — knife-edge
  ties that the equivalence test suite shows do not occur for generic
  instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.bids import Bid
from repro.core.proxy import DROPOUT_SLACK


def sum_demand_rows(rows: np.ndarray) -> np.ndarray:
    """Sum per-bidder demand rows into the market-wide total demand.

    Uses ``np.add.reduce`` over axis 0, which accumulates rows in order and is
    bit-identical to the scalar engine's sequential ``total += quantities``
    loop — the property the scalar/batch trace-equivalence guarantee rests on.

    Parameters
    ----------
    rows:
        ``(n, R)`` array of per-bidder quantity vectors.

    Returns
    -------
    numpy.ndarray
        Length-``R`` total demand vector (zeros when ``rows`` is empty).

    Examples
    --------
    >>> import numpy as np
    >>> sum_demand_rows(np.array([[1.0, 0.0], [2.0, -1.0]]))
    array([ 3., -1.])
    >>> sum_demand_rows(np.zeros((0, 2)))
    array([0., 0.])
    """
    rows = np.asarray(rows, dtype=float)
    if rows.shape[0] == 0:
        return np.zeros(rows.shape[1], dtype=float)
    return np.add.reduce(rows, axis=0)


@dataclass(frozen=True)
class BatchResponse:
    """All bidders' proxy decisions for one price vector, in dense form.

    The batched analogue of a list of
    :class:`~repro.core.proxy.ProxyDecision` objects: row ``i`` of every
    array describes bidder ``bidders[i]``.

    Attributes
    ----------
    bidders:
        Bidder identifiers, in submission order.
    quantities:
        ``(n, R)`` demand matrix; row ``i`` is bidder ``i``'s demanded
        (positive) / offered (negative) quantities, all zeros on drop-out.
    total:
        Length-``R`` market-wide demand ``sum_u G_u(p)``.
    bundle_indices:
        Chosen bundle index within each bidder's own bundle set, ``-1`` for
        bidders that dropped out.
    costs:
        Chosen-bundle cost ``q.p`` per bidder (``0.0`` on drop-out).
    active:
        Boolean drop-out mask: ``True`` where the bidder is still in.
    """

    bidders: tuple[str, ...]
    quantities: np.ndarray
    total: np.ndarray
    bundle_indices: np.ndarray
    costs: np.ndarray
    active: np.ndarray

    @property
    def active_count(self) -> int:
        """Number of bidders still demanding a bundle at these prices."""
        return int(np.count_nonzero(self.active))

    def demand_map(self) -> dict[str, np.ndarray]:
        """Per-bidder demand vectors keyed by bidder id (round-trace form)."""
        return {name: self.quantities[i] for i, name in enumerate(self.bidders)}


class BatchDemandEngine:
    """Evaluates every bidder's proxy response in one shot per round.

    Flattens a sequence of sealed bids into dense arrays at construction time
    and answers each price announcement with a :class:`BatchResponse`
    containing the same decisions the scalar proxies would have made.

    Parameters
    ----------
    index:
        The pool index all bids are expressed over.
    bids:
        Sealed bids; their XOR bundle sets are stacked row-wise into one
        matrix.  Bids over a different pool index raise ``ValueError``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bids = [
    ...     Bid.buy("team-a", index, [{"a/cpu": 10}], max_payment=100.0),
    ...     Bid.buy("team-b", index, [{"b/cpu": 5}], max_payment=1.0),
    ... ]
    >>> engine = BatchDemandEngine(index, bids)
    >>> response = engine.respond_all(np.full(len(index), 2.0))
    >>> response.active.tolist()          # team-b's bundle costs 10 > 1
    [True, False]
    >>> float(response.total[index.index_of("a/cpu")])
    10.0
    """

    def __init__(self, index: PoolIndex, bids: Sequence[Bid]):
        self.index = index
        bids = list(bids)
        for bid in bids:
            if bid.index.names != index.names:
                raise ValueError(
                    f"bid from {bid.bidder!r} is defined over a different pool index"
                )
        self.bidders: tuple[str, ...] = tuple(bid.bidder for bid in bids)
        n = len(bids)
        r = len(index)
        if n == 0:
            self._matrix = np.zeros((0, r), dtype=float)
            counts = np.zeros(0, dtype=np.intp)
        else:
            self._matrix = np.vstack([bid.bundles.matrix for bid in bids]).astype(float, copy=False)
            counts = np.array([len(bid.bundles) for bid in bids], dtype=np.intp)
        self._limits = np.array([bid.limit for bid in bids], dtype=float)
        offsets = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        self._starts = offsets[:-1]
        self._offsets = offsets
        k = int(offsets[-1])
        self._k = k
        #: Global row number of every bundle row (argmin tie-break helper).
        self._row_ids = np.arange(k, dtype=np.intp)
        #: Which bidder each bundle row belongs to.
        self._segment_ids = np.repeat(np.arange(n, dtype=np.intp), counts)

    def __len__(self) -> int:
        return len(self.bidders)

    @property
    def bundle_rows(self) -> int:
        """Total number of stacked bundle rows ``K`` across all bidders."""
        return self._k

    @property
    def matrix(self) -> np.ndarray:
        """The stacked ``(K, R)`` bundle-quantity matrix."""
        return self._matrix

    @property
    def limits(self) -> np.ndarray:
        """Per-bidder willingness-to-pay limits ``pi_u``."""
        return self._limits

    def respond_all(self, prices: np.ndarray) -> BatchResponse:
        """Evaluate ``G_u(p)`` for every bidder at once.

        One stacked matrix-vector product computes all bundle costs; segmented
        minimum reductions pick each bidder's cheapest bundle with the same
        lowest-index tie-break as :meth:`repro.core.proxy.BidderProxy.respond`,
        and the same ``limit + DROPOUT_SLACK`` drop-out rule is applied.
        """
        prices = np.asarray(prices, dtype=float)
        n = len(self.bidders)
        r = len(self.index)
        if n == 0:
            return BatchResponse(
                bidders=(),
                quantities=np.zeros((0, r), dtype=float),
                total=np.zeros(r, dtype=float),
                bundle_indices=np.zeros(0, dtype=np.intp),
                costs=np.zeros(0, dtype=float),
                active=np.zeros(0, dtype=bool),
            )
        costs = self._matrix @ prices
        cheapest = np.minimum.reduceat(costs, self._starts)
        active = cheapest <= self._limits + DROPOUT_SLACK
        dropped = ~active
        # Lowest-index argmin per segment: replace non-minimal rows with K
        # (past-the-end sentinel) and take the segmented minimum of row ids.
        candidates = np.where(costs == cheapest[self._segment_ids], self._row_ids, self._k)
        chosen_rows = np.minimum.reduceat(candidates, self._starts)
        bundle_indices = np.where(active, chosen_rows - self._starts, -1)
        # Gather the chosen rows (a fresh copy), then zero dropped-out bidders
        # in place — far cheaper than a masked np.where over a temporary.
        quantities = self._matrix[chosen_rows]
        quantities[dropped] = 0.0
        chosen_costs = costs[chosen_rows]
        chosen_costs[dropped] = 0.0
        return BatchResponse(
            bidders=self.bidders,
            quantities=quantities,
            total=sum_demand_rows(quantities),
            bundle_indices=bundle_indices,
            costs=chosen_costs,
            active=active,
        )

    def aggregate_demand(self, prices: np.ndarray) -> np.ndarray:
        """Total demand ``z(p) = sum_u G_u(p)``; batched twin of
        :func:`repro.core.proxy.aggregate_demand`."""
        return self.respond_all(prices).total

    def dropout_price_scales(self, prices: np.ndarray, *, max_scale: float = 1e6) -> np.ndarray:
        """Per-bidder scalar ``s`` such that bidder ``u`` drops out at ``s * p``.

        Vectorized twin of
        :meth:`repro.core.proxy.BidderProxy.dropout_price_scale`: meaningful
        for pure buyers (whose costs grow linearly in the price scale);
        bidders that never drop out along the ray report ``max_scale``.
        """
        prices = np.asarray(prices, dtype=float)
        if len(self.bidders) == 0:
            return np.zeros(0, dtype=float)
        costs = self._matrix @ prices
        cheapest = np.minimum.reduceat(costs, self._starts)
        scales = np.full(len(self.bidders), float(max_scale))
        positive = cheapest > 0.0
        scales[positive] = np.minimum(max_scale, self._limits[positive] / cheapest[positive])
        return scales
