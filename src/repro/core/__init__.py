"""Core market mechanism: bundles, bids, proxies, the ascending clock auction,
congestion-weighted reserve pricing, settlement, and the combinatorial exchange.

This package is the paper's primary contribution (Sections II-IV).  The public
entry point for most users is :class:`repro.core.exchange.CombinatorialExchange`,
which wires reserve pricing, the clock auction, and settlement together; the
individual pieces are importable for finer-grained use and for the ablation
experiments.
"""

from repro.core.bundles import Bundle, BundleSet, bundle_kind, BundleKind
from repro.core.bids import Bid, BidderClass, classify_bidder, validate_bid
from repro.core.proxy import BidderProxy, ProxyDecision
from repro.core.increment import (
    IncrementPolicy,
    AdditiveIncrement,
    CappedIncrement,
    NormalizedIncrement,
    ProportionalIncrement,
    default_increment,
)
from repro.core.reserve import (
    WeightingFunction,
    ExponentialWeight,
    ReciprocalWeight,
    LinearWeight,
    FlatWeight,
    ReservePricer,
    check_weighting_properties,
    PAPER_PHI_1,
    PAPER_PHI_2,
    PAPER_PHI_3,
)
from repro.core.batch import (
    BatchDemandEngine,
    BatchResponse,
    IncrementalDemandState,
    sum_demand_rows,
)
from repro.core.clock_auction import (
    BATCH_AUTO_THRESHOLD,
    ENGINES,
    AscendingClockAuction,
    AuctionConfig,
    AuctionOutcome,
    AuctionRound,
    ConvergenceError,
)
from repro.core.settlement import (
    Settlement,
    SettlementLine,
    settle,
    verify_system_constraints,
    ConstraintReport,
)
from repro.core.exchange import CombinatorialExchange, ExchangeResult
from repro.core.prices import PriceTable, price_ratios

__all__ = [
    "Bundle",
    "BundleSet",
    "BundleKind",
    "bundle_kind",
    "Bid",
    "BidderClass",
    "classify_bidder",
    "validate_bid",
    "BidderProxy",
    "ProxyDecision",
    "IncrementPolicy",
    "AdditiveIncrement",
    "CappedIncrement",
    "NormalizedIncrement",
    "ProportionalIncrement",
    "default_increment",
    "WeightingFunction",
    "ExponentialWeight",
    "ReciprocalWeight",
    "LinearWeight",
    "FlatWeight",
    "ReservePricer",
    "check_weighting_properties",
    "PAPER_PHI_1",
    "PAPER_PHI_2",
    "PAPER_PHI_3",
    "AscendingClockAuction",
    "AuctionConfig",
    "AuctionOutcome",
    "AuctionRound",
    "BATCH_AUTO_THRESHOLD",
    "BatchDemandEngine",
    "BatchResponse",
    "IncrementalDemandState",
    "ConvergenceError",
    "ENGINES",
    "sum_demand_rows",
    "Settlement",
    "SettlementLine",
    "settle",
    "verify_system_constraints",
    "ConstraintReport",
    "CombinatorialExchange",
    "ExchangeResult",
    "PriceTable",
    "price_ratios",
]
