"""Congestion-weighted reserve pricing (paper Section IV).

The operator seeds the clock auction with reserve prices

    p_tilde_r = phi_r(psi(r)) * c(r)                         (Eq. 4)

where ``psi(r)`` is the pre-auction utilization of pool ``r``, ``c(r)`` is the
operator's real unit cost, and ``phi_r`` is a *weighting function* satisfying
five properties (Section IV-A):

1. monotonically increasing;
2. ``> 1`` for over-utilized pools;
3. ``<= 1`` for under-utilized pools;
4. steeper at high utilization than at low utilization (a move from 80% to
   99% should cost far more than a move from 15% to 40%);
5. ``phi(100%) = k * phi(0%)`` for some constant ``k`` (bounds the impact on
   the initial budget endowment).

Figure 2 of the paper plots three example curves, reproduced here as
:data:`PAPER_PHI_1`, :data:`PAPER_PHI_2`, and :data:`PAPER_PHI_3`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.cluster.resources import ResourceType


class WeightingFunction(Protocol):
    """A utilization -> price-multiple curve ``phi(x)`` with ``x`` in [0, 1]."""

    def __call__(self, utilization: float) -> float:
        """Weight for a single utilization fraction."""
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        """Short label used in reports and figure legends."""
        ...  # pragma: no cover - protocol


def _check_unit_interval(utilization: float) -> float:
    if not (0.0 <= utilization <= 1.0) or not math.isfinite(utilization):
        raise ValueError(f"utilization must lie in [0, 1], got {utilization}")
    return float(utilization)


@dataclass(frozen=True)
class ExponentialWeight:
    """``phi(x) = exp(steepness * (x - center))``.

    With ``steepness=2, center=0.5`` this is the paper's ``phi_1``; with
    ``steepness=1`` it is ``phi_2``.  Property 5 holds with
    ``k = exp(steepness)``.

    Examples
    --------
    >>> phi = ExponentialWeight(steepness=2.0, center=0.5)
    >>> phi(0.5)
    1.0
    >>> round(phi(0.9), 4)    # congested pools cost a premium
    2.2255
    """

    steepness: float = 2.0
    center: float = 0.5

    def __post_init__(self) -> None:
        if self.steepness <= 0:
            raise ValueError("steepness must be positive")

    def __call__(self, utilization: float) -> float:
        x = _check_unit_interval(utilization)
        return math.exp(self.steepness * (x - self.center))

    def describe(self) -> str:
        return f"exp({self.steepness:g}(x-{self.center:g}))"


@dataclass(frozen=True)
class ReciprocalWeight:
    """``phi(x) = offset / (ceiling - x)``; the paper's ``phi_3`` is ``1 / (1.5 - x)``.

    The ``offset`` defaults to ``ceiling - center`` so that ``phi(center) = 1``
    (with the paper's parameters, ``phi(0.5) = 1``).

    Examples
    --------
    >>> phi = ReciprocalWeight(ceiling=1.5, center=0.5)
    >>> phi(0.5)
    1.0
    >>> phi(1.0)
    2.0
    """

    ceiling: float = 1.5
    center: float = 0.5
    offset: float | None = None

    def __post_init__(self) -> None:
        if self.ceiling <= 1.0:
            raise ValueError("ceiling must exceed 1.0 so phi is finite on [0, 1]")
        if self.offset is not None and self.offset <= 0:
            raise ValueError("offset must be positive")

    @property
    def _numerator(self) -> float:
        return self.offset if self.offset is not None else (self.ceiling - self.center)

    def __call__(self, utilization: float) -> float:
        x = _check_unit_interval(utilization)
        return self._numerator / (self.ceiling - x)

    def describe(self) -> str:
        return f"{self._numerator:g}/({self.ceiling:g}-x)"


@dataclass(frozen=True)
class LinearWeight:
    """``phi(x) = low + (high - low) * x``: a simple affine ramp.

    Does *not* satisfy property 4 (no extra steepness at high utilization);
    included as a baseline for the reserve-pricing ablation.

    Examples
    --------
    >>> LinearWeight(low=0.5, high=1.5)(0.75)
    1.25
    """

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError("high must exceed low")
        if self.low < 0:
            raise ValueError("low must be non-negative")

    def __call__(self, utilization: float) -> float:
        x = _check_unit_interval(utilization)
        return self.low + (self.high - self.low) * x

    def describe(self) -> str:
        return f"linear({self.low:g}..{self.high:g})"


@dataclass(frozen=True)
class FlatWeight:
    """``phi(x) = value``: utilization-independent pricing (the pre-market world).

    With ``value=1`` the reserve price equals the plain unit cost — exactly
    the "former fixed price" baseline the paper compares against in Figure 6.

    Examples
    --------
    >>> FlatWeight()(0.99)
    1.0
    """

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("value must be positive")

    def __call__(self, utilization: float) -> float:
        _check_unit_interval(utilization)
        return self.value

    def describe(self) -> str:
        return f"flat({self.value:g})"


#: The three example curves plotted in Figure 2 of the paper.
PAPER_PHI_1 = ExponentialWeight(steepness=2.0, center=0.5)
PAPER_PHI_2 = ExponentialWeight(steepness=1.0, center=0.5)
PAPER_PHI_3 = ReciprocalWeight(ceiling=1.5, center=0.5)


def check_weighting_properties(
    phi: WeightingFunction,
    *,
    samples: int = 201,
    overutilized_threshold: float = 0.5,
    tolerance: float = 1e-9,
) -> dict[str, bool]:
    """Check the five Section IV-A properties of a weighting function.

    Returns a mapping from property name to a boolean.  Property 4 is checked
    as "the weight increase from 80% to 99% utilization exceeds the increase
    from 15% to 40%"; property 5 as "phi(1) is a finite multiple of phi(0)"
    (any finite k qualifies, per the paper).

    Examples
    --------
    >>> all(check_weighting_properties(PAPER_PHI_1).values())
    True
    >>> check_weighting_properties(LinearWeight())["steeper_when_congested"]
    False
    """
    xs = np.linspace(0.0, 1.0, samples)
    values = np.array([phi(float(x)) for x in xs])
    monotone = bool(np.all(np.diff(values) >= -tolerance))
    over = bool(all(phi(float(x)) > 1.0 - tolerance for x in xs[xs > overutilized_threshold + 1e-12]))
    under = bool(all(phi(float(x)) <= 1.0 + tolerance for x in xs[xs <= overutilized_threshold]))
    congested_gap = phi(0.99) - phi(0.80)
    idle_gap = phi(0.40) - phi(0.15)
    steeper_when_congested = bool(congested_gap >= idle_gap - tolerance)
    phi0, phi1 = phi(0.0), phi(1.0)
    bounded_ratio = bool(phi0 > 0 and math.isfinite(phi1 / phi0))
    return {
        "monotonically_increasing": monotone,
        "above_one_when_overutilized": over,
        "at_most_one_when_underutilized": under,
        "steeper_when_congested": steeper_when_congested,
        "bounded_ratio": bounded_ratio,
    }


@dataclass
class ReservePricer:
    """Computes utilization-weighted reserve prices for a pool index.

    Parameters
    ----------
    weighting:
        The weighting function applied to every pool, or a per-resource-type
        mapping (the paper allows ``phi_r`` to differ by pool).
    use_percentiles:
        If ``True``, feed the weighting function each pool's *fleet-relative
        utilization percentile* (paper Section IV-A: "the inputs of the
        weighting functions are utilization percentiles"); if ``False``
        (default) feed the raw utilization fraction.

    Examples
    --------
    >>> from repro.cluster.pools import demo_pool_index
    >>> pricer = ReservePricer(weighting=FlatWeight(value=2.0))
    >>> pricer.reserve_prices(demo_pool_index()).tolist()   # 2x each unit cost
    [20.0, 4.0, 20.0, 4.0]
    """

    weighting: WeightingFunction | Mapping[ResourceType, WeightingFunction]
    use_percentiles: bool = False

    def _phi_for(self, rtype: ResourceType) -> WeightingFunction:
        if isinstance(self.weighting, Mapping):
            try:
                return self.weighting[rtype]
            except KeyError as exc:
                raise KeyError(f"no weighting function configured for {rtype}") from exc
        return self.weighting

    def utilization_inputs(self, index: PoolIndex) -> np.ndarray:
        """The x values fed to phi for each pool (fractions or percentiles/100)."""
        if not self.use_percentiles:
            return index.utilizations()
        from repro.cluster.utilization import snapshot_pools

        return snapshot_pools(index).percentile_vector(index) / 100.0

    def multipliers(self, index: PoolIndex) -> np.ndarray:
        """The weight ``phi_r(psi(r))`` per pool."""
        inputs = self.utilization_inputs(index)
        result = np.empty(len(index), dtype=float)
        for i, pool in enumerate(index):
            result[i] = self._phi_for(pool.rtype)(float(inputs[i]))
        return result

    def reserve_prices(self, index: PoolIndex) -> np.ndarray:
        """Eq. (4): ``p_tilde_r = phi_r(psi(r)) * c(r)`` for every pool."""
        prices = self.multipliers(index) * index.unit_costs()
        if np.any(prices < 0):
            raise ValueError("reserve prices must be non-negative")
        return prices

    def reserve_price_map(self, index: PoolIndex) -> dict[str, float]:
        """Reserve prices keyed by pool name."""
        prices = self.reserve_prices(index)
        return {pool.name: float(prices[i]) for i, pool in enumerate(index)}


def sweep_curve(
    phi: WeightingFunction, *, points: int = 101
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``phi`` on [0, 1]; the series behind Figure 2."""
    xs = np.linspace(0.0, 1.0, points)
    ys = np.array([phi(float(x)) for x in xs])
    return xs, ys


def figure2_curves(points: int = 101) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """The three example curves of Figure 2, keyed by their legend labels."""
    return {
        "phi1(x) = exp(2(x-0.5))": sweep_curve(PAPER_PHI_1, points=points),
        "phi2(x) = exp(x-0.5)": sweep_curve(PAPER_PHI_2, points=points),
        "phi3(x) = 1/(1.5-x)": sweep_curve(PAPER_PHI_3, points=points),
    }
