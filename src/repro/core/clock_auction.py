"""The ascending clock auction (paper Section III-C, Algorithm 1, Figure 1).

The auctioneer maintains a price "clock" per resource pool.  Each round it
collects the demand of every bidder proxy at the current prices, computes the
excess demand ``z(t) = sum_u x_u(t) - supply``, and either stops (no pool is
over-demanded) or raises the prices of over-demanded pools according to the
configured increment policy and repeats.

Key properties implemented/verified here:

* prices increase monotonically from the reserve prices;
* the auction terminates when excess demand is component-wise non-positive;
* with only pure buyers (plus the operator's supply) termination is
  guaranteed; with traders it may not be, so a round limit plus a divergence
  guard raise :class:`ConvergenceError` instead of looping forever;
* the full round-by-round trace (prices, excess demand, active bidders) is
  recorded for analysis and for the Figure 1 / Algorithm 1 reproduction.

Demand collection runs on one of two interchangeable engines selected by
:attr:`AuctionConfig.engine`: the scalar per-proxy loop (the reference
implementation) or the vectorized :class:`repro.core.batch.BatchDemandEngine`,
which evaluates all bidders as dense matrix operations and scales to tens of
thousands of bidders.  Both engines honor the same round-trace contract and
produce identical :class:`AuctionRound` / :class:`AuctionOutcome` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.batch import BatchDemandEngine
from repro.core.bids import Bid, BidderClass, classify_bidder
from repro.core.increment import IncrementPolicy, default_increment
from repro.core.proxy import BidderProxy

#: Valid values of :attr:`AuctionConfig.engine`.
ENGINES = ("auto", "scalar", "batch")

#: With ``engine="auto"``, auctions with at least this many bidders use the
#: vectorized batch engine; smaller ones stay on the scalar path, whose
#: per-round fixed overhead is lower.
BATCH_AUTO_THRESHOLD = 32


class ConvergenceError(RuntimeError):
    """The clock auction failed to clear within the configured round limit."""


@dataclass(frozen=True)
class AuctionConfig:
    """Tunable parameters of the clock auction.

    Attributes
    ----------
    max_rounds:
        Hard limit on the number of price updates before giving up.
    tolerance:
        Excess demand below this (per pool, in resource units relative to the
        pool scale) counts as cleared.
    stall_rounds:
        If prices stop moving for this many consecutive rounds while excess
        demand persists, the auction aborts early (it would never clear).
    record_bidder_demands:
        If ``True``, each round records every bidder's individual demand
        vector (memory-heavier; useful for debugging and small experiments).
    engine:
        Which demand-collection path to use per round: ``"scalar"`` walks the
        per-bidder proxies, ``"batch"`` evaluates all bidders as dense matrix
        operations (:class:`repro.core.batch.BatchDemandEngine`), and
        ``"auto"`` (default) picks batch once the auction has at least
        :data:`BATCH_AUTO_THRESHOLD` bidders.  Both engines produce identical
        round traces.

    Examples
    --------
    >>> AuctionConfig(max_rounds=100, engine="batch").engine
    'batch'
    >>> AuctionConfig(engine="turbo")
    Traceback (most recent call last):
        ...
    ValueError: engine must be one of ('auto', 'scalar', 'batch'), got 'turbo'
    """

    max_rounds: int = 10_000
    tolerance: float = 1e-9
    stall_rounds: int = 50
    record_bidder_demands: bool = False
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self.stall_rounds < 1:
            raise ValueError("stall_rounds must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")


@dataclass(frozen=True)
class AuctionRound:
    """State of one round ``t`` of the clock auction."""

    round_index: int
    prices: np.ndarray
    excess_demand: np.ndarray
    active_bidders: int
    #: Individual bidder demand vectors, present only when
    #: :attr:`AuctionConfig.record_bidder_demands` is set.
    bidder_demands: dict[str, np.ndarray] | None = None

    @property
    def over_demanded_pools(self) -> np.ndarray:
        """Boolean mask of pools with strictly positive excess demand."""
        return self.excess_demand > 0


@dataclass
class AuctionOutcome:
    """Result of running the clock auction to completion."""

    index: PoolIndex
    converged: bool
    final_prices: np.ndarray
    final_demands: dict[str, np.ndarray]
    excess_demand: np.ndarray
    rounds: list[AuctionRound] = field(default_factory=list)
    reserve_prices: np.ndarray | None = None

    @property
    def round_count(self) -> int:
        """Number of price-update rounds executed."""
        return len(self.rounds)

    def price_map(self) -> dict[str, float]:
        """Final prices keyed by pool name."""
        return {pool.name: float(self.final_prices[i]) for i, pool in enumerate(self.index)}

    def price_trajectory(self, pool_name: str) -> np.ndarray:
        """The price of one pool across all recorded rounds."""
        i = self.index.index_of(pool_name)
        return np.array([r.prices[i] for r in self.rounds], dtype=float)

    def active_bidder_counts(self) -> list[int]:
        """Number of active (non-dropped-out) bidders per round."""
        return [r.active_bidders for r in self.rounds]


class AscendingClockAuction:
    """Runs Algorithm 1 over a set of sealed bids.

    Parameters
    ----------
    index:
        The pool index all bids are expressed over.
    bids:
        Sealed bids; each is wrapped in a :class:`BidderProxy`.
    reserve_prices:
        Starting prices ``p_tilde`` (typically from
        :class:`repro.core.reserve.ReservePricer`).  Must be non-negative.
    supply:
        Optional non-negative vector of resources the operator makes available
        to the market on top of what selling bidders offer.  The clearing
        condition becomes ``sum_u x_u(t) <= supply``; passing zeros (default)
        recovers the paper's ``sum_u x_u <= 0`` where all supply must come
        from selling participants.
    increment:
        Price-increment policy; defaults to
        :func:`repro.core.increment.default_increment` built from pool capacities.
    config:
        Round limits, tolerances, and the demand-collection engine choice.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bids = [Bid.buy("team", index, [{"a/cpu": 10}], max_payment=1e6)]
    >>> auction = AscendingClockAuction(
    ...     index, bids,
    ...     reserve_prices=np.ones(len(index)),
    ...     supply=np.full(len(index), 50.0),
    ... )
    >>> auction.engine            # "auto" resolves by bidder count
    'scalar'
    >>> outcome = auction.run()
    >>> outcome.converged, outcome.round_count
    (True, 1)
    """

    def __init__(
        self,
        index: PoolIndex,
        bids: Sequence[Bid],
        *,
        reserve_prices: np.ndarray | Sequence[float],
        supply: np.ndarray | Sequence[float] | None = None,
        increment: IncrementPolicy | None = None,
        config: AuctionConfig | None = None,
    ):
        self.index = index
        self.bids = list(bids)
        for bid in self.bids:
            if bid.index.names != index.names:
                raise ValueError(
                    f"bid from {bid.bidder!r} is defined over a different pool index"
                )
        self.reserve_prices = np.asarray(reserve_prices, dtype=float).copy()
        if self.reserve_prices.shape != (len(index),):
            raise ValueError(
                f"reserve prices have shape {self.reserve_prices.shape}, expected ({len(index)},)"
            )
        if np.any(self.reserve_prices < 0) or not np.all(np.isfinite(self.reserve_prices)):
            raise ValueError("reserve prices must be finite and non-negative")
        if supply is None:
            self.supply = np.zeros(len(index), dtype=float)
        else:
            self.supply = np.asarray(supply, dtype=float).copy()
            if self.supply.shape != (len(index),):
                raise ValueError("supply vector has the wrong length")
            if np.any(self.supply < 0):
                raise ValueError("supply must be non-negative")
        self.increment = increment or default_increment(index.capacities())
        self.config = config or AuctionConfig()
        self.proxies = [BidderProxy(bid) for bid in self.bids]
        if self.config.engine == "auto":
            self.engine = "batch" if len(self.bids) >= BATCH_AUTO_THRESHOLD else "scalar"
        else:
            self.engine = self.config.engine
        #: Lazily built batch engine (only when the batch path is active).
        self._batch: BatchDemandEngine | None = None

    # -- analysis helpers -----------------------------------------------------
    def bidder_classes(self) -> dict[str, BidderClass]:
        """Classification of every bidder (buyers/sellers/traders)."""
        return {bid.bidder: classify_bidder(bid) for bid in self.bids}

    def has_traders(self) -> bool:
        """True if any bid mixes demands and offers (convergence not guaranteed)."""
        return any(cls is BidderClass.TRADER for cls in self.bidder_classes().values())

    # -- core loop --------------------------------------------------------------
    def _collect(self, prices: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray], int]:
        """One 'collect bids' step: individual demands, their sum, active count.

        Dispatches to the scalar proxy loop or the vectorized batch engine
        according to the resolved :attr:`engine`; both return the same values.
        """
        if self.engine == "batch":
            return self._collect_batch(prices)
        return self._collect_scalar(prices)

    def _collect_scalar(self, prices: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray], int]:
        """Reference path: evaluate each :class:`BidderProxy` in turn."""
        total = np.zeros(len(self.index), dtype=float)
        demands: dict[str, np.ndarray] = {}
        active = 0
        for proxy in self.proxies:
            decision = proxy.respond(prices)
            demands[proxy.bidder] = decision.quantities
            total += decision.quantities
            if decision.active:
                active += 1
        return total, demands, active

    def _collect_batch(self, prices: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray], int]:
        """Vectorized path: evaluate every bidder in one shot."""
        if self._batch is None:
            self._batch = BatchDemandEngine(self.index, self.bids)
        response = self._batch.respond_all(prices)
        return response.total, response.demand_map(), response.active_count

    def _cleared(self, excess: np.ndarray) -> bool:
        """Clearing test: every pool's excess demand is <= tolerance (scaled)."""
        scale = np.maximum(self.index.capacities(), 1.0)
        return bool(np.all(excess <= self.config.tolerance * scale + self.config.tolerance))

    def run(self) -> AuctionOutcome:
        """Execute the ascending clock auction and return its outcome.

        Raises
        ------
        ConvergenceError
            If the auction neither clears nor makes progress within
            ``config.max_rounds`` (possible when traders are present,
            Section III-C-3).
        """
        cfg = self.config
        prices = self.reserve_prices.copy()
        rounds: list[AuctionRound] = []
        stalled = 0

        for t in range(cfg.max_rounds):
            total_demand, demands, active = self._collect(prices)
            excess = total_demand - self.supply
            rounds.append(
                AuctionRound(
                    round_index=t,
                    prices=prices.copy(),
                    excess_demand=excess.copy(),
                    active_bidders=active,
                    bidder_demands={k: v.copy() for k, v in demands.items()}
                    if cfg.record_bidder_demands
                    else None,
                )
            )
            if self._cleared(excess):
                return AuctionOutcome(
                    index=self.index,
                    converged=True,
                    final_prices=prices,
                    final_demands=demands,
                    excess_demand=excess,
                    rounds=rounds,
                    reserve_prices=self.reserve_prices.copy(),
                )
            step = np.asarray(self.increment.increment(excess, prices), dtype=float)
            if np.any(step < 0) or not np.all(np.isfinite(step)):
                raise ValueError(
                    f"increment policy {self.increment.describe()} returned an invalid step"
                )
            # Only over-demanded pools move (Algorithm 1 line 9 with g >= 0
            # supported on the positive part of excess demand).
            step = np.where(excess > 0, step, 0.0)
            if float(step.max(initial=0.0)) <= 0.0:
                stalled += 1
                if stalled >= cfg.stall_rounds:
                    raise ConvergenceError(
                        "clock auction stalled: excess demand persists but prices are no longer moving"
                    )
            else:
                stalled = 0
            prices = prices + step

        raise ConvergenceError(
            f"clock auction did not clear within {cfg.max_rounds} rounds "
            f"(traders present: {self.has_traders()})"
        )
