"""The ascending clock auction (paper Section III-C, Algorithm 1, Figure 1).

The auctioneer maintains a price "clock" per resource pool.  Each round it
collects the demand of every bidder proxy at the current prices, computes the
excess demand ``z(t) = sum_u x_u(t) - supply``, and either stops (no pool is
over-demanded) or raises the prices of over-demanded pools according to the
configured increment policy and repeats.

Key properties implemented/verified here:

* prices increase monotonically from the reserve prices;
* the auction terminates when excess demand is component-wise non-positive;
* with only pure buyers (plus the operator's supply) termination is
  guaranteed; with traders it may not be, so a round limit plus a divergence
  guard raise :class:`ConvergenceError` instead of looping forever;
* the full round-by-round trace (prices, excess demand, active bidders) is
  recorded for analysis and for the Figure 1 / Algorithm 1 reproduction.

Demand collection runs on one of four interchangeable engines selected by
:attr:`AuctionConfig.engine`: the scalar per-proxy loop (the reference
implementation); the vectorized :class:`repro.core.batch.BatchDemandEngine`,
which evaluates all bidders as dense matrix operations and scales to tens of
thousands of bidders; the *incremental* engine
(:class:`repro.core.batch.IncrementalDemandState`), which exploits the
clock's monotone prices to re-evaluate each round only the bundle rows
touching pools whose prices moved and to permanently retire dropped-out
buyers; and the *sharded* engine, which partitions the pool index into
independent shards (pools no bid couples across, discovered from the stacked
bid matrix), runs price discovery per shard on restricted engines — each
using the same delta collection, optionally on worker threads — and merges
the per-shard round traces back into the canonical global round sequence.
All engines honor the same round-trace contract and produce identical
:class:`AuctionRound` / :class:`AuctionOutcome` objects; ``docs/engines.md``
has the full matrix and ``docs/sharding.md`` spells out why the sharded
merge is exact.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.batch import (
    BatchDemandEngine,
    BatchResponse,
    IncrementalDemandState,
    ShardPlan,
)
from repro.core.bids import Bid, BidderClass, classify_bidder
from repro.core.increment import IncrementPolicy, default_increment
from repro.core.proxy import BidderProxy

#: Valid values of :attr:`AuctionConfig.engine`.
ENGINES = ("auto", "scalar", "batch", "incremental", "sharded")

#: Below this many bid-carrying shards the sharded engine falls back to the
#: plain batch loop: with at most one shard doing price discovery there is
#: nothing to run independently, only orchestration overhead to pay.
SHARD_MIN_EFFECTIVE = 2

#: With ``engine="auto"``, auctions with at least this many bidders use the
#: vectorized batch engine; smaller ones stay on the scalar path, whose
#: per-round fixed overhead is lower.
BATCH_AUTO_THRESHOLD = 32


class ConvergenceError(RuntimeError):
    """The clock auction failed to clear within the configured round limit."""


@dataclass(frozen=True)
class AuctionConfig:
    """Tunable parameters of the clock auction.

    Attributes
    ----------
    max_rounds:
        Hard limit on the number of price updates before giving up.
    tolerance:
        Excess demand below this (per pool, in resource units relative to the
        pool scale) counts as cleared.
    stall_rounds:
        If prices stop moving for this many consecutive rounds while excess
        demand persists, the auction aborts early (it would never clear).
    record_bidder_demands:
        If ``True``, each round records every bidder's individual demand
        vector (memory-heavier; useful for debugging and small experiments).
    engine:
        Which demand-collection path to use per round: ``"scalar"`` walks the
        per-bidder proxies, ``"batch"`` evaluates all bidders as dense matrix
        operations (:class:`repro.core.batch.BatchDemandEngine`),
        ``"incremental"`` re-evaluates each round only the bundle rows
        touching pools whose prices moved and retires dropped-out buyers
        permanently (:class:`repro.core.batch.IncrementalDemandState`),
        ``"sharded"`` runs price discovery per independent pool shard —
        each shard collecting incrementally — and merges the traces (falling
        back to batch when fewer than :data:`SHARD_MIN_EFFECTIVE` shards
        carry bids), and ``"auto"`` (default) picks batch once the auction
        has at least :data:`BATCH_AUTO_THRESHOLD` bidders.  All engines
        produce identical round traces.
    shard_workers:
        Worker threads for the sharded engine's per-shard price discovery
        (``None`` = one per CPU, capped at the shard count).  Any value
        produces the same bytes: threads only change wall-clock, never the
        merge order.

    Examples
    --------
    >>> AuctionConfig(max_rounds=100, engine="batch").engine
    'batch'
    >>> AuctionConfig(engine="turbo")
    Traceback (most recent call last):
        ...
    ValueError: engine must be one of ('auto', 'scalar', 'batch', 'incremental', 'sharded'), got 'turbo'
    """

    max_rounds: int = 10_000
    tolerance: float = 1e-9
    stall_rounds: int = 50
    record_bidder_demands: bool = False
    engine: str = "auto"
    shard_workers: int | None = None

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self.stall_rounds < 1:
            raise ValueError("stall_rounds must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1 (or None for one per CPU)")


@dataclass(frozen=True)
class AuctionRound:
    """State of one round ``t`` of the clock auction."""

    round_index: int
    prices: np.ndarray
    excess_demand: np.ndarray
    active_bidders: int
    #: Individual bidder demand vectors, present only when
    #: :attr:`AuctionConfig.record_bidder_demands` is set.
    bidder_demands: dict[str, np.ndarray] | None = None

    @property
    def over_demanded_pools(self) -> np.ndarray:
        """Boolean mask of pools with strictly positive excess demand."""
        return self.excess_demand > 0


@dataclass
class AuctionOutcome:
    """Result of running the clock auction to completion."""

    index: PoolIndex
    converged: bool
    final_prices: np.ndarray
    final_demands: dict[str, np.ndarray]
    excess_demand: np.ndarray
    rounds: list[AuctionRound] = field(default_factory=list)
    reserve_prices: np.ndarray | None = None

    @property
    def round_count(self) -> int:
        """Number of price-update rounds executed."""
        return len(self.rounds)

    def price_map(self) -> dict[str, float]:
        """Final prices keyed by pool name."""
        return {pool.name: float(self.final_prices[i]) for i, pool in enumerate(self.index)}

    def price_trajectory(self, pool_name: str) -> np.ndarray:
        """The price of one pool across all recorded rounds."""
        i = self.index.index_of(pool_name)
        return np.array([r.prices[i] for r in self.rounds], dtype=float)

    def active_bidder_counts(self) -> list[int]:
        """Number of active (non-dropped-out) bidders per round."""
        return [r.active_bidders for r in self.rounds]


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's completed price discovery, handed to ``on_shard`` callbacks.

    Emitted by the sharded engine as each shard reaches its fixed point —
    while other shards may still be iterating — so downstream stages
    (settlement, ingestion of the next window) can overlap with the remaining
    discovery.  ``provisional_prices`` is a full-length price vector whose
    entries on this shard's pools are the shard's fixed-point prices and
    whose other entries are the reserve prices; because every bid in the
    shard is structurally zero outside the shard's pools, settling the
    shard's bids at this vector is bit-identical to settling them at the
    final global prices — *unless* the global stop truncates the shard's
    trace early (a knife-edge case the caller must re-check against
    :attr:`AuctionOutcome.final_prices`).
    """

    shard_index: int
    bid_positions: tuple[int, ...]
    pool_positions: tuple[int, ...]
    provisional_prices: np.ndarray
    local_rounds: int


@dataclass
class _ShardRound:
    """One local round of one shard (shard-width arrays only)."""

    prices: np.ndarray
    excess: np.ndarray
    active: int
    cleared: bool
    moved: bool
    quantities: np.ndarray | None = None


@dataclass
class _ShardTrace:
    """A shard's full local trace up to its dynamics fixed point."""

    shard_index: int
    pools: np.ndarray
    bid_positions: tuple[int, ...]
    engine: BatchDemandEngine
    rounds: list[_ShardRound]
    #: Per-bidder quantity rows of the *last* local round (kept even when
    #: ``record_bidder_demands`` is off, for the merged final demands).
    final_quantities: np.ndarray

    def quantities_at(self, local_round: int) -> np.ndarray:
        """The shard's per-bidder quantity rows at one local round.

        Served from the recorded trace when available; otherwise (trace
        recorded without ``record_bidder_demands`` and the global stop
        truncated this shard) recomputed by re-announcing that round's
        prices, which is deterministic and bit-identical to what the shard
        computed in-loop.
        """
        round_state = self.rounds[local_round]
        if round_state.quantities is not None:
            return round_state.quantities
        if local_round == len(self.rounds) - 1:
            return self.final_quantities
        prices = np.zeros(self.engine.matrix.shape[1], dtype=float)
        prices[self.pools] = round_state.prices
        return self.engine.respond_all(prices).quantities


class AscendingClockAuction:
    """Runs Algorithm 1 over a set of sealed bids.

    Parameters
    ----------
    index:
        The pool index all bids are expressed over.
    bids:
        Sealed bids; each is wrapped in a :class:`BidderProxy`.
    reserve_prices:
        Starting prices ``p_tilde`` (typically from
        :class:`repro.core.reserve.ReservePricer`).  Must be non-negative.
    supply:
        Optional non-negative vector of resources the operator makes available
        to the market on top of what selling bidders offer.  The clearing
        condition becomes ``sum_u x_u(t) <= supply``; passing zeros (default)
        recovers the paper's ``sum_u x_u <= 0`` where all supply must come
        from selling participants.
    increment:
        Price-increment policy; defaults to
        :func:`repro.core.increment.default_increment` built from pool capacities.
    config:
        Round limits, tolerances, and the demand-collection engine choice.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.cluster.pools import demo_pool_index
    >>> from repro.core.bids import Bid
    >>> index = demo_pool_index()
    >>> bids = [Bid.buy("team", index, [{"a/cpu": 10}], max_payment=1e6)]
    >>> auction = AscendingClockAuction(
    ...     index, bids,
    ...     reserve_prices=np.ones(len(index)),
    ...     supply=np.full(len(index), 50.0),
    ... )
    >>> auction.engine            # "auto" resolves by bidder count
    'scalar'
    >>> outcome = auction.run()
    >>> outcome.converged, outcome.round_count
    (True, 1)

    Decoupled bids shard cleanly (``a/*`` and ``b/*`` pools never share a bid):

    >>> bids = [Bid.buy("u1", index, [{"a/cpu": 10}], max_payment=1e6),
    ...         Bid.buy("u2", index, [{"b/cpu": 10}], max_payment=1e6)]
    >>> sharded = AscendingClockAuction(
    ...     index, bids,
    ...     reserve_prices=np.ones(len(index)),
    ...     supply=np.full(len(index), 50.0),
    ...     config=AuctionConfig(engine="sharded"),
    ... )
    >>> sharded.run().converged
    True
    >>> sharded.shard_plan.effective_shards
    2
    """

    def __init__(
        self,
        index: PoolIndex,
        bids: Sequence[Bid],
        *,
        reserve_prices: np.ndarray | Sequence[float],
        supply: np.ndarray | Sequence[float] | None = None,
        increment: IncrementPolicy | None = None,
        config: AuctionConfig | None = None,
    ):
        self.index = index
        self.bids = list(bids)
        for bid in self.bids:
            if bid.index.names != index.names:
                raise ValueError(
                    f"bid from {bid.bidder!r} is defined over a different pool index"
                )
        self.reserve_prices = np.asarray(reserve_prices, dtype=float).copy()
        if self.reserve_prices.shape != (len(index),):
            raise ValueError(
                f"reserve prices have shape {self.reserve_prices.shape}, expected ({len(index)},)"
            )
        if np.any(self.reserve_prices < 0) or not np.all(np.isfinite(self.reserve_prices)):
            raise ValueError("reserve prices must be finite and non-negative")
        if supply is None:
            self.supply = np.zeros(len(index), dtype=float)
        else:
            self.supply = np.asarray(supply, dtype=float).copy()
            if self.supply.shape != (len(index),):
                raise ValueError("supply vector has the wrong length")
            if np.any(self.supply < 0):
                raise ValueError("supply must be non-negative")
        self.increment = increment or default_increment(index.capacities())
        self.config = config or AuctionConfig()
        self.proxies = [BidderProxy(bid) for bid in self.bids]
        if self.config.engine == "auto":
            self.engine = "batch" if len(self.bids) >= BATCH_AUTO_THRESHOLD else "scalar"
        else:
            self.engine = self.config.engine
        #: Lazily built batch engine (only when the batch path is active).
        self._batch: BatchDemandEngine | None = None
        #: The last :class:`BatchResponse` collected (batch engine only);
        #: backs :meth:`_last_demand_map` without re-materialising demands.
        self._last_batch_response: BatchResponse | None = None
        #: The delta-evaluation state of the current incremental run; a fresh
        #: one is opened per ``run`` (the kernel requires monotone prices).
        self._inc_state: IncrementalDemandState | None = None
        #: The shard partition planned by the sharded engine (set by ``run``).
        self.shard_plan: ShardPlan | None = None
        #: ``True`` when ``engine="sharded"`` found fewer than
        #: :data:`SHARD_MIN_EFFECTIVE` bid-carrying shards and ran the plain
        #: batch loop instead.
        self.sharded_fallback: bool = False
        #: Optional callback the sharded engine invokes with a
        #: :class:`ShardOutcome` as each shard finishes price discovery —
        #: lets callers overlap settlement of shard ``k`` with discovery of
        #: shard ``k+1``.  Never invoked on the fallback path.
        self.on_shard: Callable[[ShardOutcome], None] | None = None
        #: Facts about the last sharded run (shard sizes, workers, local
        #: round counts); ``None`` until a sharded ``run`` executes.
        self.shard_stats: dict[str, object] | None = None

    @property
    def incremental_stats(self) -> dict[str, object] | None:
        """Delta-kernel facts (rows re-evaluated per round, retirements) from
        the last incremental run; ``None`` for other engines.  Diagnostic
        only — never part of the canonical report."""
        if self._inc_state is None:
            return None
        return self._inc_state.stats()

    # -- analysis helpers -----------------------------------------------------
    def bidder_classes(self) -> dict[str, BidderClass]:
        """Classification of every bidder (buyers/sellers/traders)."""
        return {bid.bidder: classify_bidder(bid) for bid in self.bids}

    def has_traders(self) -> bool:
        """True if any bid mixes demands and offers (convergence not guaranteed)."""
        return any(cls is BidderClass.TRADER for cls in self.bidder_classes().values())

    # -- core loop --------------------------------------------------------------
    def _collect(self, prices: np.ndarray) -> tuple[np.ndarray, int]:
        """One 'collect bids' step: total demand and the active-bidder count.

        Dispatches to the scalar proxy loop, the vectorized batch engine, or
        the incremental delta kernel according to the resolved :attr:`engine`;
        all return the same values.  (The sharded engine's fallback path also
        lands here, on batch.)  Per-bidder demand maps are *not* materialised
        here — at stress scale a 100k-entry dict per round is pure overhead
        when nobody records it; callers that need the individual demands
        (round recording, the cleared round's final demands) ask
        :meth:`_last_demand_map` afterwards.
        """
        if self.engine == "scalar":
            return self._collect_scalar(prices)
        if self.engine == "incremental":
            return self._collect_incremental(prices)
        return self._collect_batch(prices)

    def _collect_scalar(self, prices: np.ndarray) -> tuple[np.ndarray, int]:
        """Reference path: evaluate each :class:`BidderProxy` in turn."""
        total = np.zeros(len(self.index), dtype=float)
        active = 0
        for proxy in self.proxies:
            decision = proxy.respond(prices)
            total += decision.quantities
            if decision.active:
                active += 1
        return total, active

    def _collect_batch(self, prices: np.ndarray) -> tuple[np.ndarray, int]:
        """Vectorized path: evaluate every bidder in one shot."""
        if self._batch is None:
            self._batch = BatchDemandEngine(self.index, self.bids)
        response = self._batch.respond_all(prices)
        self._last_batch_response = response
        return response.total, response.active_count

    def _collect_incremental(self, prices: np.ndarray) -> tuple[np.ndarray, int]:
        """Delta path: re-evaluate only rows touching pools whose price moved."""
        if self._inc_state is None:
            if self._batch is None:
                self._batch = BatchDemandEngine(self.index, self.bids)
            self._inc_state = self._batch.incremental()
        self._inc_state.advance(prices)
        return self._inc_state.total, self._inc_state.active_count

    def _last_demand_map(self) -> dict[str, np.ndarray]:
        """Per-bidder demand snapshots from the most recent :meth:`_collect`.

        Ownership contract: the returned dict and its arrays are **caller
        owned** — no later round, engine call, or other caller mutates them —
        so round recording can store them without defensive copies.  The
        scalar path hands out the fresh arrays its proxies built for this
        round; the batch path hands out views into this round's response
        (every round builds new response arrays); the incremental path copies
        out of its live buffers (which the next round mutates in place).
        """
        if self.engine == "scalar":
            return {
                proxy.bidder: proxy.last_decision.quantities
                for proxy in self.proxies
                if proxy.last_decision is not None
            }
        if self.engine == "incremental":
            assert self._inc_state is not None
            return self._inc_state.demand_map()
        assert self._last_batch_response is not None
        return self._last_batch_response.demand_map()

    def _cleared(self, excess: np.ndarray) -> bool:
        """Clearing test: every pool's excess demand is <= tolerance (scaled)."""
        scale = np.maximum(self.index.capacities(), 1.0)
        return bool(np.all(excess <= self.config.tolerance * scale + self.config.tolerance))

    def run(self) -> AuctionOutcome:
        """Execute the ascending clock auction and return its outcome.

        Raises
        ------
        ConvergenceError
            If the auction neither clears nor makes progress within
            ``config.max_rounds`` (possible when traders are present,
            Section III-C-3).
        """
        if self.engine == "sharded":
            return self._run_sharded()
        return self._run_rounds()

    def _run_rounds(self) -> AuctionOutcome:
        """The sequential clock loop (scalar, batch, and incremental engines)."""
        cfg = self.config
        prices = self.reserve_prices.copy()
        rounds: list[AuctionRound] = []
        stalled = 0
        # Each run restarts the clock at the reserve prices, so the previous
        # run's delta state (which requires monotone prices) cannot carry over.
        self._inc_state = None

        for t in range(cfg.max_rounds):
            total_demand, active = self._collect(prices)
            excess = total_demand - self.supply
            rounds.append(
                AuctionRound(
                    round_index=t,
                    prices=prices.copy(),
                    excess_demand=excess.copy(),
                    active_bidders=active,
                    # Caller-owned snapshots straight from the engine — see
                    # the _last_demand_map ownership contract.
                    bidder_demands=self._last_demand_map()
                    if cfg.record_bidder_demands
                    else None,
                )
            )
            if self._cleared(excess):
                return AuctionOutcome(
                    index=self.index,
                    converged=True,
                    final_prices=prices,
                    final_demands=self._last_demand_map(),
                    excess_demand=excess,
                    rounds=rounds,
                    reserve_prices=self.reserve_prices.copy(),
                )
            step = np.asarray(self.increment.increment(excess, prices), dtype=float)
            if np.any(step < 0) or not np.all(np.isfinite(step)):
                raise ValueError(
                    f"increment policy {self.increment.describe()} returned an invalid step"
                )
            # Only over-demanded pools move (Algorithm 1 line 9 with g >= 0
            # supported on the positive part of excess demand).
            step = np.where(excess > 0, step, 0.0)
            if float(step.max(initial=0.0)) <= 0.0:
                stalled += 1
                if stalled >= cfg.stall_rounds:
                    raise ConvergenceError(
                        "clock auction stalled: excess demand persists but prices are no longer moving"
                    )
            else:
                stalled = 0
            prices = prices + step

        raise ConvergenceError(
            f"clock auction did not clear within {cfg.max_rounds} rounds "
            f"(traders present: {self.has_traders()})"
        )

    # -- sharded engine ---------------------------------------------------------
    def _discover_shard(
        self, shard_index: int, pools: Sequence[int], bid_positions: Sequence[int]
    ) -> _ShardTrace:
        """Run one shard's price discovery to its dynamics fixed point.

        The shard iterates the same collect/clear-test/increment dynamics as
        the global loop, restricted to its own pools and bids, until the
        masked price step is identically zero — at which point the shard's
        state can never change again, so its trace extends to any later
        global round by repetition of the last local round.  Stopping at the
        *fixed point* rather than at the first cleared round matters: the
        global loop keeps raising any pool with strictly positive excess
        demand, even inside the clearing tolerance, and the merge must
        reproduce that bit-for-bit.
        """
        assert self._batch is not None
        cfg = self.config
        pools_arr = np.asarray(pools, dtype=np.intp)
        sub = self._batch.restrict(bid_positions)
        # Delta collection inside the shard: prices are monotone within the
        # shard's own clock exactly as in the global loop, so the restricted
        # engine's incremental state re-evaluates only the rows touching
        # pools this shard actually moved (off-shard pools never move here).
        state = sub.incremental()
        # Full-length working vector: shard pools evolve, the rest sit at the
        # reserve prices.  Every bid in the shard is structurally zero outside
        # the shard's pools, so the off-shard entries never influence costs.
        prices = self.reserve_prices.copy()
        supply_s = self.supply[pools_arr]
        scale_s = np.maximum(self.index.capacities(), 1.0)[pools_arr]
        tol = cfg.tolerance
        rounds: list[_ShardRound] = []
        for _ in range(cfg.max_rounds):
            state.advance(prices)
            excess_s = state.total[pools_arr] - supply_s
            cleared = bool(np.all(excess_s <= tol * scale_s + tol))
            excess_full = np.zeros(len(self.index), dtype=float)
            excess_full[pools_arr] = excess_s
            step_full = np.asarray(self.increment.increment(excess_full, prices), dtype=float)
            step_s = step_full[pools_arr]
            if np.any(step_s < 0) or not np.all(np.isfinite(step_s)):
                raise ValueError(
                    f"increment policy {self.increment.describe()} returned an invalid step"
                )
            step_s = np.where(excess_s > 0, step_s, 0.0)
            moved = float(step_s.max(initial=0.0)) > 0.0
            rounds.append(
                _ShardRound(
                    prices=prices[pools_arr].copy(),
                    excess=excess_s,
                    active=state.active_count,
                    cleared=cleared,
                    moved=moved,
                    # The state's buffers mutate in place next round, so the
                    # recorded trace takes a snapshot.
                    quantities=state.quantities.copy() if cfg.record_bidder_demands else None,
                )
            )
            if not moved:
                break
            prices[pools_arr] = prices[pools_arr] + step_s
        # The loop is over: the state's buffers are final and safe to borrow.
        final_quantities = state.quantities
        return _ShardTrace(
            shard_index=shard_index,
            pools=pools_arr,
            bid_positions=tuple(int(b) for b in bid_positions),
            engine=sub,
            rounds=rounds,
            final_quantities=final_quantities,
        )

    def _run_sharded(self) -> AuctionOutcome:
        """Per-shard price discovery on worker threads, merged to the global trace.

        Plans the shard partition from the stacked bid matrix, runs each
        shard's clock independently (the numpy work releases the GIL, so the
        shards genuinely overlap), then replays the global round sequence —
        round ``t`` of the merged trace is each shard's local round
        ``min(t, T_s - 1)``, the stop/stall logic re-runs on the merged
        flags — producing the same :class:`AuctionOutcome` bytes as the
        batch engine.  Falls back to the plain batch loop (setting
        :attr:`sharded_fallback`) when fewer than
        :data:`SHARD_MIN_EFFECTIVE` shards carry bids.
        """
        cfg = self.config
        if self._batch is None:
            self._batch = BatchDemandEngine(self.index, self.bids)
        plan = self._batch.plan_shards()
        self.shard_plan = plan
        if plan.effective_shards < SHARD_MIN_EFFECTIVE:
            self.sharded_fallback = True
            self.shard_stats = {**plan.describe(), "workers": 0, "fallback": True}
            return self._run_rounds()
        workers = cfg.shard_workers or min(os.cpu_count() or 1, plan.shard_count)
        self.shard_stats = {**plan.describe(), "workers": workers, "fallback": False}

        traces: list[_ShardTrace | None] = [None] * plan.shard_count
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self._discover_shard, i, plan.pool_groups[i], plan.bid_groups[i])
                for i in range(plan.shard_count)
            ]
            for future in as_completed(futures):
                trace = future.result()
                traces[trace.shard_index] = trace
                if self.on_shard is not None and trace.bid_positions:
                    provisional = self.reserve_prices.copy()
                    provisional[trace.pools] = trace.rounds[-1].prices
                    self.on_shard(
                        ShardOutcome(
                            shard_index=trace.shard_index,
                            bid_positions=trace.bid_positions,
                            pool_positions=tuple(int(p) for p in trace.pools),
                            provisional_prices=provisional,
                            local_rounds=len(trace.rounds),
                        )
                    )
        done = [trace for trace in traces if trace is not None]
        self.shard_stats["local_rounds"] = [len(trace.rounds) for trace in done]
        return self._merge_shard_traces(done)

    def _merge_shard_traces(self, traces: list[_ShardTrace]) -> AuctionOutcome:
        """Replay the global round sequence from the per-shard fixed-point traces."""
        cfg = self.config
        r = len(self.index)
        # Submission-order source of each bid's demand row: (shard, local row).
        demand_sources: list[tuple[_ShardTrace, int]] = [None] * len(self.bids)  # type: ignore[list-item]
        for trace in traces:
            for local, position in enumerate(trace.bid_positions):
                demand_sources[position] = (trace, local)

        rounds: list[AuctionRound] = []
        stalled = 0
        for t in range(cfg.max_rounds):
            prices_t = np.empty(r, dtype=float)
            excess_t = np.empty(r, dtype=float)
            active = 0
            all_cleared = True
            any_moved = False
            for trace in traces:
                local = min(t, len(trace.rounds) - 1)
                state = trace.rounds[local]
                prices_t[trace.pools] = state.prices
                excess_t[trace.pools] = state.excess
                active += state.active
                all_cleared = all_cleared and state.cleared
                any_moved = any_moved or state.moved
            demands_t: dict[str, np.ndarray] | None = None
            if cfg.record_bidder_demands:
                demands_t = {}
                for position, bid in enumerate(self.bids):
                    trace, local_row = demand_sources[position]
                    state = trace.rounds[min(t, len(trace.rounds) - 1)]
                    demands_t[bid.bidder] = state.quantities[local_row].copy()
            rounds.append(
                AuctionRound(
                    round_index=t,
                    prices=prices_t,
                    excess_demand=excess_t,
                    active_bidders=active,
                    bidder_demands=demands_t,
                )
            )
            if all_cleared:
                final_rows = {
                    id(trace): trace.quantities_at(min(t, len(trace.rounds) - 1))
                    for trace in traces
                }
                final_demands = {
                    bid.bidder: final_rows[id(demand_sources[position][0])][
                        demand_sources[position][1]
                    ]
                    for position, bid in enumerate(self.bids)
                }
                return AuctionOutcome(
                    index=self.index,
                    converged=True,
                    final_prices=prices_t,
                    final_demands=final_demands,
                    excess_demand=excess_t,
                    rounds=rounds,
                    reserve_prices=self.reserve_prices.copy(),
                )
            if not any_moved:
                stalled += 1
                if stalled >= cfg.stall_rounds:
                    raise ConvergenceError(
                        "clock auction stalled: excess demand persists but prices are no longer moving"
                    )
            else:
                stalled = 0

        raise ConvergenceError(
            f"clock auction did not clear within {cfg.max_rounds} rounds "
            f"(traders present: {self.has_traders()})"
        )
