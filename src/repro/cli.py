"""``python -m repro`` — run catalog scenarios from the command line.

Three subcommands:

``list``
    Show every scenario in the catalog (name, scale, tags, description).
``run``
    Run one scenario end to end (optionally several replicate seeds in
    parallel) and print its trajectory report.
``sweep``
    Run a batch of scenarios across a process pool and print the aggregate
    cross-scenario report.

``--json`` switches stdout from human-readable tables to the runner's
canonical JSON report, which is byte-identical for any ``--workers`` value;
progress and timing always go to stderr so they never pollute the artifact.

>>> from repro.cli import build_parser
>>> build_parser().parse_args(["run", "smoke", "--workers", "2"]).workers
2
>>> build_parser().parse_args(["sweep", "--all"]).all
True
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import __version__
from repro.simulation.catalog import (
    default_sweep_names,
    get_scenario,
    scenario_names,
)
from repro.simulation.runner import ParallelRunner, ScenarioRunResult, SweepReport


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run market-economy scenarios from the catalog.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list every catalog scenario")
    list_cmd.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    list_cmd.add_argument("--tag", help="only scenarios carrying this tag")

    run_cmd = sub.add_parser("run", help="run one scenario end to end")
    run_cmd.add_argument("scenario", help="catalog scenario name (see `list`)")
    run_cmd.add_argument("--replicates", type=int, default=1, metavar="N",
                         help="run N replicate seeds (seed, seed+1, ...) in parallel")
    _add_run_options(run_cmd)

    sweep_cmd = sub.add_parser("sweep", help="run a batch of scenarios in parallel")
    sweep_cmd.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                           help="scenarios to run (default: all non-stress scenarios)")
    sweep_cmd.add_argument("--all", action="store_true",
                           help="include stress-tagged scenarios too")
    _add_run_options(sweep_cmd)
    return parser


def _add_run_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--workers", type=int, default=None, metavar="N",
                     help="process-pool size (default: one per core; 1 = serial)")
    cmd.add_argument("--auctions", type=int, default=None, metavar="N",
                     help="override the scenario's auction count")
    cmd.add_argument("--seed", type=int, default=None, help="override the scenario's seed")
    cmd.add_argument("--engine", choices=("auto", "scalar", "batch"), default=None,
                     help="override the demand-collection engine")
    cmd.add_argument("--json", action="store_true",
                     help="emit the canonical JSON report on stdout")
    cmd.add_argument("--out", type=Path, default=None, metavar="FILE",
                     help="also write the canonical JSON report to FILE")


class _UsageError(Exception):
    """Bad command-line input (unknown scenario, conflicting flags): exit 2."""


def _get_spec(name: str):
    """Scenario lookup with the unknown-name KeyError narrowed to usage errors,
    so KeyErrors from inside a running economy surface as real tracebacks."""
    try:
        return get_scenario(name)
    except KeyError as error:
        raise _UsageError(error.args[0]) from None


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        return _cmd_sweep(args)
    except _UsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ValueError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# -- list ---------------------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    summaries = [_get_spec(name).summary() for name in scenario_names()]
    if args.tag:
        summaries = [s for s in summaries if args.tag in s["tags"]]
    if args.json:
        import json

        print(json.dumps(summaries, indent=2, sort_keys=True))
        return 0
    header = f"{'scenario':<22} {'clusters':>8} {'teams':>6} {'auctions':>8} {'engine':>7}  description"
    print(header)
    print("-" * len(header))
    for s in summaries:
        tags = f"  [{', '.join(s['tags'])}]" if s["tags"] else ""
        print(
            f"{s['name']:<22} {s['clusters']:>8} {s['teams']:>6} {s['auctions']:>8} "
            f"{s['engine']:>7}  {s['description']}{tags}"
        )
    return 0


# -- run / sweep --------------------------------------------------------------------------


def _overrides(args: argparse.Namespace) -> dict[str, object]:
    overrides = {}
    if args.auctions is not None:
        overrides["auctions"] = args.auctions
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.engine is not None:
        overrides["engine"] = args.engine
    return overrides


def _progress(result: ScenarioRunResult) -> None:
    print(
        f"  done: {result.scenario} (seed {result.seed}) — "
        f"{result.auctions} auctions, {result.trade_count} trades, "
        f"median premium {result.median_premium[0]:.3f} -> {result.median_premium[-1]:.3f}",
        file=sys.stderr,
    )


def _emit(report: SweepReport, args: argparse.Namespace, elapsed: float, workers: int | None) -> None:
    payload = report.to_json()
    if args.out is not None:
        args.out.write_text(payload)
        print(f"report written to {args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(payload)
    else:
        _print_text_report(report)
    label = "serial" if (workers or 0) == 1 else f"workers={workers or 'auto'}"
    print(f"finished in {elapsed:.2f}s ({label})", file=sys.stderr)


def _print_text_report(report: SweepReport) -> None:
    header = (
        f"{'scenario':<22} {'teams':>6} {'pools':>6} {'auctions':>8} {'rounds':>7} "
        f"{'trades':>7} {'premium first->last':>20} {'util spread':>12}"
    )
    print(header)
    print("-" * len(header))
    for r in report.results:
        rounds = sum(r.clearing_rounds)
        premium = f"{r.median_premium[0]:.3f} -> {r.median_premium[-1]:.3f}"
        spread = f"{r.utilization_spread_change:+.3f}"
        print(
            f"{r.scenario:<22} {r.teams:>6} {r.pools:>6} {r.auctions:>8} {rounds:>7} "
            f"{r.trade_count:>7} {premium:>20} {spread:>12}"
        )
    aggregate = report.aggregate()
    print()
    print(
        f"{aggregate['scenario_count']} scenario(s), {aggregate['total_auctions']} auctions, "
        f"{aggregate['total_trades']} settled trades, "
        f"mean {aggregate['mean_clearing_rounds']:.1f} clock rounds per auction"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.replicates < 1:
        raise _UsageError("--replicates must be >= 1")
    spec = _get_spec(args.scenario).with_overrides(**_overrides(args))
    runner = ParallelRunner(workers=args.workers)
    start = time.perf_counter()
    # replicates=1 runs the spec under its own seed (seed + 0).
    report = runner.run_replicates(spec, args.replicates, on_result=_progress)
    _emit(report, args, time.perf_counter() - start, args.workers)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.scenarios and args.all:
        raise _UsageError("pass either explicit scenario names or --all, not both")
    names = args.scenarios or (scenario_names() if args.all else default_sweep_names())
    overrides = _overrides(args)
    specs = [_get_spec(name).with_overrides(**overrides) for name in names]
    print(f"sweeping {len(specs)} scenario(s): {', '.join(s.name for s in specs)}", file=sys.stderr)
    runner = ParallelRunner(workers=args.workers)
    start = time.perf_counter()
    report = runner.run_specs(specs, on_result=_progress)
    _emit(report, args, time.perf_counter() - start, args.workers)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
