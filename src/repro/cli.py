"""``python -m repro`` — run catalog scenarios from the command line.

Eight subcommands:

``list``
    Show every scenario in the catalog (name, scale, tags, description).
``run``
    Run one scenario end to end (optionally several replicate seeds in
    parallel) and print its trajectory report.
``tournament``
    Evolve a trait-parameterised bidder population across generations of a
    catalog scenario (see ``docs/tournaments.md``): each generation's
    replicate runs fan across the selected execution backend, genomes are
    scored on settled surplus / overcommitted capital / satisfied fraction,
    and clone/mutate/select produces the next generation.  Prints the
    per-generation premium trajectory with 95% CIs and whether premiums
    fell CI-separated — the paper's live finding.  ``tournament`` with no
    preset name (or ``--list``) lists the registered tournament presets.
``sweep``
    Run a batch of scenarios in parallel and print the aggregate
    cross-scenario report.  ``--mechanism`` crosses the selection with
    allocation mechanisms (``market``, ``fixed-price``, ``priority``,
    ``proportional``, ``lottery``, a comma list, or ``all``); ``--backend``
    selects the execution backend (``serial``, ``process``, ``remote``, or
    ``list`` to show them) — ``remote`` listens on ``--bind HOST:PORT`` and
    streams jobs to connected ``worker`` daemons.
``worker``
    Serve jobs for a ``remote``-backend coordinator: ``python -m repro
    worker --connect HOST:PORT`` dials the sweep process, announces an id
    and in-flight capacity, and executes streamed scenarios until the
    coordinator shuts it down.  ``--daemon`` keeps the worker alive across
    sweeps (it redials after each one) until a ``workers drain`` retires
    it; ``--secret`` authenticates against a coordinator run with the same
    secret (see ``docs/distributed.md``).
``workers``
    Manage a live coordinator's fleet over its control plane:
    ``workers list`` (per-worker status plus job-queue depths),
    ``workers drain`` (finish in-flight jobs, retire every worker),
    ``workers scale N`` (shrink the fleet without losing queued jobs, or
    report how many more workers to start).
``compare-mechanisms``
    Compare one scenario's stored replicates across allocation mechanisms:
    mean / 95% CI per metric per mechanism, with a direction-aware leader
    verdict (the paper's market-vs-tradition claim, read off the store).
``results``
    Inspect the persistent result store: ``results list`` (what is stored),
    ``results show`` (mean / 95% CI per metric across replicates), and
    ``results compare`` (diff two code versions and flag regressions —
    exits with code 3 when a metric regressed beyond the tolerance;
    ``--across mechanisms`` switches to the mechanism comparison above, and
    ``--baseline-db`` reads the baseline side from another store file, which
    is how CI gates a PR against the previous build's artifact).

``run`` and ``sweep`` persist every finished run into the sqlite result
store (``--db``, default ``./repro_results.sqlite`` or ``$REPRO_RESULTS_DB``)
keyed by ``(scenario, seed, code_version, engine, mechanism)``; pass
``--no-store`` to skip.  ``--json`` switches stdout from human-readable
tables to the runner's canonical JSON report, which is byte-identical for
any ``--workers`` value; progress and timing always go to stderr so they
never pollute the artifact.

>>> from repro.cli import build_parser
>>> build_parser().parse_args(["run", "smoke", "--workers", "2"]).workers
2
>>> build_parser().parse_args(["tournament", "paper-tournament", "--generations", "3"]).generations
3
>>> build_parser().parse_args(["tournament", "--list"]).list_tournaments
True
>>> build_parser().parse_args(["sweep", "--all"]).all
True
>>> build_parser().parse_args(["sweep", "--mechanism", "all"]).mechanism
'all'
>>> build_parser().parse_args(["sweep", "--backend", "remote"]).backend
'remote'
>>> build_parser().parse_args(["worker", "--connect", "host:7077"]).capacity
1
>>> build_parser().parse_args(["worker", "--connect", "host:7077", "--daemon"]).daemon
True
>>> build_parser().parse_args(["workers", "list", "--connect", "host:7077"]).workers_command
'list'
>>> build_parser().parse_args(["workers", "scale", "3", "--connect", "host:7077"]).count
3
>>> build_parser().parse_args(["sweep", "--backend", "remote", "--persist"]).persist
True
>>> build_parser().parse_args(["compare-mechanisms", "smoke"]).scenario
'smoke'
>>> build_parser().parse_args(["results", "show", "smoke"]).scenario
'smoke'
>>> build_parser().parse_args(["results", "compare", "smoke", "--tolerance", "0.1"]).tolerance
0.1
>>> build_parser().parse_args(["results", "compare", "smoke", "--across", "mechanisms"]).across
'mechanisms'
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro import __version__
from repro.simulation.catalog import (
    default_sweep_names,
    get_scenario,
    scenario_names,
)
from repro.simulation.runner import ParallelRunner, ScenarioRunResult, SweepReport

#: Exit code of ``results compare`` when a metric regressed (distinct from
#: 1 = error and 2 = usage so CI can tell "regression" from "broken run").
EXIT_REGRESSION = 3


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run market-economy scenarios from the catalog.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list every catalog scenario")
    list_cmd.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    list_cmd.add_argument("--tag", help="only scenarios carrying this tag")

    run_cmd = sub.add_parser("run", help="run one scenario end to end")
    run_cmd.add_argument("scenario", help="catalog scenario name (see `list`)")
    run_cmd.add_argument("--replicates", type=int, default=1, metavar="N",
                         help="run N replicate seeds (seed, seed+1, ...) in parallel")
    _add_run_options(run_cmd)

    t_cmd = sub.add_parser(
        "tournament",
        help="evolve a bidder population across generations of a scenario")
    t_cmd.add_argument("name", nargs="?", default=None,
                       help="tournament preset name (omit or --list to see them)")
    t_cmd.add_argument("--list", action="store_true", dest="list_tournaments",
                       help="list the registered tournament presets")
    t_cmd.add_argument("--generations", type=int, default=None, metavar="N",
                       help="override the preset's generation count")
    t_cmd.add_argument("--replicates", type=int, default=None, metavar="N",
                       help="override the replicate seeds evaluated per generation")
    t_cmd.add_argument("--population", type=int, default=None, metavar="N",
                       help="override the population size (default: base scenario's teams)")
    _add_run_options(t_cmd)

    sweep_cmd = sub.add_parser("sweep", help="run a batch of scenarios in parallel")
    sweep_cmd.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                           help="scenarios to run (default: all non-stress scenarios)")
    sweep_cmd.add_argument("--all", action="store_true",
                           help="include stress-tagged scenarios too")
    _add_run_options(sweep_cmd)

    worker_cmd = sub.add_parser(
        "worker", help="serve jobs for a remote-backend coordinator")
    worker_cmd.add_argument("--connect", required=True, metavar="HOST:PORT",
                            help="coordinator address (the sweep's --bind)")
    worker_cmd.add_argument("--id", default=None, metavar="ID",
                            help="worker id (default: <hostname>-<pid>); the "
                                 "coordinator refuses duplicates")
    worker_cmd.add_argument("--capacity", type=int, default=1, metavar="N",
                            help="jobs the coordinator may keep in flight here (default 1)")
    worker_cmd.add_argument("--retry", type=float, default=10.0, metavar="SECONDS",
                            help="keep redialling a not-yet-listening coordinator "
                                 "this long (default 10)")
    worker_cmd.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                            help="seconds between heartbeats (default 1)")
    worker_cmd.add_argument("--daemon", action="store_true",
                            help="survive across sweeps: redial after each one until "
                                 "a `workers drain` retires this worker")
    worker_cmd.add_argument("--secret", default=None, metavar="SECRET",
                            help="shared secret for the coordinator handshake "
                                 "(default: $REPRO_SECRET)")

    workers_cmd = sub.add_parser(
        "workers", help="manage a live coordinator's worker fleet")
    workers_sub = workers_cmd.add_subparsers(dest="workers_command", required=True)
    w_list = workers_sub.add_parser("list", help="per-worker status and queue depths")
    w_list.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    w_drain = workers_sub.add_parser(
        "drain", help="finish in-flight jobs, then retire every worker")
    w_drain.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="bound how long the coordinator waits on stuck jobs")
    w_scale = workers_sub.add_parser(
        "scale", help="shrink the fleet to N workers (queued jobs are never lost)")
    w_scale.add_argument("count", type=int, help="target fleet size")
    for w_sub in (w_list, w_drain, w_scale):
        w_sub.add_argument("--connect", required=True, metavar="HOST:PORT",
                           help="coordinator address (the sweep's --bind)")
        w_sub.add_argument("--secret", default=None, metavar="SECRET",
                           help="shared secret for the coordinator handshake "
                                "(default: $REPRO_SECRET)")

    cmp_mech = sub.add_parser(
        "compare-mechanisms",
        help="compare one scenario's stored replicates across allocation mechanisms")
    cmp_mech.add_argument("scenario", help="stored scenario name")
    _add_store_options(cmp_mech)
    cmp_mech.add_argument("--mechanisms", default=None, metavar="M1,M2,...",
                          help="mechanisms to compare (default: every one stored)")
    cmp_mech.add_argument("--code-version", default=None, metavar="V",
                          help="which recorded code version (default: the latest)")
    cmp_mech.add_argument("--engine", default=None, help="restrict to one demand engine")
    cmp_mech.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    results_cmd = sub.add_parser("results", help="inspect the persistent result store")
    results_sub = results_cmd.add_subparsers(dest="results_command", required=True)

    r_list = results_sub.add_parser("list", help="what the store holds, per scenario/version")
    _add_store_options(r_list)
    r_list.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    r_show = results_sub.add_parser("show", help="mean/stddev/95%% CI per metric")
    r_show.add_argument("scenario", help="stored scenario name")
    _add_store_options(r_show)
    r_show.add_argument("--code-version", default=None, metavar="V",
                        help="which recorded code version (default: the latest)")
    r_show.add_argument("--engine", default=None, help="restrict to one demand engine")
    r_show.add_argument("--mechanism", default=None,
                        help="restrict to one allocation mechanism")
    r_show.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    r_cmp = results_sub.add_parser(
        "compare", help="diff two code versions; exit 3 on metric regressions")
    r_cmp.add_argument("scenario", help="stored scenario name")
    _add_store_options(r_cmp)
    r_cmp.add_argument("--across", choices=("versions", "mechanisms"), default="versions",
                       help="compare code versions (default) or allocation mechanisms")
    r_cmp.add_argument("--baseline", default=None, metavar="V",
                       help="baseline code version (default: second-newest recorded)")
    r_cmp.add_argument("--candidate", default=None, metavar="V",
                       help="candidate code version (default: newest recorded)")
    r_cmp.add_argument("--baseline-db", type=Path, default=None, metavar="FILE",
                       help="read the baseline side from this store file instead "
                            "(cross-PR CI gate; default baseline: its newest version)")
    r_cmp.add_argument("--tolerance", type=float, default=None, metavar="FRAC",
                       help="relative change a metric may move before it flags (default 0.05)")
    r_cmp.add_argument("--engine", default=None, help="restrict to one demand engine")
    r_cmp.add_argument("--mechanism", default=None,
                       help="versions mode: restrict to one allocation mechanism; "
                            "mechanisms mode: comma list of mechanisms to compare "
                            "(default: every one stored)")
    r_cmp.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    return parser


def _add_run_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--workers", type=int, default=None, metavar="N",
                     help="process backend: pool size (default: one per core; 1 = serial); "
                          "remote backend: workers to wait for before dispatching")
    cmd.add_argument("--backend", default=None, metavar="NAME",
                     help="execution backend: serial, process (default), remote, "
                          "or 'list' to show every registered backend")
    cmd.add_argument("--bind", default=None, metavar="HOST:PORT",
                     help="remote backend only: coordinator listen address "
                          "(default 127.0.0.1:7077; port 0 picks one)")
    cmd.add_argument("--secret", default=None, metavar="SECRET",
                     help="remote backend only: require workers to know this shared "
                          "secret (default: $REPRO_SECRET)")
    cmd.add_argument("--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
                     help="remote backend only: declare a silent worker lost after "
                          "this long (default 10)")
    cmd.add_argument("--retry-budget", type=int, default=None, metavar="N",
                     help="remote backend only: worker-loss requeues allowed per job "
                          "before the sweep aborts (default 5)")
    cmd.add_argument("--persist", action="store_true",
                     help="remote backend only: keep the coordinator and its fleet "
                          "alive after the report, serving `workers` control "
                          "commands, until a `workers drain` retires it")
    cmd.add_argument("--auctions", type=int, default=None, metavar="N",
                     help="override the scenario's auction count")
    cmd.add_argument("--seed", type=int, default=None, help="override the scenario's seed")
    cmd.add_argument("--engine", choices=("auto", "scalar", "batch", "incremental", "sharded"),
                     default=None, help="override the demand-collection engine")
    cmd.add_argument("--mechanism", default=None, metavar="M",
                     help="allocation mechanism(s): a name, a comma list, or 'all' "
                          "(default: each scenario's own, normally 'market'); "
                          "multiple names cross the scenario selection")
    cmd.add_argument("--json", action="store_true",
                     help="emit the canonical JSON report on stdout")
    cmd.add_argument("--out", type=Path, default=None, metavar="FILE",
                     help="also write the canonical JSON report to FILE")
    _add_store_options(cmd)
    cmd.add_argument("--no-store", action="store_true",
                     help="do not persist results into the store")
    cmd.add_argument("--code-version", default=None, metavar="V",
                     help="record under this code version (default: derived from the tree)")


def _add_store_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--db", type=Path, default=None, metavar="FILE",
                     help="result store path (default: $REPRO_RESULTS_DB or ./repro_results.sqlite)")


class _UsageError(Exception):
    """Bad command-line input (unknown scenario, conflicting flags): exit 2."""


def _get_spec(name: str):
    """Scenario lookup with the unknown-name KeyError narrowed to usage errors,
    so KeyErrors from inside a running economy surface as real tracebacks."""
    try:
        return get_scenario(name)
    except KeyError as error:
        raise _UsageError(error.args[0]) from None


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "tournament":
            return _cmd_tournament(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "workers":
            return _cmd_workers(args)
        if args.command == "compare-mechanisms":
            return _cmd_compare_mechanisms(args)
        return _cmd_results(args)
    except _UsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ValueError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout's reader went away (`repro results show ... | head`); exit
        # quietly instead of tracebacking.  Re-point stdout at devnull so the
        # interpreter's shutdown flush cannot raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


# -- list ---------------------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    summaries = [_get_spec(name).summary() for name in scenario_names()]
    if args.tag:
        summaries = [s for s in summaries if args.tag in s["tags"]]
    if args.json:
        import json

        print(json.dumps(summaries, indent=2, sort_keys=True))
        return 0
    header = f"{'scenario':<22} {'clusters':>8} {'teams':>6} {'auctions':>8} {'engine':>7}  description"
    print(header)
    print("-" * len(header))
    for s in summaries:
        tags = f"  [{', '.join(s['tags'])}]" if s["tags"] else ""
        print(
            f"{s['name']:<22} {s['clusters']:>8} {s['teams']:>6} {s['auctions']:>8} "
            f"{s['engine']:>7}  {s['description']}{tags}"
        )
    return 0


# -- run / sweep --------------------------------------------------------------------------


def _overrides(args: argparse.Namespace) -> dict[str, object]:
    overrides = {}
    if args.auctions is not None:
        overrides["auctions"] = args.auctions
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.engine is not None:
        overrides["engine"] = args.engine
    return overrides


def _print_backend_list() -> int:
    """What ``--backend list`` shows: every registered execution backend."""
    from repro.exec import backend_summaries

    header = f"{'backend':<10} description"
    print(header)
    print("-" * len(header))
    for row in backend_summaries():
        print(f"{row['name']:<10} {row['description']}")
    return 0


def _backend_for(args: argparse.Namespace):
    """The execution backend a run/sweep uses: a registry name or an instance.

    ``None`` (no ``--backend``) keeps the runner's default (the process
    pool).  The remote backend is the only one needing configuration beyond
    ``--workers``, so it is built here; ``--bind`` with any other backend is
    a usage error rather than a silently dead flag.
    """
    from repro.exec import DEFAULT_BIND, RemoteBackend, backend_names, parse_hostport
    from repro.exec.coordinator import DEFAULT_HEARTBEAT_TIMEOUT
    from repro.exec.queue import DEFAULT_RETRY_BUDGET

    if args.backend == "remote":
        bind = args.bind or DEFAULT_BIND
        try:
            parse_hostport(bind)
        except ValueError as error:
            raise _UsageError(str(error)) from None
        if args.heartbeat_timeout is not None and args.heartbeat_timeout <= 0:
            raise _UsageError("--heartbeat-timeout must be positive seconds")
        if args.retry_budget is not None and args.retry_budget < 0:
            raise _UsageError("--retry-budget must be >= 0")
        return RemoteBackend(
            bind=bind,
            workers=args.workers,
            secret=_secret(args),
            heartbeat_timeout=(
                DEFAULT_HEARTBEAT_TIMEOUT
                if args.heartbeat_timeout is None
                else args.heartbeat_timeout
            ),
            retry_budget=(
                DEFAULT_RETRY_BUDGET if args.retry_budget is None else args.retry_budget
            ),
            persistent=args.persist,
        )
    for flag, value in (
        ("--bind", args.bind),
        ("--secret", args.secret),
        ("--heartbeat-timeout", args.heartbeat_timeout),
        ("--retry-budget", args.retry_budget),
        ("--persist", args.persist or None),
    ):
        if value is not None:
            raise _UsageError(f"{flag} only applies to --backend remote")
    if args.backend is None:
        return None
    if args.backend not in backend_names():
        known = ", ".join(backend_names())
        raise _UsageError(f"unknown backend {args.backend!r}; available: {known} (or 'list')")
    return args.backend


def _secret(args: argparse.Namespace) -> str | None:
    """The shared secret: the explicit flag, else the ambient $REPRO_SECRET."""
    if args.secret is not None:
        return args.secret
    return os.environ.get("REPRO_SECRET") or None


def _mechanisms(args: argparse.Namespace) -> list[str] | None:
    """The validated mechanism names of ``--mechanism``, or None when unset."""
    if args.mechanism is None:
        return None
    from repro.mechanisms import resolve_mechanisms

    try:
        return resolve_mechanisms(args.mechanism)
    except (KeyError, ValueError) as error:
        raise _UsageError(error.args[0]) from None


def _progress(result: ScenarioRunResult) -> None:
    label = f" [{result.mechanism}]" if result.mechanism != "market" else ""
    print(
        f"  done: {result.scenario}{label} (seed {result.seed}) — "
        f"{result.auctions} auctions, {result.trade_count} trades, "
        f"median premium {result.median_premium[0]:.3f} -> {result.median_premium[-1]:.3f}",
        file=sys.stderr,
    )


def _emit(report: SweepReport, args: argparse.Namespace, elapsed: float, workers: int | None) -> None:
    payload = report.to_json()
    if args.out is not None:
        args.out.write_text(payload)
        print(f"report written to {args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(payload)
    else:
        _print_text_report(report)
    label = "serial" if (workers or 0) == 1 else f"workers={workers or 'auto'}"
    print(f"finished in {elapsed:.2f}s ({label})", file=sys.stderr)


def _print_text_report(report: SweepReport) -> None:
    header = (
        f"{'scenario':<22} {'mechanism':<12} {'teams':>6} {'pools':>6} {'auctions':>8} "
        f"{'rounds':>7} {'trades':>7} {'premium first->last':>20} {'util spread':>12}"
    )
    print(header)
    print("-" * len(header))
    for r in report.results:
        rounds = sum(r.clearing_rounds)
        premium = f"{r.median_premium[0]:.3f} -> {r.median_premium[-1]:.3f}"
        spread = f"{r.utilization_spread_change:+.3f}"
        print(
            f"{r.scenario:<22} {r.mechanism:<12} {r.teams:>6} {r.pools:>6} {r.auctions:>8} "
            f"{rounds:>7} {r.trade_count:>7} {premium:>20} {spread:>12}"
        )
    aggregate = report.aggregate()
    print()
    print(
        f"{aggregate['scenario_count']} scenario(s), {aggregate['total_auctions']} auctions, "
        f"{aggregate['total_trades']} settled trades, "
        f"mean {aggregate['mean_clearing_rounds']:.1f} clock rounds per auction"
    )


def _store_for(args: argparse.Namespace):
    """The (store, code_version) a run/sweep records into, or (None, None)."""
    if args.no_store:
        return None, None
    from repro.results.store import default_code_version, open_store

    version = args.code_version or default_code_version()
    return open_store(args.db), version


def _record_note(report: SweepReport, store, version: str) -> None:
    print(
        f"{len(report.results)} run(s) recorded to {store.path} (code version {version})",
        file=sys.stderr,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.backend == "list":
        return _print_backend_list()
    if args.replicates < 1:
        raise _UsageError("--replicates must be >= 1")
    spec = _get_spec(args.scenario).with_overrides(**_overrides(args))
    mechanisms = _mechanisms(args)
    backend = _backend_for(args)
    runner = ParallelRunner(workers=args.workers, backend=backend)
    store, version = _store_for(args)
    start = time.perf_counter()
    try:
        if mechanisms is None or len(mechanisms) == 1:
            if mechanisms is not None:
                spec = spec.with_overrides(mechanism=mechanisms[0])
            # replicates=1 runs the spec under its own seed (seed + 0).
            report = runner.run_replicates(
                spec, args.replicates, on_result=_progress, store=store, code_version=version
            )
        else:
            # mechanism x replicate cross product, mechanism-major.
            specs = [
                spec.with_overrides(mechanism=mechanism, seed=spec.config.seed + i)
                for mechanism in mechanisms
                for i in range(args.replicates)
            ]
            report = runner.run_specs(
                specs, on_result=_progress, store=store, code_version=version
            )
        if store is not None:
            _record_note(report, store, version)
    finally:
        if store is not None:
            store.close()
    _emit(report, args, time.perf_counter() - start, args.workers)
    _maybe_persist(backend, args)
    return 0


# -- tournament ---------------------------------------------------------------------------


def _cmd_tournament(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.agents.tournament import GenerationReport, TournamentEngine
    from repro.simulation.catalog import get_tournament

    if args.backend == "list":
        return _print_backend_list()
    if args.list_tournaments or args.name is None:
        return _print_tournament_list()
    if args.mechanism is not None:
        raise _UsageError("--mechanism does not apply to tournaments (always the market)")
    if args.engine is not None:
        raise _UsageError("--engine does not apply to tournaments (the base scenario's engine runs)")
    try:
        config = get_tournament(args.name)
    except KeyError as error:
        raise _UsageError(error.args[0]) from None
    overrides: dict[str, object] = {}
    if args.generations is not None:
        overrides["generations"] = args.generations
    if args.replicates is not None:
        overrides["replicates"] = args.replicates
    if args.population is not None:
        overrides["population_size"] = args.population
    if args.auctions is not None:
        overrides["auctions"] = args.auctions
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        try:
            config = dc_replace(config, **overrides)
        except ValueError as error:  # re-validated by TournamentConfig
            raise _UsageError(str(error)) from None

    backend = _backend_for(args)
    runner = ParallelRunner(workers=args.workers, backend=backend)
    store, version = _store_for(args)

    def progress(report: GenerationReport) -> None:
        premiums = report.mean_premium_per_replicate
        best = report.best_genome
        print(
            f"  generation {report.generation}: mean premium "
            f"{float(sum(premiums)) / len(premiums):.4f} over {len(premiums)} replicate(s), "
            f"best genome {best.name} ({best.kind}, score {report.scores[best.name]:.4f})",
            file=sys.stderr,
        )

    start = time.perf_counter()
    try:
        report = TournamentEngine(
            config, runner=runner, store=store, code_version=version
        ).run(on_generation=progress)
        if store is not None:
            runs = sum(len(g.results) for g in report.generations)
            print(
                f"{runs} run(s) recorded to {store.path} (code version {version})",
                file=sys.stderr,
            )
    finally:
        if store is not None:
            store.close()
    payload = report.to_json()
    if args.out is not None:
        args.out.write_text(payload)
        print(f"report written to {args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(payload)
    else:
        _print_tournament_report(report)
    workers = args.workers
    label = "serial" if (workers or 0) == 1 else f"workers={workers or 'auto'}"
    print(f"finished in {time.perf_counter() - start:.2f}s ({label})", file=sys.stderr)
    _maybe_persist(backend, args)
    return 0


def _print_tournament_list() -> int:
    from repro.simulation.catalog import get_tournament, tournament_names

    header = (
        f"{'tournament':<20} {'base scenario':<18} {'gens':>5} {'reps':>5}  description"
    )
    print(header)
    print("-" * len(header))
    for name in tournament_names():
        s = get_tournament(name).summary()
        print(
            f"{s['name']:<20} {s['base_scenario']:<18} {s['generations']:>5} "
            f"{s['replicates']:>5}  {s['description']}"
        )
    return 0


def _print_tournament_report(report) -> None:
    header = f"{'generation':>10} {'mean premium':>13} {'95% CI':>22} {'best genome':<24} kind"
    print(header)
    print("-" * len(header))
    for gen, row in zip(report.generations, report.premium_trajectory()):
        ci = f"[{row.ci95[0]:.4f}, {row.ci95[1]:.4f}]" if row.ci95 else "n/a"
        best = gen.best_genome
        print(
            f"{row.generation:>10} {row.mean:>13.4f} {ci:>22} {best.name:<24} {best.kind}"
        )
    print()
    last = report.generations[-1]
    verdict = "yes" if report.premiums_fell else "no"
    print(
        f"premiums fell, 95%-CI separated, generation 0 -> "
        f"{last.generation}: {verdict}"
    )
    print("final-generation kind scores: "
          + ", ".join(f"{k} {v:+.3f}" for k, v in last.kind_mean_scores().items()))


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.backend == "list":
        return _print_backend_list()
    if args.scenarios and args.all:
        raise _UsageError("pass either explicit scenario names or --all, not both")
    names = args.scenarios or (scenario_names() if args.all else default_sweep_names())
    overrides = _overrides(args)
    specs = [_get_spec(name).with_overrides(**overrides) for name in names]
    mechanisms = _mechanisms(args)
    if mechanisms is not None:
        from repro.simulation.runner import expand_mechanisms

        specs = expand_mechanisms(specs, mechanisms)
    label = f" x {len(mechanisms)} mechanism(s)" if mechanisms and len(mechanisms) > 1 else ""
    print(
        f"sweeping {len(specs)} job(s){label}: "
        + ", ".join(sorted({s.name for s in specs})),
        file=sys.stderr,
    )
    backend = _backend_for(args)
    runner = ParallelRunner(workers=args.workers, backend=backend)
    store, version = _store_for(args)
    start = time.perf_counter()
    try:
        report = runner.run_specs(specs, on_result=_progress, store=store, code_version=version)
        if store is not None:
            _record_note(report, store, version)
    finally:
        if store is not None:
            store.close()
    _emit(report, args, time.perf_counter() - start, args.workers)
    _maybe_persist(backend, args)
    return 0


def _maybe_persist(backend, args: argparse.Namespace) -> None:
    """``--persist``: keep serving the fleet until a drain retires it."""
    if not getattr(args, "persist", False) or backend is None:
        return
    print(
        f"fleet persisted on {backend.address}; inspect with "
        f"`python -m repro workers list --connect {backend.address}`, "
        f"retire with `python -m repro workers drain --connect {backend.address}`",
        file=sys.stderr,
    )
    try:
        backend.wait_drained()
    except KeyboardInterrupt:
        print("interrupted; releasing the fleet (workers survive)", file=sys.stderr)
    backend.close()


# -- worker -------------------------------------------------------------------------------


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.exec import WorkerError, parse_hostport, run_worker
    from repro.exec.worker import DEFAULT_HEARTBEAT_INTERVAL

    if args.capacity < 1:
        raise _UsageError("--capacity must be >= 1")
    if args.heartbeat is not None and args.heartbeat <= 0:
        raise _UsageError("--heartbeat must be positive seconds")
    try:
        parse_hostport(args.connect)
    except ValueError as error:
        raise _UsageError(str(error)) from None
    try:
        run_worker(
            args.connect,
            worker_id=args.id,
            capacity=args.capacity,
            retry_seconds=args.retry,
            heartbeat_interval=(
                DEFAULT_HEARTBEAT_INTERVAL if args.heartbeat is None else args.heartbeat
            ),
            secret=_secret(args),
            daemon=args.daemon,
            log=lambda message: print(message, file=sys.stderr),
        )
    except WorkerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


# -- workers (control plane) --------------------------------------------------------------


def _cmd_workers(args: argparse.Namespace) -> int:
    from repro.exec import ControlClient, ControlError, parse_hostport

    try:
        parse_hostport(args.connect)
    except ValueError as error:
        raise _UsageError(str(error)) from None
    try:
        with ControlClient(args.connect, secret=_secret(args)) as fleet:
            if args.workers_command == "list":
                return _print_fleet(fleet.list(), as_json=args.json)
            if args.workers_command == "drain":
                reply = fleet.drain(timeout=args.timeout)
                print(f"fleet drained: {reply['workers']} worker(s) retired")
                return 0
            reply = fleet.scale(args.count)
            print(
                f"fleet at {reply['alive']} worker(s) "
                f"({reply['stopped']} retired)"
            )
            if reply["needed"]:
                print(
                    f"start {reply['needed']} more with "
                    f"`python -m repro worker --connect {args.connect} --daemon`"
                )
            return 0
    except ControlError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _print_fleet(fleet: dict, *, as_json: bool) -> int:
    if as_json:
        import json

        print(json.dumps(fleet, indent=2, sort_keys=True))
        return 0
    workers = fleet.get("workers", [])
    state = "sweeping" if fleet.get("sweeping") else "idle"
    if fleet.get("draining"):
        state += ", draining"
    print(f"coordinator {fleet.get('address')}: {len(workers)} worker(s), {state}")
    if workers:
        header = (
            f"{'worker':<28} {'mode':<7} {'cap':>4} {'busy':>5} {'done':>5} "
            f"{'status':<7} {'connected':>10}"
        )
        print(header)
        print("-" * len(header))
        for row in workers:
            mode = "daemon" if row.get("daemon") else "once"
            if row.get("draining"):
                mode += "*"
            print(
                f"{row['worker']:<28} {mode:<7} {row['capacity']:>4} "
                f"{row['in_flight']:>5} {row['jobs_done']:>5} {row['status']:<7} "
                f"{row['connected_seconds']:>9.0f}s"
            )
    queue = fleet.get("queue")
    if queue:
        print(
            "queue: "
            + ", ".join(f"{state} {count}" for state, count in sorted(queue.items()))
        )
    return 0


# -- compare-mechanisms -------------------------------------------------------------------


def _cmd_compare_mechanisms(args: argparse.Namespace) -> int:
    from repro.results.store import open_store

    with open_store(args.db) as store:
        return _render_mechanism_comparison(
            store,
            scenario=args.scenario,
            mechanisms=getattr(args, "mechanisms", None),
            code_version=getattr(args, "code_version", None),
            engine=args.engine,
            as_json=args.json,
        )


def _render_mechanism_comparison(
    store, *, scenario, mechanisms, code_version, engine, as_json
) -> int:
    from repro.analysis.reports import render_mechanism_comparison
    from repro.results.stats import compare_mechanisms

    names = None
    if mechanisms:
        names = [part.strip() for part in mechanisms.split(",") if part.strip()]
    try:
        report = compare_mechanisms(
            store, scenario, mechanisms=names, code_version=code_version, engine=engine
        )
    except ValueError as error:
        raise _UsageError(str(error)) from None
    if as_json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_mechanism_comparison(report))
    return 0


# -- results ------------------------------------------------------------------------------


def _cmd_results(args: argparse.Namespace) -> int:
    from repro.results.store import open_store

    with open_store(args.db) as store:
        if args.results_command == "list":
            return _cmd_results_list(args, store)
        if args.results_command == "show":
            return _cmd_results_show(args, store)
        return _cmd_results_compare(args, store)


def _cmd_results_list(args: argparse.Namespace, store) -> int:
    summary = store.summary()
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not summary:
        print(f"result store {store.path} is empty")
        return 0
    header = (
        f"{'scenario':<22} {'code version':<18} {'engine':>7} {'mechanism':<13} "
        f"{'replicates':>10} {'seeds':>12}  recorded at"
    )
    print(header)
    print("-" * len(header))
    for row in summary:
        print(
            f"{row['scenario']:<22} {row['code_version']:<18} {row['engine']:>7} "
            f"{row['mechanism']:<13} {row['replicates']:>10} {row['seeds']:>12}  "
            f"{row['recorded_at']}"
        )
    return 0


def _cmd_results_show(args: argparse.Namespace, store) -> int:
    from repro.analysis.reports import render_replicate_stats
    from repro.results.stats import scenario_stats

    version = args.code_version or store.latest_code_version(scenario=args.scenario)
    if version is None:
        raise _UsageError(f"no stored runs for scenario {args.scenario!r} in {store.path}")
    try:
        stats = scenario_stats(
            store,
            args.scenario,
            code_version=version,
            engine=args.engine,
            mechanism=args.mechanism,
        )
    except ValueError as error:  # e.g. runs span several engines/mechanisms
        raise _UsageError(str(error)) from None
    if not stats:
        raise _UsageError(
            f"no stored runs for scenario {args.scenario!r} under code version {version!r}"
        )
    count = max(s.count for s in stats.values())
    mech_label = f" [{args.mechanism}]" if args.mechanism else ""
    if args.json:
        import json

        payload = {
            "scenario": args.scenario,
            "code_version": version,
            "mechanism": args.mechanism,
            "replicates": count,
            "metrics": {name: s.to_dict() for name, s in stats.items()},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        render_replicate_stats(
            stats,
            title=f"{args.scenario}{mech_label} @ {version} ({count} replicate(s))",
        )
    )
    return 0


def _cmd_results_compare(args: argparse.Namespace, store) -> int:
    from repro.analysis.reports import render_metric_comparisons
    from repro.results.stats import compare_versions

    if args.across == "mechanisms":
        # Statistical market-vs-baseline comparison within one code version;
        # informational, so no regression exit code.  Gate-style flags are
        # version-mode only: silently dropping them would turn a CI gate
        # invocation into an unconditional green.
        dropped = [
            flag
            for flag, value in (
                ("--baseline", args.baseline),
                ("--candidate", args.candidate),
                ("--baseline-db", args.baseline_db),
                ("--tolerance", args.tolerance),
            )
            if value is not None
        ]
        if dropped:
            raise _UsageError(
                f"{', '.join(dropped)} only apply to --across versions; "
                "a mechanism comparison has no baseline/candidate or regression gate"
            )
        return _render_mechanism_comparison(
            store,
            scenario=args.scenario,
            mechanisms=args.mechanism,
            code_version=None,
            engine=args.engine,
            as_json=args.json,
        )

    baseline_store = None
    if args.baseline_db is not None:
        from repro.results.store import open_store

        if not args.baseline_db.exists():
            raise _UsageError(f"baseline store {args.baseline_db} does not exist")
        baseline_store = open_store(args.baseline_db)

    baseline, candidate = args.baseline, args.candidate
    try:
        if candidate is None:
            versions = store.code_versions(scenario=args.scenario)
            if not versions:
                raise _UsageError(f"no stored runs for scenario {args.scenario!r} in {store.path}")
            candidate = versions[-1]
        if baseline is None:
            if baseline_store is not None:
                # Cross-store gate: the baseline side is simply the other
                # store's newest recorded version of the scenario.
                baseline = baseline_store.latest_code_version(scenario=args.scenario)
                if baseline is None:
                    raise _UsageError(
                        f"baseline store {args.baseline_db} holds no runs of {args.scenario!r}"
                    )
            else:
                versions = store.code_versions(scenario=args.scenario)
                # The newest version recorded *before* the candidate, so an
                # explicit --candidate naming an older version still compares
                # forward in time instead of against a newer build.
                earlier = (
                    versions[: versions.index(candidate)]
                    if candidate in versions
                    else [v for v in versions if v != candidate]
                )
                if not earlier:
                    raise _UsageError(
                        f"scenario {args.scenario!r} has no stored code version recorded "
                        f"before {candidate!r}; pass --baseline explicitly"
                    )
                baseline = earlier[-1]
        tolerance = 0.05 if args.tolerance is None else args.tolerance
        try:
            report = compare_versions(
                store,
                args.scenario,
                baseline_version=baseline,
                candidate_version=candidate,
                tolerance=tolerance,
                engine=args.engine,
                mechanism=args.mechanism,
                baseline_store=baseline_store,
            )
        except ValueError as error:
            raise _UsageError(str(error)) from None
    finally:
        if baseline_store is not None:
            baseline_store.close()
    if not report.comparisons:
        # Nothing shared to compare must not read as a green gate.
        raise _UsageError(
            f"versions {baseline!r} and {candidate!r} share no metrics for "
            f"{args.scenario!r} (one-sided: {', '.join(report.missing_metrics) or 'none'})"
        )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_metric_comparisons(report))
    if not report.ok:
        names = ", ".join(c.metric for c in report.regressions)
        print(f"REGRESSION: {names} moved beyond tolerance "
              f"{tolerance:.2%} between {baseline} and {candidate}", file=sys.stderr)
        return EXIT_REGRESSION
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
