"""repro — a market economy for provisioning compute resources across planet-wide clusters.

Reproduction of Stokely, Winget, Keyes, Grimes, and Yolken, *"Using a Market
Economy to Provision Compute Resources Across Planet-wide Clusters"*
(IPDPS 2009).

The public API is organised in layers:

* :mod:`repro.cluster` — the planet-wide cluster substrate (resource pools,
  machines, scheduler, utilization);
* :mod:`repro.core` — the market mechanism (bundles, bids, bidder proxies, the
  ascending clock auction, congestion-weighted reserve pricing, settlement,
  and the combinatorial exchange);
* :mod:`repro.bidlang` — the TBBL-like tree bidding language;
* :mod:`repro.market` — the trading platform (accounts, service catalog, order
  book, market summary, periodic auction rounds);
* :mod:`repro.agents` — engineering-team agents with evolving bidding strategies;
* :mod:`repro.baselines` — traditional (non-market) allocation mechanisms;
* :mod:`repro.simulation` — the multi-auction economy simulation;
* :mod:`repro.analysis` — metrics (bid premium, settlement stats, utilization
  percentiles of settled trades, price ratios);
* :mod:`repro.experiments` — drivers that regenerate every table and figure in
  the paper's evaluation section.
"""

from repro.cluster import (
    ResourceType,
    ResourceVector,
    Cluster,
    FleetTopology,
    ResourcePool,
    PoolIndex,
    FleetSpec,
    generate_fleet,
)
from repro.core import (
    Bundle,
    BundleSet,
    Bid,
    BidderProxy,
    AscendingClockAuction,
    AuctionConfig,
    AuctionOutcome,
    BatchDemandEngine,
    BatchResponse,
    CombinatorialExchange,
    ExchangeResult,
    ReservePricer,
    ExponentialWeight,
    ReciprocalWeight,
    Settlement,
    settle,
    verify_system_constraints,
)

__version__ = "0.1.0"

__all__ = [
    "ResourceType",
    "ResourceVector",
    "Cluster",
    "FleetTopology",
    "ResourcePool",
    "PoolIndex",
    "FleetSpec",
    "generate_fleet",
    "Bundle",
    "BundleSet",
    "Bid",
    "BidderProxy",
    "AscendingClockAuction",
    "AuctionConfig",
    "AuctionOutcome",
    "BatchDemandEngine",
    "BatchResponse",
    "CombinatorialExchange",
    "ExchangeResult",
    "ReservePricer",
    "ExponentialWeight",
    "ReciprocalWeight",
    "Settlement",
    "settle",
    "verify_system_constraints",
    "__version__",
]
