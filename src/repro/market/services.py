"""Service catalog: translating high-level service requests into resource bundles.

The paper's bid entry is a two-step process: "users first enter requirements
in terms of desired cluster resources (such as GFS or Bigtable resources)";
the platform then "displays the covering amount of CPU, RAM, and disk and the
current market prices for those components" before the user enters a limit
price (Figure 4).  The service catalog holds the per-unit covering vectors for
each service type and performs that translation.

The shipped :func:`default_catalog` contains synthetic-but-plausible service
shapes (a GFS-like file service, a Bigtable-like structured store, batch
compute, and a serving stack); the real coverage factors are proprietary, but
any positive covering vectors exercise the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.pools import PoolIndex
from repro.cluster.resources import ResourceType, ResourceVector, cpu_ram_disk


@dataclass(frozen=True)
class ServiceSpec:
    """One service type and the raw resources that cover one unit of it.

    ``unit`` documents what "one unit" means (e.g. 1 TiB of GFS storage, 1 QPS
    of serving capacity); ``coverage`` is the CPU/RAM/disk needed per unit,
    including the service's own replication and overhead factors.
    """

    name: str
    unit: str
    coverage: ResourceVector
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if not self.coverage.is_nonnegative() or self.coverage.is_zero():
            raise ValueError("service coverage must be non-negative and non-zero")

    def covering_amount(self, quantity: float) -> ResourceVector:
        """Raw resources covering ``quantity`` units of this service."""
        if quantity < 0:
            raise ValueError("service quantity must be non-negative")
        return self.coverage * quantity


@dataclass(frozen=True)
class ServiceRequest:
    """A team's high-level requirement: ``quantity`` units of ``service`` in ``cluster``."""

    service: str
    cluster: str
    quantity: float

    def __post_init__(self) -> None:
        if self.quantity <= 0:
            raise ValueError("service request quantity must be positive")


class ServiceCatalog:
    """The set of service types teams can request resources for."""

    def __init__(self, specs: Mapping[str, ServiceSpec] | None = None):
        self._specs: dict[str, ServiceSpec] = dict(specs or {})

    def register(self, spec: ServiceSpec) -> None:
        """Add or replace a service type."""
        self._specs[spec.name] = spec

    def spec(self, name: str) -> ServiceSpec:
        """Look up a service type."""
        try:
            return self._specs[name]
        except KeyError as exc:
            raise KeyError(f"unknown service {name!r}; known: {sorted(self._specs)}") from exc

    def names(self) -> list[str]:
        """All registered service names."""
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    # -- the two-step bid entry translation --------------------------------------------
    def covering_bundle(self, request: ServiceRequest, index: PoolIndex) -> dict[str, float]:
        """Step 1 of bid entry: the ``{pool name: quantity}`` bundle covering a request."""
        spec = self.spec(request.service)
        if request.cluster not in index.clusters():
            raise KeyError(f"unknown cluster {request.cluster!r}")
        amount = spec.covering_amount(request.quantity)
        bundle: dict[str, float] = {}
        for rtype in ResourceType:
            qty = amount.get(rtype)
            if qty > 0:
                bundle[f"{request.cluster}/{rtype.value}"] = qty
        return bundle

    def covering_cost(
        self, request: ServiceRequest, index: PoolIndex, prices: Mapping[str, float]
    ) -> float:
        """Step 2 of bid entry: the cost of the covering bundle at current market prices."""
        bundle = self.covering_bundle(request, index)
        return float(sum(qty * prices[name] for name, qty in bundle.items()))

    def alternatives_bundle(
        self, service: str, quantity: float, clusters: list[str], index: PoolIndex
    ) -> list[dict[str, float]]:
        """Covering bundles for the same request across several candidate clusters.

        This is the XOR indifference set for a team that does not care where
        the service lands ("a user may demand a certain combination of CPU,
        memory, and disk but may be indifferent with respect to the exact
        location").
        """
        return [
            self.covering_bundle(ServiceRequest(service=service, cluster=cluster, quantity=quantity), index)
            for cluster in clusters
        ]


def default_catalog() -> ServiceCatalog:
    """A catalog of four synthetic service types spanning distinct resource shapes."""
    catalog = ServiceCatalog()
    catalog.register(
        ServiceSpec(
            name="gfs_storage",
            unit="TiB stored (3x replicated)",
            coverage=cpu_ram_disk(0.3, 1.0, 3072.0),
            description="GFS-like distributed file storage; disk-heavy with light chunkserver CPU/RAM",
        )
    )
    catalog.register(
        ServiceSpec(
            name="bigtable_serving",
            unit="1k lookups/s",
            coverage=cpu_ram_disk(2.0, 12.0, 200.0),
            description="Bigtable-like structured storage serving; RAM-heavy tablet servers",
        )
    )
    catalog.register(
        ServiceSpec(
            name="batch_compute",
            unit="worker slot",
            coverage=cpu_ram_disk(1.0, 3.0, 20.0),
            description="MapReduce-style batch compute slots; CPU-dominant",
        )
    )
    catalog.register(
        ServiceSpec(
            name="web_serving",
            unit="100 QPS",
            coverage=cpu_ram_disk(4.0, 8.0, 10.0),
            description="Frontend serving capacity; CPU and RAM with negligible disk",
        )
    )
    return catalog
