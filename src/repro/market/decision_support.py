"""Operator decision support: turning price signals into capacity actions.

Section III-A of the paper: a significant price increase "indicates to the
system operator that there may be a shortage in the corresponding pool; the
operator should address this shortage by increasing the supply of resources
appropriately."  Section IV frames the reserve prices as "the basis of a
decision support framework in the market economy that allows the operator to
steer the system towards particular, desired outcomes."

This module implements that layer: given one or more auction results it
recommends, per pool, whether to grow capacity (persistent price premium over
cost), reclaim capacity (persistently idle and priced below cost), or leave it
alone, together with a suggested sizing derived from the unmet demand the
clock observed before clearing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.exchange import ExchangeResult


class CapacityAction(str, enum.Enum):
    """What the operator should do with one resource pool."""

    GROW = "grow"
    RECLAIM = "reclaim"
    HOLD = "hold"


@dataclass(frozen=True)
class CapacityRecommendation:
    """One pool's recommendation."""

    pool: str
    action: CapacityAction
    #: Mean settled-price / unit-cost ratio across the analysed auctions.
    price_to_cost: float
    #: Current utilization fraction of the pool.
    utilization: float
    #: Suggested capacity change in resource units (positive = add, negative = reclaim).
    suggested_delta: float
    reason: str


@dataclass(frozen=True)
class DecisionSupportConfig:
    """Thresholds for the recommendation rules.

    A pool is recommended for growth when its settled price exceeds
    ``grow_price_ratio`` times its unit cost *and* its utilization exceeds
    ``grow_utilization``; it is recommended for reclamation when the price
    stays below ``reclaim_price_ratio`` times cost and utilization is below
    ``reclaim_utilization``.  ``growth_headroom`` sizes additions relative to
    the peak excess demand the clock had to price away.
    """

    grow_price_ratio: float = 1.5
    grow_utilization: float = 0.75
    reclaim_price_ratio: float = 0.8
    reclaim_utilization: float = 0.35
    growth_headroom: float = 1.2
    reclaim_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.grow_price_ratio <= self.reclaim_price_ratio:
            raise ValueError("grow_price_ratio must exceed reclaim_price_ratio")
        if not (0.0 <= self.reclaim_utilization <= self.grow_utilization <= 1.0):
            raise ValueError("utilization thresholds must satisfy 0 <= reclaim <= grow <= 1")
        if self.growth_headroom < 1.0:
            raise ValueError("growth_headroom must be >= 1")
        if not (0.0 < self.reclaim_fraction <= 1.0):
            raise ValueError("reclaim_fraction must lie in (0, 1]")


def _peak_excess_demand(results: Sequence[ExchangeResult], index: PoolIndex) -> np.ndarray:
    """Component-wise maximum positive excess demand observed in any clock round."""
    peak = np.zeros(len(index), dtype=float)
    for result in results:
        for auction_round in result.outcome.rounds:
            peak = np.maximum(peak, np.clip(auction_round.excess_demand, 0.0, None))
    return peak


def recommend_capacity_actions(
    results: Sequence[ExchangeResult] | ExchangeResult,
    *,
    config: DecisionSupportConfig | None = None,
) -> list[CapacityRecommendation]:
    """Recommend per-pool capacity actions from one or more auction results.

    All results must share the same pool index (the same market).  Price
    ratios are averaged across the given auctions so one noisy auction does
    not trigger a build-out.
    """
    if isinstance(results, ExchangeResult):
        results = [results]
    if not results:
        raise ValueError("at least one auction result is required")
    index = results[0].index
    for result in results:
        if result.index.names != index.names:
            raise ValueError("all results must be defined over the same pool index")

    costs = np.maximum(index.unit_costs(), 1e-12)
    ratio_sum = np.zeros(len(index), dtype=float)
    for result in results:
        ratio_sum += result.outcome.final_prices / costs
    mean_ratio = ratio_sum / len(results)
    peak_excess = _peak_excess_demand(results, index)
    config = config or DecisionSupportConfig()

    recommendations: list[CapacityRecommendation] = []
    for i, pool in enumerate(index):
        ratio = float(mean_ratio[i])
        utilization = pool.utilization
        if ratio >= config.grow_price_ratio and utilization >= config.grow_utilization:
            delta = float(max(peak_excess[i], 0.0) * config.growth_headroom)
            if delta <= 0.0:
                # price signal without recorded excess demand: size off the unused slack
                delta = pool.capacity * 0.05
            recommendations.append(
                CapacityRecommendation(
                    pool=pool.name,
                    action=CapacityAction.GROW,
                    price_to_cost=ratio,
                    utilization=utilization,
                    suggested_delta=delta,
                    reason=(
                        f"settled at {ratio:.2f}x cost with {utilization:.0%} utilization; "
                        f"peak unmet demand {peak_excess[i]:.1f} units"
                    ),
                )
            )
        elif ratio <= config.reclaim_price_ratio and utilization <= config.reclaim_utilization:
            recommendations.append(
                CapacityRecommendation(
                    pool=pool.name,
                    action=CapacityAction.RECLAIM,
                    price_to_cost=ratio,
                    utilization=utilization,
                    suggested_delta=-float(pool.available * config.reclaim_fraction),
                    reason=(
                        f"settled at {ratio:.2f}x cost with only {utilization:.0%} utilization; "
                        "capacity can be redeployed"
                    ),
                )
            )
        else:
            recommendations.append(
                CapacityRecommendation(
                    pool=pool.name,
                    action=CapacityAction.HOLD,
                    price_to_cost=ratio,
                    utilization=utilization,
                    suggested_delta=0.0,
                    reason="price and utilization within normal bands",
                )
            )
    return recommendations


def summarize_actions(recommendations: Sequence[CapacityRecommendation]) -> dict[str, int]:
    """Count of pools per recommended action (for dashboards)."""
    counts = {action.value: 0 for action in CapacityAction}
    for recommendation in recommendations:
        counts[recommendation.action.value] += 1
    return counts


def apply_recommendations(
    index: PoolIndex,
    recommendations: Sequence[CapacityRecommendation],
    *,
    only: CapacityAction | None = None,
) -> PoolIndex:
    """Return a new pool index with the recommended capacity deltas applied.

    Utilization fractions are rescaled so the *absolute* used amount is
    preserved when capacity changes (adding capacity lowers the fraction,
    reclaiming idle capacity raises it).  Useful for simulating "what would
    next auction look like if the operator followed the advice".
    """
    from repro.cluster.pools import ResourcePool

    by_pool = {recommendation.pool: recommendation for recommendation in recommendations}
    new_pools: list[ResourcePool] = []
    for pool in index:
        recommendation = by_pool.get(pool.name)
        delta = 0.0
        if recommendation is not None and (only is None or recommendation.action is only):
            delta = recommendation.suggested_delta
        new_capacity = max(pool.capacity + delta, 0.0)
        used = pool.capacity * pool.utilization
        new_utilization = 0.0 if new_capacity <= 0 else float(np.clip(used / new_capacity, 0.0, 1.0))
        new_pools.append(
            ResourcePool(
                cluster=pool.cluster,
                rtype=pool.rtype,
                capacity=new_capacity,
                unit_cost=pool.unit_cost,
                utilization=new_utilization,
            )
        )
    return PoolIndex(new_pools)
