"""The trading platform: accounts, quotas, services, order book, market summary.

This package reproduces Section V-A of the paper — the commercialization stack
around the auction mechanism.  The original was an internal web application;
here the same functionality is exposed as a programmatic API:

* budget-dollar accounts and a transaction ledger (:mod:`repro.market.accounts`);
* per-team quota holdings updated by settlements (:mod:`repro.market.quotas`);
* a service catalog translating high-level requests ("N units of a GFS-like
  storage service in cluster X") into covering CPU/RAM/disk bundles
  (:mod:`repro.market.services`), mirroring the two-step bid entry of Figure 4;
* an order book collecting bids and offers during the bid window
  (:mod:`repro.market.orderbook`);
* the market-summary report of Figure 3 (:mod:`repro.market.summary`);
* the :class:`~repro.market.platform.TradingPlatform` tying it all together and
  running the periodic clock auctions.
"""

from repro.market.accounts import Account, Ledger, InsufficientBudgetError, Transaction
from repro.market.quotas import QuotaRegistry, QuotaError
from repro.market.services import ServiceCatalog, ServiceSpec, ServiceRequest, default_catalog
from repro.market.orderbook import OrderBook, Order, OrderSide, OrderStatus
from repro.market.summary import MarketSummary, ClusterSummaryRow, render_market_summary
from repro.market.platform import TradingPlatform, AuctionRecord, BidTicket
from repro.market.decision_support import (
    CapacityAction,
    CapacityRecommendation,
    DecisionSupportConfig,
    recommend_capacity_actions,
    apply_recommendations,
    summarize_actions,
)
from repro.market.endowment import EndowmentPolicy, EndowmentPlan, plan_endowments, endowment_impact_bound

__all__ = [
    "CapacityAction",
    "CapacityRecommendation",
    "DecisionSupportConfig",
    "recommend_capacity_actions",
    "apply_recommendations",
    "summarize_actions",
    "EndowmentPolicy",
    "EndowmentPlan",
    "plan_endowments",
    "endowment_impact_bound",
    "Account",
    "Ledger",
    "InsufficientBudgetError",
    "Transaction",
    "QuotaRegistry",
    "QuotaError",
    "ServiceCatalog",
    "ServiceSpec",
    "ServiceRequest",
    "default_catalog",
    "OrderBook",
    "Order",
    "OrderSide",
    "OrderStatus",
    "MarketSummary",
    "ClusterSummaryRow",
    "render_market_summary",
    "TradingPlatform",
    "AuctionRecord",
    "BidTicket",
]
