"""Budget-endowment (disbursement) strategies.

Property 5 of the weighting functions (Section IV-A) bounds phi(100%)/phi(0%)
"to limit the impact on the initial endowment of budget dollars", and the
paper notes that the disbursement strategy itself is out of its scope.  The
market still needs one, so this module provides the three obvious policies:

* **equal split** — every team receives the same share of the budget pool;
* **usage-proportional** — teams receive budget in proportion to the
  (cost-weighted) footprint they already run, so the starting allocation can
  be repurchased at cost;
* **usage-at-reserve** — like usage-proportional but valued at the
  congestion-weighted reserve prices, so teams sitting in congested clusters
  receive enough budget to either stay (pay the premium) or fund their move.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.reserve import PAPER_PHI_1, ReservePricer


class EndowmentPolicy(str, enum.Enum):
    """Supported budget-disbursement policies."""

    EQUAL = "equal"
    USAGE_PROPORTIONAL = "usage_proportional"
    USAGE_AT_RESERVE = "usage_at_reserve"


@dataclass(frozen=True)
class EndowmentPlan:
    """The computed per-team budget endowments."""

    policy: EndowmentPolicy
    total_budget: float
    shares: dict[str, float]

    def share_of(self, team: str) -> float:
        """Budget dollars endowed to one team (0.0 for unknown teams)."""
        return self.shares.get(team, 0.0)

    def as_fractions(self) -> dict[str, float]:
        """Each team's share as a fraction of the total budget."""
        if self.total_budget <= 0:
            return {team: 0.0 for team in self.shares}
        return {team: value / self.total_budget for team, value in self.shares.items()}


def _usage_value(
    index: PoolIndex,
    usage: Mapping[str, Mapping[str, float]],
    prices: np.ndarray,
) -> dict[str, float]:
    values: dict[str, float] = {}
    for team, amounts in usage.items():
        vec = index.vector(dict(amounts))
        values[team] = float(np.clip(vec, 0.0, None) @ prices)
    return values


def plan_endowments(
    index: PoolIndex,
    teams: Mapping[str, Mapping[str, float]] | list[str],
    total_budget: float,
    *,
    policy: EndowmentPolicy = EndowmentPolicy.EQUAL,
    reserve_pricer: ReservePricer | None = None,
) -> EndowmentPlan:
    """Compute per-team endowments under the chosen policy.

    ``teams`` is either a plain list of team names (sufficient for the equal
    policy) or a mapping team -> {pool name: current usage} (required for the
    usage-based policies).  ``total_budget`` is the size of the budget pool to
    disburse.
    """
    if total_budget < 0:
        raise ValueError("total_budget must be non-negative")
    if isinstance(teams, list):
        names = list(teams)
        usage: Mapping[str, Mapping[str, float]] = {name: {} for name in names}
    else:
        usage = teams
        names = list(teams)
    if not names:
        raise ValueError("at least one team is required")

    if policy is EndowmentPolicy.EQUAL:
        share = total_budget / len(names)
        return EndowmentPlan(policy=policy, total_budget=total_budget, shares={n: share for n in names})

    if policy is EndowmentPolicy.USAGE_PROPORTIONAL:
        prices = index.unit_costs()
    elif policy is EndowmentPolicy.USAGE_AT_RESERVE:
        pricer = reserve_pricer or ReservePricer(weighting=PAPER_PHI_1)
        prices = pricer.reserve_prices(index)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown policy {policy}")

    values = _usage_value(index, usage, prices)
    total_value = sum(values.values())
    if total_value <= 0:
        # nobody uses anything yet: fall back to an equal split
        share = total_budget / len(names)
        return EndowmentPlan(policy=policy, total_budget=total_budget, shares={n: share for n in names})
    shares = {team: total_budget * value / total_value for team, value in values.items()}
    return EndowmentPlan(policy=policy, total_budget=total_budget, shares=shares)


def endowment_impact_bound(index: PoolIndex, pricer: ReservePricer) -> float:
    """The phi(1)/phi(0)-style bound on how much congestion weighting skews endowments.

    Property 5 exists so that pricing congested pools up does not hand teams in
    congested clusters an unbounded share of a usage-at-reserve disbursement.
    This returns the ratio of the largest to the smallest reserve-price
    multiplier across pools — the realized version of that bound for the
    current fleet state.
    """
    multipliers = pricer.multipliers(index)
    smallest = float(np.min(multipliers))
    if smallest <= 0:
        return float("inf")
    return float(np.max(multipliers) / smallest)
