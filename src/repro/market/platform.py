"""The trading platform: bid windows, two-step bid entry, periodic auctions.

This is the programmatic equivalent of the paper's internal web application
(Section V-A).  A platform instance owns:

* the current :class:`~repro.cluster.pools.PoolIndex` (capacities, costs,
  utilizations — refreshed by the operator between auctions);
* the budget-dollar :class:`~repro.market.accounts.Ledger`;
* the :class:`~repro.market.quotas.QuotaRegistry` of team holdings;
* the :class:`~repro.market.services.ServiceCatalog` used for two-step bid entry;
* an :class:`~repro.market.orderbook.OrderBook` per bid window;
* the :class:`~repro.core.exchange.CombinatorialExchange` configuration used to
  run preliminary and binding clock auctions.

Typical flow for one auction event::

    platform.open_bid_window()
    ticket = platform.quote(team, ServiceRequest("gfs_storage", "cluster-03", 50))
    platform.submit_quoted_bid(ticket, max_payment=1.2 * ticket.estimated_cost)
    platform.run_preliminary()          # repeated during the window
    record = platform.finalize_auction()  # binding prices + allocations
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.bidlang.ast import BidNode
from repro.bidlang.flatten import to_bundle_set
from repro.bidlang.validate import require_valid
from repro.cluster.pools import PoolIndex
from repro.core.bids import Bid
from repro.core.bundles import BundleSet
from repro.core.clock_auction import AuctionConfig
from repro.core.exchange import CombinatorialExchange, ExchangeResult
from repro.core.increment import IncrementPolicy
from repro.core.prices import PriceTable
from repro.core.reserve import ReservePricer, WeightingFunction
from repro.market.accounts import Ledger
from repro.market.orderbook import Order, OrderBook
from repro.market.quotas import QuotaRegistry
from repro.market.services import ServiceCatalog, ServiceRequest, default_catalog
from repro.market.summary import MarketSummary, build_market_summary


class BidWindowError(RuntimeError):
    """An operation was attempted outside an open bid window."""


@dataclass(frozen=True)
class BidTicket:
    """Step-1/step-2 output of the two-step bid entry (Figure 4).

    Produced by :meth:`TradingPlatform.quote`: the covering resource bundles
    for a service request (one per candidate cluster), the current market
    prices of those components, and the estimated cost of the cheapest
    alternative.  The team completes the bid by choosing a limit price.
    """

    team: str
    bundles: tuple[dict[str, float], ...]
    component_prices: dict[str, float]
    estimated_cost: float
    service: str | None = None

    def bundle_costs(self) -> list[float]:
        """Cost of each alternative bundle at the quoted component prices."""
        return [
            float(sum(qty * self.component_prices[name] for name, qty in bundle.items()))
            for bundle in self.bundles
        ]


@dataclass
class AuctionRecord:
    """The archived result of one binding auction run."""

    auction_id: int
    result: ExchangeResult
    order_count: int
    #: Prices displayed on the front end before this auction ran (for deltas).
    prior_prices: dict[str, float]

    @property
    def prices(self) -> dict[str, float]:
        return self.result.final_prices.as_map()

    @property
    def settled_fraction(self) -> float:
        return self.result.settlement.settled_fraction()

    @property
    def rounds(self) -> int:
        """Clock rounds the binding auction took to clear."""
        return self.result.rounds


class TradingPlatform:
    """The resource-market trading platform."""

    def __init__(
        self,
        index: PoolIndex,
        *,
        catalog: ServiceCatalog | None = None,
        ledger: Ledger | None = None,
        quotas: QuotaRegistry | None = None,
        weighting: WeightingFunction | ReservePricer | None = None,
        increment: IncrementPolicy | None = None,
        auction_config: AuctionConfig | None = None,
        operator_supply_fraction: float = 1.0,
        fixed_prices: Mapping[str, float] | None = None,
    ):
        self.index = index
        self.catalog = catalog or default_catalog()
        self.ledger = ledger or Ledger()
        self.quotas = quotas or QuotaRegistry(index=index)
        self._weighting = weighting
        self._increment = increment
        self._auction_config = auction_config
        self._operator_supply_fraction = operator_supply_fraction
        #: The operator's pre-market fixed price per pool (defaults to unit costs).
        self.fixed_prices: dict[str, float] = dict(
            fixed_prices or {pool.name: pool.unit_cost for pool in index}
        )
        self.order_book = OrderBook()
        self._window_open = False
        self._auction_ids = itertools.count(1)
        self._current_auction_id: int | None = None
        self.history: list[AuctionRecord] = []
        #: Prices shown on the market summary; start at the fixed prices and
        #: are refreshed by preliminary and binding auction runs.
        self.displayed_prices: dict[str, float] = dict(self.fixed_prices)

    # -- exchange construction ----------------------------------------------------------
    def _exchange(self) -> CombinatorialExchange:
        return CombinatorialExchange(
            self.index,
            weighting=self._weighting,
            increment=self._increment,
            auction_config=self._auction_config,
            operator_supply_fraction=self._operator_supply_fraction,
        )

    # -- participants -------------------------------------------------------------------
    def register_team(self, team: str, *, budget: float = 0.0, initial_quota: Mapping[str, float] | None = None) -> None:
        """Open an account (with a budget endowment) and optional starting quota for a team."""
        if not self.ledger.has_account(team):
            self.ledger.open_account(team, endowment=budget)
        elif budget:
            self.ledger.credit(team, budget, kind="endowment")
        if initial_quota:
            self.quotas.grant(team, dict(initial_quota))

    # -- bid window lifecycle --------------------------------------------------------------
    @property
    def window_open(self) -> bool:
        """Whether a bid window is currently accepting orders."""
        return self._window_open

    def open_bid_window(self) -> int:
        """Start a new bid window; returns the auction id it will settle under."""
        if self._window_open:
            raise BidWindowError("a bid window is already open")
        self.order_book.clear()
        self._current_auction_id = next(self._auction_ids)
        self._window_open = True
        return self._current_auction_id

    def _require_window(self) -> None:
        if not self._window_open:
            raise BidWindowError("no bid window is open")

    # -- two-step bid entry ----------------------------------------------------------------
    def quote(
        self,
        team: str,
        request: ServiceRequest,
        *,
        alternative_clusters: Sequence[str] | None = None,
    ) -> BidTicket:
        """Step 1 + 2 of bid entry: covering bundles and their current prices.

        ``alternative_clusters`` lists other clusters the team would accept the
        same service in; each becomes one bundle of the XOR indifference set.
        """
        clusters = [request.cluster, *(alternative_clusters or [])]
        bundles = tuple(
            self.catalog.covering_bundle(
                ServiceRequest(service=request.service, cluster=c, quantity=request.quantity), self.index
            )
            for c in clusters
        )
        touched = sorted({name for bundle in bundles for name in bundle})
        prices = {name: self.displayed_prices[name] for name in touched}
        costs = [sum(qty * prices[name] for name, qty in bundle.items()) for bundle in bundles]
        return BidTicket(
            team=team,
            bundles=bundles,
            component_prices=prices,
            estimated_cost=float(min(costs)),
            service=request.service,
        )

    def submit_quoted_bid(self, ticket: BidTicket, *, max_payment: float, **metadata: object) -> Order:
        """Complete a quoted request by attaching a limit price and submitting it."""
        self._require_window()
        if max_payment < 0:
            raise ValueError("max_payment must be non-negative")
        bid = Bid(
            bidder=ticket.team,
            bundles=BundleSet(self.index, [self.index.vector(b) for b in ticket.bundles]),
            limit=float(max_payment),
            metadata={"service": ticket.service, **metadata},
        )
        return self.submit_bid(bid)

    # -- raw bid submission --------------------------------------------------------------------
    def submit_bid(self, bid: Bid) -> Order:
        """Submit a sealed bid, enforcing budget (buys) and quota (sells) feasibility."""
        self._require_window()
        if bid.limit > 0 and self.ledger.has_account(bid.bidder):
            balance = self.ledger.balance(bid.bidder)
            if bid.limit > balance + 1e-9:
                raise ValueError(
                    f"{bid.bidder} bid limit {bid.limit:.2f} exceeds budget {balance:.2f}"
                )
        # Sellers must hold the quota they offer.
        max_offer = bid.bundles.max_offer()
        if np.any(max_offer > 0):
            offered = {
                self.index.pools[i].name: float(max_offer[i])
                for i in np.flatnonzero(max_offer > 0)
            }
            if not self.quotas.can_offer(bid.bidder, offered):
                raise ValueError(f"{bid.bidder} offers quota it does not hold: {offered}")
        return self.order_book.submit(bid)

    def submit_tree_bid(self, bidder: str, tree: BidNode, limit: float, **metadata: object) -> Order:
        """Submit a bid expressed in the tree bidding language."""
        self._require_window()
        require_valid(tree, self.index)
        bid = Bid(
            bidder=bidder,
            bundles=to_bundle_set(tree, self.index),
            limit=float(limit),
            metadata=dict(metadata),
        )
        return self.submit_bid(bid)

    # -- auction runs -----------------------------------------------------------------------------
    def run_preliminary(self) -> PriceTable:
        """Non-binding clock-auction run; refreshes the displayed prices (Figure 5)."""
        self._require_window()
        prices = self._exchange().preliminary_prices(self.order_book.active_bids())
        self.displayed_prices = prices.as_map()
        return prices

    def finalize_auction(self) -> AuctionRecord:
        """Run the binding auction, settle budgets and quotas, and close the window."""
        self._require_window()
        prior = dict(self.displayed_prices)
        result = self._exchange().run(self.order_book.active_bids())
        assert self._current_auction_id is not None
        auction_id = self._current_auction_id

        for line in result.settlement.winners:
            if self.ledger.has_account(line.bidder):
                self.ledger.post_settlement(line.bidder, line.payment, auction_id=auction_id)
            self.quotas.apply_delta(line.bidder, line.allocation, allow_negative=True)
        self.order_book.mark_settled(line.bidder for line in result.settlement.winners)

        self.displayed_prices = result.final_prices.as_map()
        record = AuctionRecord(
            auction_id=auction_id,
            result=result,
            order_count=len(self.order_book),
            prior_prices=prior,
        )
        self.history.append(record)
        self._window_open = False
        return record

    # -- reporting ---------------------------------------------------------------------------------
    def market_summary(self) -> MarketSummary:
        """The Figure 3 summary: per-cluster activity counts and current prices."""
        return build_market_summary(
            self.index,
            self.order_book,
            self.displayed_prices,
            auction_id=self._current_auction_id,
        )

    def price_ratio_to_fixed(self) -> dict[str, float]:
        """Displayed price / former fixed price per pool (Figure 6 series)."""
        return {
            name: (self.displayed_prices[name] / fixed if fixed > 0 else float("inf"))
            for name, fixed in self.fixed_prices.items()
        }

    def update_pool_index(self, index: PoolIndex) -> None:
        """Swap in refreshed pool utilizations/capacities between auctions.

        The pool set must be unchanged (same names in the same order): quota
        holdings and fixed prices are keyed by pool.
        """
        if index.names != self.index.names:
            raise ValueError("updated pool index must contain the same pools in the same order")
        self.index = index
        self.quotas.index = index
