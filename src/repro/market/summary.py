"""The market-summary report (the data behind Figure 3's summary page).

The original front end greeted users with a page listing "the participating
clusters along with the number of active bids and offers in each, and the
current market prices as determined by the clock auction".  This module builds
that table from the order book and the latest price table and renders it as
plain text for CLI / log consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.pools import PoolIndex
from repro.cluster.resources import ResourceType
from repro.market.orderbook import OrderBook, OrderSide


@dataclass(frozen=True)
class ClusterSummaryRow:
    """One row of the market summary: a cluster's activity and prices."""

    cluster: str
    active_bids: int
    active_offers: int
    active_trades: int
    cpu_price: float
    ram_price: float
    disk_price: float
    cpu_utilization: float
    ram_utilization: float
    disk_utilization: float


@dataclass(frozen=True)
class MarketSummary:
    """The full market summary: one row per participating cluster."""

    rows: tuple[ClusterSummaryRow, ...]
    auction_id: int | None = None

    def row_for(self, cluster: str) -> ClusterSummaryRow:
        """The row of one cluster."""
        for row in self.rows:
            if row.cluster == cluster:
                return row
        raise KeyError(f"no summary row for cluster {cluster!r}")

    def total_active_orders(self) -> int:
        """Total number of active orders across all clusters."""
        return sum(row.active_bids + row.active_offers + row.active_trades for row in self.rows)


def build_market_summary(
    index: PoolIndex,
    order_book: OrderBook,
    prices: Mapping[str, float],
    *,
    auction_id: int | None = None,
) -> MarketSummary:
    """Assemble the summary rows from the current market state."""
    counts = order_book.counts_by_cluster()
    rows: list[ClusterSummaryRow] = []
    for cluster in index.clusters():
        cluster_counts = counts.get(
            cluster, {OrderSide.BID: 0, OrderSide.OFFER: 0, OrderSide.TRADE: 0}
        )

        def pool_of(rtype: ResourceType):
            return index.pool(f"{cluster}/{rtype.value}")

        rows.append(
            ClusterSummaryRow(
                cluster=cluster,
                active_bids=cluster_counts[OrderSide.BID],
                active_offers=cluster_counts[OrderSide.OFFER],
                active_trades=cluster_counts[OrderSide.TRADE],
                cpu_price=float(prices[f"{cluster}/cpu"]),
                ram_price=float(prices[f"{cluster}/ram"]),
                disk_price=float(prices[f"{cluster}/disk"]),
                cpu_utilization=pool_of(ResourceType.CPU).utilization,
                ram_utilization=pool_of(ResourceType.RAM).utilization,
                disk_utilization=pool_of(ResourceType.DISK).utilization,
            )
        )
    return MarketSummary(rows=tuple(rows), auction_id=auction_id)


def render_market_summary(summary: MarketSummary, *, max_rows: int | None = None) -> str:
    """Render the summary as a fixed-width text table."""
    header = (
        f"{'cluster':<14} {'bids':>5} {'offers':>7} {'trades':>7} "
        f"{'cpu $':>9} {'ram $':>9} {'disk $':>9} {'cpu%':>6} {'ram%':>6} {'disk%':>6}"
    )
    lines = []
    if summary.auction_id is not None:
        lines.append(f"Market summary (auction #{summary.auction_id})")
    lines.append(header)
    lines.append("-" * len(header))
    rows: Sequence[ClusterSummaryRow] = summary.rows
    if max_rows is not None:
        rows = rows[:max_rows]
    for row in rows:
        lines.append(
            f"{row.cluster:<14} {row.active_bids:>5d} {row.active_offers:>7d} {row.active_trades:>7d} "
            f"{row.cpu_price:>9.3f} {row.ram_price:>9.3f} {row.disk_price:>9.4f} "
            f"{row.cpu_utilization * 100:>5.1f}% {row.ram_utilization * 100:>5.1f}% {row.disk_utilization * 100:>5.1f}%"
        )
    if max_rows is not None and len(summary.rows) > max_rows:
        lines.append(f"... ({len(summary.rows) - max_rows} more clusters)")
    return "\n".join(lines)
