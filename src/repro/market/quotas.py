"""Quota holdings: who is provisioned how much of each resource pool.

The market's output is a *provisioning* decision — long-term quota — not a
per-job scheduling decision.  The registry records each team's quota per pool,
applies auction settlements (buys add quota, sells remove it), and enforces
that a team cannot offer quota it does not hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.core.settlement import Settlement


class QuotaError(RuntimeError):
    """A quota operation would leave a team with negative holdings."""


@dataclass
class QuotaRegistry:
    """Per-team quota holdings over a pool index."""

    index: PoolIndex
    holdings: dict[str, np.ndarray] = field(default_factory=dict)

    # -- basic access -------------------------------------------------------------
    def ensure_team(self, team: str) -> np.ndarray:
        """Create an all-zero holding for ``team`` if missing, returning it."""
        if team not in self.holdings:
            self.holdings[team] = np.zeros(len(self.index), dtype=float)
        return self.holdings[team]

    def teams(self) -> list[str]:
        """All teams with registered holdings."""
        return list(self.holdings)

    def quota(self, team: str, pool_name: str) -> float:
        """Quota of one team in one pool (0 if the team holds nothing)."""
        if team not in self.holdings:
            return 0.0
        return float(self.holdings[team][self.index.index_of(pool_name)])

    def quota_vector(self, team: str) -> np.ndarray:
        """A copy of one team's full holding vector."""
        return self.ensure_team(team).copy()

    def holdings_map(self, team: str) -> dict[str, float]:
        """Non-zero holdings of one team keyed by pool name."""
        return self.index.describe(self.ensure_team(team))

    # -- mutations ------------------------------------------------------------------
    def grant(self, team: str, quantities: Mapping[str, float] | np.ndarray) -> None:
        """Add quota to a team (initial endowments, operator grants)."""
        vec = (
            quantities
            if isinstance(quantities, np.ndarray)
            else self.index.vector(dict(quantities))
        )
        if np.any(vec < 0):
            raise QuotaError("grants must be non-negative; use apply_delta for trades")
        self.ensure_team(team)
        self.holdings[team] = self.holdings[team] + vec

    def apply_delta(self, team: str, delta: np.ndarray, *, allow_negative: bool = False) -> None:
        """Apply a signed quota change (an auction allocation) to one team."""
        delta = np.asarray(delta, dtype=float)
        if delta.shape != (len(self.index),):
            raise ValueError("delta has the wrong length")
        holding = self.ensure_team(team)
        updated = holding + delta
        if not allow_negative and np.any(updated < -1e-9):
            short = self.index.pools[int(np.argmin(updated))].name
            raise QuotaError(
                f"{team} would hold negative quota in {short}: {float(updated.min()):.3f}"
            )
        self.holdings[team] = updated

    def apply_settlement(self, settlement: Settlement, *, allow_negative: bool = False) -> None:
        """Apply every winning allocation of a settlement to the registry."""
        if settlement.index.names != self.index.names:
            raise ValueError("settlement is defined over a different pool index")
        for line in settlement.winners:
            self.apply_delta(line.bidder, line.allocation, allow_negative=allow_negative)

    # -- queries used by agents and validation ----------------------------------------
    def can_offer(self, team: str, quantities: Mapping[str, float]) -> bool:
        """True iff ``team`` holds at least the (positive) quantities it wants to sell."""
        holding = self.ensure_team(team)
        for name, qty in quantities.items():
            if qty < 0:
                qty = -qty
            if holding[self.index.index_of(name)] < qty - 1e-9:
                return False
        return True

    def total_provisioned(self) -> np.ndarray:
        """Sum of all teams' quotas per pool."""
        total = np.zeros(len(self.index), dtype=float)
        for vec in self.holdings.values():
            total = total + vec
        return total

    def overcommitment(self) -> np.ndarray:
        """Provisioned quota minus pool capacity (positive entries mean overcommit)."""
        return self.total_provisioned() - self.index.capacities()

    def utilization_of_quota(self, usage: Mapping[str, Mapping[str, float]]) -> dict[str, float]:
        """Fraction of each team's quota actually used, given per-team usage maps.

        ``usage`` maps team -> {pool name: used amount}.  Teams with zero
        total quota are omitted.  Useful for hoarding analyses ("discourage
        hoarding and overestimating").
        """
        result: dict[str, float] = {}
        for team, vec in self.holdings.items():
            total_quota = float(np.clip(vec, 0.0, None).sum())
            if total_quota <= 0:
                continue
            team_usage = usage.get(team, {})
            used = sum(min(team_usage.get(name, 0.0), self.quota(team, name)) for name in self.index.names)
            result[team] = used / total_quota
        return result

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Deep copy of all non-zero holdings, keyed team -> pool name -> quota."""
        return {team: self.index.describe(vec) for team, vec in self.holdings.items()}


def endow_from_usage(
    index: PoolIndex,
    usage: Mapping[str, Mapping[str, float]],
) -> QuotaRegistry:
    """Build a registry whose initial quotas equal each team's current usage.

    This mirrors how the real market was bootstrapped: teams start out owning
    the resources they already consume, and the market reallocates from there.
    """
    registry = QuotaRegistry(index=index)
    for team, amounts in usage.items():
        registry.grant(team, dict(amounts))
    return registry
