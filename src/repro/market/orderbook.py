"""The order book: bids and offers collected during one bid window.

The market front end's summary page lists, per cluster, "the number of active
bids and offers" (Figure 3); the order book is where those orders live between
submission and the final, binding auction run.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.bids import Bid, BidderClass, classify_bidder

_order_counter = itertools.count(1)


class OrderSide(str, enum.Enum):
    """Whether an order is net buying, net selling, or a two-sided trade."""

    BID = "bid"
    OFFER = "offer"
    TRADE = "trade"


class OrderStatus(str, enum.Enum):
    """Lifecycle of an order within a bid window."""

    ACTIVE = "active"
    WITHDRAWN = "withdrawn"
    SETTLED = "settled"
    UNSETTLED = "unsettled"


def side_of(bid: Bid) -> OrderSide:
    """Classify a sealed bid into the order-book side shown on the summary page."""
    cls = classify_bidder(bid)
    if cls is BidderClass.PURE_SELLER:
        return OrderSide.OFFER
    if cls is BidderClass.TRADER:
        return OrderSide.TRADE
    return OrderSide.BID


@dataclass
class Order:
    """One submitted order wrapping a sealed bid."""

    bid: Bid
    side: OrderSide
    status: OrderStatus = OrderStatus.ACTIVE
    order_id: int = field(default_factory=lambda: next(_order_counter))

    @property
    def bidder(self) -> str:
        return self.bid.bidder

    def clusters_touched(self) -> set[str]:
        """Clusters referenced by any bundle of the underlying bid."""
        clusters: set[str] = set()
        index = self.bid.index
        for bundle in self.bid.bundles:
            for name in bundle.pools_touched():
                clusters.add(index.pool(name).cluster)
        return clusters


class OrderBook:
    """All orders of one bid window."""

    def __init__(self) -> None:
        self._orders: dict[int, Order] = {}

    # -- submission ----------------------------------------------------------------
    def submit(self, bid: Bid) -> Order:
        """Add a sealed bid to the book, classifying its side automatically."""
        order = Order(bid=bid, side=side_of(bid))
        self._orders[order.order_id] = order
        return order

    def withdraw(self, order_id: int) -> None:
        """Withdraw an active order (it will not enter the auction)."""
        order = self.order(order_id)
        if order.status is not OrderStatus.ACTIVE:
            raise ValueError(f"order {order_id} is {order.status.value}, not active")
        order.status = OrderStatus.WITHDRAWN

    def order(self, order_id: int) -> Order:
        """Look up one order."""
        try:
            return self._orders[order_id]
        except KeyError as exc:
            raise KeyError(f"no order with id {order_id}") from exc

    # -- views ----------------------------------------------------------------------
    def orders(self, *, status: OrderStatus | None = None) -> list[Order]:
        """All orders, optionally filtered by status."""
        result = list(self._orders.values())
        if status is not None:
            result = [o for o in result if o.status is status]
        return result

    def active_bids(self) -> list[Bid]:
        """The sealed bids of every active order (the auction's input)."""
        return [o.bid for o in self.orders(status=OrderStatus.ACTIVE)]

    def orders_by_bidder(self, bidder: str) -> list[Order]:
        """All orders submitted by one participant."""
        return [o for o in self._orders.values() if o.bidder == bidder]

    def counts_by_cluster(self) -> dict[str, dict[OrderSide, int]]:
        """Active bid / offer / trade counts per cluster (the Figure 3 columns)."""
        counts: dict[str, dict[OrderSide, int]] = {}
        for order in self.orders(status=OrderStatus.ACTIVE):
            for cluster in order.clusters_touched():
                per_cluster = counts.setdefault(
                    cluster, {OrderSide.BID: 0, OrderSide.OFFER: 0, OrderSide.TRADE: 0}
                )
                per_cluster[order.side] += 1
        return counts

    def mark_settled(self, winners: Iterable[str]) -> None:
        """After the binding auction run, mark each active order settled or unsettled."""
        winner_set = set(winners)
        for order in self.orders(status=OrderStatus.ACTIVE):
            order.status = (
                OrderStatus.SETTLED if order.bidder in winner_set else OrderStatus.UNSETTLED
            )

    def clear(self) -> None:
        """Empty the book (start of a new bid window)."""
        self._orders.clear()

    def __len__(self) -> int:
        return len(self._orders)
