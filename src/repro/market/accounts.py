"""Budget-dollar accounts and the transaction ledger.

"Engineering teams were given budget dollars and allowed to buy, sell, and
trade resources with each other as well as the company itself."  The ledger
tracks those budget dollars: initial endowments, auction payments and
receipts, and ad-hoc transfers.  The full accounting/billing stack of the real
system is explicitly out of the paper's scope; this module implements just
enough for budgets to constrain bidding and for settlements to be recorded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable


class InsufficientBudgetError(RuntimeError):
    """A debit would push an account's balance below zero."""


_txn_counter = itertools.count(1)


@dataclass(frozen=True)
class Transaction:
    """One ledger entry.  Positive ``amount`` credits the account, negative debits it."""

    txn_id: int
    account: str
    amount: float
    kind: str
    memo: str = ""
    auction_id: int | None = None


@dataclass
class Account:
    """One participant's budget-dollar account."""

    owner: str
    balance: float = 0.0

    def can_afford(self, amount: float) -> bool:
        """True iff a debit of ``amount`` would keep the balance non-negative."""
        return self.balance >= amount - 1e-9


class Ledger:
    """All accounts plus an append-only transaction history."""

    def __init__(self) -> None:
        self._accounts: dict[str, Account] = {}
        self._transactions: list[Transaction] = []

    # -- account management -----------------------------------------------------
    def open_account(self, owner: str, endowment: float = 0.0) -> Account:
        """Open an account with an initial budget endowment (idempotent for owner)."""
        if owner in self._accounts:
            raise ValueError(f"account {owner!r} already exists")
        if endowment < 0:
            raise ValueError("endowment must be non-negative")
        account = Account(owner=owner, balance=0.0)
        self._accounts[owner] = account
        if endowment:
            self.credit(owner, endowment, kind="endowment", memo="initial budget endowment")
        return account

    def account(self, owner: str) -> Account:
        """Look up an account."""
        try:
            return self._accounts[owner]
        except KeyError as exc:
            raise KeyError(f"no account for {owner!r}") from exc

    def has_account(self, owner: str) -> bool:
        return owner in self._accounts

    def balance(self, owner: str) -> float:
        """Current balance of one account."""
        return self.account(owner).balance

    def accounts(self) -> list[Account]:
        """All accounts."""
        return list(self._accounts.values())

    # -- postings -------------------------------------------------------------------
    def credit(
        self, owner: str, amount: float, *, kind: str = "credit", memo: str = "", auction_id: int | None = None
    ) -> Transaction:
        """Add budget dollars to an account."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative; use debit()")
        account = self.account(owner)
        account.balance += amount
        txn = Transaction(
            txn_id=next(_txn_counter), account=owner, amount=amount, kind=kind, memo=memo, auction_id=auction_id
        )
        self._transactions.append(txn)
        return txn

    def debit(
        self,
        owner: str,
        amount: float,
        *,
        kind: str = "debit",
        memo: str = "",
        auction_id: int | None = None,
        allow_overdraft: bool = False,
    ) -> Transaction:
        """Remove budget dollars from an account.

        Raises :class:`InsufficientBudgetError` unless ``allow_overdraft`` is
        set (settlements are always honored even if a team overbid between
        preliminary runs; the resulting negative balance is visible in
        reports).
        """
        if amount < 0:
            raise ValueError("debit amount must be non-negative; use credit()")
        account = self.account(owner)
        if not allow_overdraft and not account.can_afford(amount):
            raise InsufficientBudgetError(
                f"{owner} has {account.balance:.2f} budget dollars, cannot pay {amount:.2f}"
            )
        account.balance -= amount
        txn = Transaction(
            txn_id=next(_txn_counter), account=owner, amount=-amount, kind=kind, memo=memo, auction_id=auction_id
        )
        self._transactions.append(txn)
        return txn

    def post_settlement(self, owner: str, payment: float, *, auction_id: int) -> Transaction:
        """Record an auction settlement: positive payment debits, negative credits."""
        if payment >= 0:
            return self.debit(
                owner, payment, kind="settlement", memo="auction settlement", auction_id=auction_id,
                allow_overdraft=True,
            )
        return self.credit(
            owner, -payment, kind="settlement", memo="auction settlement", auction_id=auction_id
        )

    def transfer(self, source: str, destination: str, amount: float, *, memo: str = "") -> None:
        """Move budget dollars between two accounts."""
        self.debit(source, amount, kind="transfer", memo=memo or f"transfer to {destination}")
        self.credit(destination, amount, kind="transfer", memo=memo or f"transfer from {source}")

    # -- history ------------------------------------------------------------------------
    def transactions(self, owner: str | None = None) -> list[Transaction]:
        """All transactions, optionally filtered to one account."""
        if owner is None:
            return list(self._transactions)
        return [txn for txn in self._transactions if txn.account == owner]

    def total_outstanding(self) -> float:
        """Sum of all balances (the money supply of the internal economy)."""
        return float(sum(acct.balance for acct in self._accounts.values()))

    def endow_equally(self, owners: Iterable[str], total_budget: float) -> None:
        """Open accounts for ``owners`` splitting ``total_budget`` equally."""
        owners = list(owners)
        if not owners:
            return
        share = total_budget / len(owners)
        for owner in owners:
            if not self.has_account(owner):
                self.open_account(owner, endowment=share)
            else:
                self.credit(owner, share, kind="endowment", memo="additional endowment")
