"""Parallel economy runner: fan independent scenarios out across an execution backend.

Each catalog scenario is an independent economy — its own fleet, population,
seed, allocation mechanism, and auction sequence — so a sweep over scenarios
(or over replicate seeds of one scenario, or over mechanisms) is
embarrassingly parallel.  :class:`ParallelRunner` owns the *scheduling* of
such a sweep — longest-job-first dispatch order fed by the result store's
measured wall times, streaming aggregation, store persistence — and delegates
the *execution* to a pluggable :class:`~repro.exec.base.ExecutionBackend`
(``serial``, ``process``, or the multi-host ``remote`` fabric; see
:mod:`repro.exec`).  The assembled :class:`SweepReport`'s canonical JSON is
**byte-identical** regardless of backend, worker count, or completion order:
every job carries its own seed, results are ordered by submission, and
wall-clock timings are kept out of the canonical report (each result's
measured wall time rides along in the non-canonical ``wall_time_seconds``
field, which the result store persists so later sweeps can schedule from
measured costs; likewise the executing worker's identity in ``worker``).

With ``workers=1`` (or when a process pool cannot be created) the default
backend runs the very same job list serially, which is what makes the
determinism guarantee checkable:
``run(names, workers=4).to_json() == run(names, workers=1).to_json()``.

>>> from repro.simulation.catalog import get_scenario
>>> spec = get_scenario("smoke").with_overrides(auctions=1)
>>> report = ParallelRunner(workers=1).run_specs([spec])
>>> [r.scenario for r in report.results]
['smoke']
>>> report.results[0].auctions
1
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.baselines.comparison import utilization_imbalance
from repro.simulation.catalog import ScenarioSpec
from repro.simulation.economy import EconomyHistory
from repro.simulation.scenario import Scenario

#: Significant digits kept in the canonical report (full float64 repr is
#: deterministic too, but rounded values keep the JSON humane to read).
_DIGITS = 6


def _round(value: float) -> float:
    return round(float(value), _DIGITS)


def _round_list(values) -> list[float]:
    return [_round(v) for v in values]


@dataclass(frozen=True)
class ScenarioRunResult:
    """The cross-auction trajectory of one scenario run, in plain values.

    Everything here is JSON-serialisable on purpose: results cross process
    boundaries and land verbatim in the sweep report.
    """

    scenario: str
    seed: int
    engine: str
    auctions: int
    clusters: int
    pools: int
    teams: int
    #: Median bid premium gamma_u per auction (Table I's headline trajectory).
    median_premium: list[float]
    #: Mean bid premium per auction.
    mean_premium: list[float]
    #: Fraction of orders settled per auction.
    settled_fraction: list[float]
    #: Clock rounds each binding auction took to clear.
    clearing_rounds: list[int]
    #: Mean settled unit price across pools after each auction.
    mean_clearing_price: list[float]
    #: Net payments collected from winners in each auction (market revenue).
    revenue: list[float]
    #: Mean pool utilization after each auction.
    mean_utilization: list[float]
    #: Std-dev of pool utilizations after each auction (migration flattens it).
    utilization_spread: list[float]
    #: Migration summary of the final auction.
    migration: dict[str, float]
    #: Settled trades pooled across all auctions.
    trade_count: int
    #: Allocation mechanism that produced the run (``market`` or a baseline).
    mechanism: str = "market"
    #: Cost-weighted capacity overcommitted beyond safe headroom per epoch —
    #: the paper's "shortages in certain resource pools" (see
    #: :func:`repro.baselines.comparison.utilization_imbalance`).
    shortage_cost: list[float] = field(default_factory=list)
    #: Cost-weighted capacity stranded idle per epoch — the paper's
    #: "surpluses in certain resource pools".
    surplus_cost: list[float] = field(default_factory=list)
    #: Fraction of teams whose current demand is fully covered by the quota
    #: the mechanism has provisioned so far, per epoch.
    satisfied_fraction: list[float] = field(default_factory=list)
    #: Per-team settlement outcomes pooled across the run's auctions (bids,
    #: wins, surplus at former fixed prices, overcommitted limit, satisfied
    #: fraction).  Populated only for roster-driven populations — tournament
    #: generations score genomes from this — and serialised only when present,
    #: so reports for ordinary sampled populations keep their exact bytes.
    team_scores: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Measured wall time of the run in seconds.  Deliberately *not* part of
    #: the canonical report (or equality): timings vary run to run, reports
    #: must not.  The result store persists it for measured-cost scheduling.
    wall_time_seconds: float | None = field(default=None, compare=False)
    #: Which execution lane produced the run (``serial:<pid>``,
    #: ``process:<pid>``, or a remote worker id).  Provenance only: like the
    #: wall time it stays out of the canonical report and out of equality —
    #: *where* a deterministic job ran must never show in the bytes — but the
    #: result store persists it so a sweep's placement can be audited.
    worker: str | None = field(default=None, compare=False)

    @property
    def premium_drop(self) -> float:
        """First-to-last change in median premium (negative = premiums fell)."""
        return _round(self.median_premium[-1] - self.median_premium[0])

    @property
    def utilization_spread_change(self) -> float:
        """First-to-last change in utilization spread (negative = flattening)."""
        return _round(self.utilization_spread[-1] - self.utilization_spread[0])

    def to_dict(self) -> dict[str, object]:
        """The canonical per-scenario report entry."""
        payload: dict[str, object] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "engine": self.engine,
            "mechanism": self.mechanism,
            "auctions": self.auctions,
            "clusters": self.clusters,
            "pools": self.pools,
            "teams": self.teams,
            "median_premium": self.median_premium,
            "mean_premium": self.mean_premium,
            "settled_fraction": self.settled_fraction,
            "clearing_rounds": self.clearing_rounds,
            "mean_clearing_price": self.mean_clearing_price,
            "revenue": self.revenue,
            "mean_utilization": self.mean_utilization,
            "utilization_spread": self.utilization_spread,
            "migration": self.migration,
            "trade_count": self.trade_count,
            "shortage_cost": self.shortage_cost,
            "surplus_cost": self.surplus_cost,
            "satisfied_fraction": self.satisfied_fraction,
            "premium_drop": self.premium_drop,
            "utilization_spread_change": self.utilization_spread_change,
        }
        if self.team_scores:
            payload["team_scores"] = self.team_scores
        return payload

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, object],
        *,
        wall_time_seconds: float | None = None,
        worker: str | None = None,
    ) -> "ScenarioRunResult":
        """Rebuild a result from its canonical :meth:`to_dict` payload.

        The inverse the remote execution fabric rides on: the canonical dict
        holds plain rounded values that survive JSON bit-exactly, so
        ``from_dict(json.loads(json.dumps(r.to_dict())))`` equals ``r``.
        Derived entries (``premium_drop``, ``utilization_spread_change``) are
        recomputed properties and ignored; the non-canonical sidecar fields
        are supplied separately.

        >>> from repro.simulation.catalog import get_scenario
        >>> r = run_scenario(get_scenario("smoke").with_overrides(auctions=1))
        >>> ScenarioRunResult.from_dict(r.to_dict()) == r
        True
        """
        names = {f.name for f in dataclasses.fields(cls)} - {"wall_time_seconds", "worker"}
        data = {key: value for key, value in payload.items() if key in names}
        return cls(**data, wall_time_seconds=wall_time_seconds, worker=worker)

    @classmethod
    def from_history(
        cls, spec: ScenarioSpec, scenario: Scenario, history: EconomyHistory
    ) -> "ScenarioRunResult":
        """Flatten a finished economy run into the plain trajectory record."""
        imbalance = [
            utilization_imbalance(scenario.pool_index, p.utilization_after)
            for p in history.periods
        ]
        return cls(
            scenario=spec.name,
            seed=spec.config.seed,
            engine=spec.config.auction_engine,
            auctions=len(history),
            clusters=len(scenario.fleet.clusters),
            pools=len(scenario.pool_index),
            teams=len(scenario.agents),
            median_premium=_round_list(history.median_premium_series()),
            mean_premium=_round_list(p.mean_premium for p in history.premium_rows()),
            settled_fraction=_round_list(p.settled_fraction for p in history.periods),
            clearing_rounds=[p.record.rounds for p in history.periods],
            mean_clearing_price=_round_list(
                float(np.mean(list(p.record.prices.values()))) for p in history.periods
            ),
            revenue=_round_list(p.settlement.total_payments() for p in history.periods),
            mean_utilization=_round_list(
                float(np.mean(p.utilization_after)) for p in history.periods
            ),
            utilization_spread=_round_list(history.utilization_spread_series()),
            migration={k: _round(v) for k, v in history.periods[-1].migration.items()},
            trade_count=len(history.all_trades()),
            mechanism=spec.mechanism,
            shortage_cost=_round_list(shortage for shortage, _ in imbalance),
            surplus_cost=_round_list(surplus for _, surplus in imbalance),
            satisfied_fraction=_round_list(
                a.satisfied_fraction for a in history.allocation_series()
            ),
            team_scores=(
                _team_outcomes(scenario, history)
                if spec.config.population.roster is not None
                else {}
            ),
        )


def _team_outcomes(scenario: Scenario, history: EconomyHistory) -> dict[str, dict[str, float]]:
    """Per-team settlement outcomes pooled across a run's auctions.

    ``surplus`` values each won bundle at the *former fixed prices* (the
    paper's pre-market willingness-to-pay anchor) minus the settled payment:
    buying below fixed value or selling above it is profit.  ``overcommitment``
    is the limit committed beyond the payment — capital the platform's budget
    check kept locked up, i.e. the premium in currency units.  Everything is
    rounded to the canonical digit budget so tournament selection on these
    numbers is identical whatever backend produced them.
    """
    fixed = scenario.fleet.fixed_prices
    out: dict[str, dict[str, float]] = {
        agent.name: {"bids": 0, "wins": 0, "surplus": 0.0, "overcommitment": 0.0}
        for agent in scenario.agents
    }
    for period in history.periods:
        index = period.settlement.index
        fixed_vec = np.array([fixed.get(pool.name, 0.0) for pool in index], dtype=float)
        for line in period.settlement.lines:
            rec = out.get(line.bidder)
            if rec is None:  # operator supply offers are not tournament teams
                continue
            rec["bids"] += 1
            if line.won:
                rec["wins"] += 1
                rec["surplus"] += float(line.allocation @ fixed_vec) - line.payment
                rec["overcommitment"] += abs(line.limit - line.payment)
    scores: dict[str, dict[str, float]] = {}
    for name in sorted(out):
        rec = out[name]
        bids = int(rec["bids"])
        scores[name] = {
            "bids": bids,
            "wins": int(rec["wins"]),
            "surplus": _round(rec["surplus"]),
            "overcommitment": _round(rec["overcommitment"]),
            "satisfied_fraction": _round(rec["wins"] / bids) if bids else 0.0,
        }
    return scores


def run_scenario(spec: ScenarioSpec) -> ScenarioRunResult:
    """Run one scenario start to finish in the current process.

    Dispatches on ``spec.mechanism`` through the mechanism registry
    (:mod:`repro.mechanisms`) and stamps the measured wall time onto the
    result's non-canonical ``wall_time_seconds`` field.
    """
    from repro.mechanisms import get_mechanism

    mechanism = get_mechanism(spec.mechanism)
    start = time.perf_counter()
    result = mechanism.run(spec)
    return replace(result, wall_time_seconds=time.perf_counter() - start)


def expand_mechanisms(
    specs: Sequence[ScenarioSpec], mechanisms: Sequence[str]
) -> list[ScenarioSpec]:
    """The scenario x mechanism cross product, scenario-major.

    >>> from repro.simulation.catalog import get_scenario
    >>> expanded = expand_mechanisms([get_scenario("smoke")], ["market", "priority"])
    >>> [(s.name, s.mechanism) for s in expanded]
    [('smoke', 'market'), ('smoke', 'priority')]
    """
    if not mechanisms:
        raise ValueError("expand_mechanisms needs at least one mechanism name")
    return [
        spec.with_overrides(mechanism=mechanism)
        for spec in specs
        for mechanism in mechanisms
    ]


def job_costs(
    specs: Sequence[ScenarioSpec],
    measured: Mapping[tuple[str, str, str, int], float] | None = None,
) -> list[float]:
    """Scheduling cost per spec: measured wall time where known, estimate otherwise.

    ``measured`` maps ``(scenario, mechanism, engine, auctions)`` — a spec's
    :meth:`~repro.simulation.catalog.ScenarioSpec.cost_key` — to observed
    mean wall seconds (see
    :meth:`repro.results.store.ResultStore.mean_wall_times`).  Static
    estimates are in arbitrary work units, so jobs without a measurement get
    their estimate rescaled into seconds by the mean seconds-per-unit ratio of
    the jobs that *do* have one — keeping the two populations rankable against
    each other instead of comparing seconds to unit counts.
    """
    estimates = [spec.cost_estimate() for spec in specs]
    if not measured:
        return estimates
    ratios = [
        measured[spec.cost_key()] / estimate
        for spec, estimate in zip(specs, estimates)
        if spec.cost_key() in measured and estimate > 0
    ]
    scale = float(np.mean(ratios)) if ratios else 1.0
    return [
        measured.get(spec.cost_key(), estimate * scale)
        for spec, estimate in zip(specs, estimates)
    ]


def longest_job_first(
    specs: Sequence[ScenarioSpec],
    measured: Mapping[tuple[str, str, str, int], float] | None = None,
) -> list[int]:
    """Submission order for a process pool: heaviest scenario first.

    Returns indices into ``specs`` sorted by descending cost (stable for
    ties).  Cost is the observed mean wall time recorded in the result store
    when one exists for the job's
    :meth:`~repro.simulation.catalog.ScenarioSpec.cost_key`, else the static
    :meth:`~repro.simulation.catalog.ScenarioSpec.cost_estimate` (see
    :func:`job_costs`).  Submitting the longest jobs first tightens the
    pool's makespan: a 10k-bidder stress scenario starts on a worker
    immediately instead of becoming the tail after every quick scenario has
    already finished.  The *report* order is unaffected — results are always
    assembled in the caller's submission order.

    >>> from repro.simulation.catalog import get_scenario
    >>> specs = [get_scenario("smoke"), get_scenario("10k-bidder-stress")]
    >>> longest_job_first(specs)
    [1, 0]
    >>> longest_job_first(specs, {specs[0].cost_key(): 60.0,
    ...                           specs[1].cost_key(): 1.0})
    [0, 1]
    """
    costs = job_costs(specs, measured)
    return sorted(range(len(specs)), key=lambda i: (-costs[i], i))


@dataclass
class SweepReport:
    """Cross-scenario aggregate of one runner invocation.

    ``to_json()`` is canonical: sorted keys, fixed float rounding, no
    timestamps or wall-clock timings — the same jobs always serialise to the
    same bytes, whatever the worker count.
    """

    results: tuple[ScenarioRunResult, ...]

    def _result_keys(self) -> list[str]:
        """One unique key per result: the scenario name, disambiguated by
        mechanism for cross-mechanism sweeps, by seed for replicate runs, and
        by submission position for exact duplicates.  Single-mechanism sweeps
        produce exactly the keys they always did."""
        mechanisms: dict[str, set[str]] = {}
        pair_counts: dict[tuple[str, str], int] = {}
        for r in self.results:
            mechanisms.setdefault(r.scenario, set()).add(r.mechanism)
            pair = (r.scenario, r.mechanism)
            pair_counts[pair] = pair_counts.get(pair, 0) + 1
        keys: list[str] = []
        used: set[str] = set()
        for r in self.results:
            key = r.scenario
            if len(mechanisms[r.scenario]) > 1:
                key = f"{key}+{r.mechanism}"
            if pair_counts[(r.scenario, r.mechanism)] > 1:
                key = f"{key}@seed{r.seed}"
            if key in used:  # same scenario, mechanism AND seed submitted twice
                suffix = 2
                while f"{key}#{suffix}" in used:
                    suffix += 1
                key = f"{key}#{suffix}"
            used.add(key)
            keys.append(key)
        return keys

    def aggregate(self) -> dict[str, object]:
        """The cross-scenario roll-up: premiums, migration, clearing effort."""
        keys = self._result_keys()
        return {
            "scenario_count": len(self.results),
            "total_auctions": sum(r.auctions for r in self.results),
            "total_trades": sum(r.trade_count for r in self.results),
            "mean_clearing_rounds": _round(
                float(np.mean([rounds for r in self.results for rounds in r.clearing_rounds]))
            )
            if self.results
            else 0.0,
            "premium_drop": {k: r.premium_drop for k, r in zip(keys, self.results)},
            "utilization_spread_change": {
                k: r.utilization_spread_change for k, r in zip(keys, self.results)
            },
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "scenarios": [r.to_dict() for r in self.results],
            "aggregate": self.aggregate(),
        }

    def to_json(self) -> str:
        """Canonical JSON (the byte-identical artifact the benchmark compares)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


class ParallelRunner:
    """Schedule independent scenario jobs onto an execution backend.

    ``backend`` selects where jobs run: a registry name (``serial``,
    ``process``, ``remote`` — see :mod:`repro.exec`), an already-configured
    :class:`~repro.exec.base.ExecutionBackend` instance, or ``None`` for the
    default ``process`` backend.  ``workers`` is forwarded to the backend:
    pool size for ``process`` (``None`` uses every core up to the job count;
    ``1`` runs serially in-process), minimum connected workers for
    ``remote``.  If a process pool cannot be created at all (sandboxes that
    forbid subprocesses), the process backend degrades to the serial path
    rather than failing — the report is identical either way.
    """

    def __init__(self, *, workers: int | None = None, backend=None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.backend = backend

    def _resolve_backend(self):
        """The configured backend instance jobs will run on."""
        from repro.exec import DEFAULT_BACKEND, create_backend

        backend = self.backend if self.backend is not None else DEFAULT_BACKEND
        if isinstance(backend, str):
            return create_backend(backend, workers=self.workers)
        return backend

    def run_specs(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        on_result: Callable[[ScenarioRunResult], None] | None = None,
        store=None,
        code_version: str | None = None,
    ) -> SweepReport:
        """Run every spec; stream each finished result to ``on_result``.

        ``on_result`` fires once per spec as its run completes (completion
        order under a pool); the returned report is always in submission
        order regardless of which worker finished first.  Jobs are handed to
        the pool in :func:`longest_job_first` order so heavyweight scenarios
        never become the makespan tail.

        ``store`` is an optional :class:`repro.results.ResultStore`: each
        result is persisted as it lands, under ``code_version`` (derived from
        the working tree when ``None`` — see
        :func:`repro.results.default_code_version`), and the store's observed
        mean wall times take precedence over static cost estimates when
        ordering pool submission (measured-cost scheduling).
        """
        specs = list(specs)
        measured: dict[tuple[str, str], float] = {}
        if store is not None:
            from repro.results.store import default_code_version

            measured = store.mean_wall_times()
            version = code_version if code_version is not None else default_code_version()
            inner = on_result

            def on_result(result: ScenarioRunResult) -> None:  # noqa: F811 - chained callback
                store.record(result, code_version=version)
                if inner is not None:
                    inner(result)

        if not specs:
            return SweepReport(results=())
        results: list[ScenarioRunResult | None] = [None] * len(specs)

        def emit(i: int, result: ScenarioRunResult) -> None:
            results[i] = result
            if on_result is not None:
                on_result(result)

        # Heaviest jobs first: dispatch order decides the backend's makespan,
        # the ``results`` slot index keeps the report in submission order.
        backend = self._resolve_backend()
        if store is not None:
            set_speeds = getattr(backend, "set_worker_speeds", None)
            if set_speeds is not None:
                # Host-aware dispatch: backends that track per-worker speed
                # (remote) get the store's measured factors; scheduling stays
                # a pure performance hint, invisible in the report bytes.
                set_speeds(store.worker_speeds())
        backend.execute(specs, order=longest_job_first(specs, measured), emit=emit)
        return SweepReport(results=tuple(r for r in results if r is not None))

    def run_replicates(
        self,
        spec: ScenarioSpec,
        replicates: int,
        *,
        on_result: Callable[[ScenarioRunResult], None] | None = None,
        store=None,
        code_version: str | None = None,
    ) -> SweepReport:
        """Run ``replicates`` copies of one scenario under seeds ``seed+i``."""
        if replicates < 1:
            raise ValueError("replicates must be >= 1")
        specs = [
            spec.with_overrides(seed=spec.config.seed + i) for i in range(replicates)
        ]
        return self.run_specs(
            specs, on_result=on_result, store=store, code_version=code_version
        )
