"""Parallel economy runner: fan independent scenarios out across a process pool.

Each catalog scenario is an independent economy — its own fleet, population,
seed, and auction sequence — so a sweep over scenarios (or over replicate
seeds of one scenario) is embarrassingly parallel.  :class:`ParallelRunner`
executes the jobs across a :class:`~concurrent.futures.ProcessPoolExecutor`,
streams each finished result into an aggregation callback as it lands, and
assembles a :class:`SweepReport` whose canonical JSON is **byte-identical**
regardless of worker count or completion order: every job carries its own
seed, results are ordered by submission, and wall-clock timings are kept out
of the canonical report.

With ``workers=1`` (or when a process pool cannot be created) the runner
falls back to plain serial execution of the very same job list, which is what
makes the determinism guarantee checkable:
``run(names, workers=4).to_json() == run(names, workers=1).to_json()``.

>>> from repro.simulation.catalog import get_scenario
>>> spec = get_scenario("smoke").with_overrides(auctions=1)
>>> report = ParallelRunner(workers=1).run_specs([spec])
>>> [r.scenario for r in report.results]
['smoke']
>>> report.results[0].auctions
1
"""

from __future__ import annotations

import json
import os
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.simulation.catalog import ScenarioSpec
from repro.simulation.economy import EconomyHistory, MarketEconomySimulation
from repro.simulation.scenario import Scenario

#: Significant digits kept in the canonical report (full float64 repr is
#: deterministic too, but rounded values keep the JSON humane to read).
_DIGITS = 6


def _round(value: float) -> float:
    return round(float(value), _DIGITS)


def _round_list(values) -> list[float]:
    return [_round(v) for v in values]


@dataclass(frozen=True)
class ScenarioRunResult:
    """The cross-auction trajectory of one scenario run, in plain values.

    Everything here is JSON-serialisable on purpose: results cross process
    boundaries and land verbatim in the sweep report.
    """

    scenario: str
    seed: int
    engine: str
    auctions: int
    clusters: int
    pools: int
    teams: int
    #: Median bid premium gamma_u per auction (Table I's headline trajectory).
    median_premium: list[float]
    #: Mean bid premium per auction.
    mean_premium: list[float]
    #: Fraction of orders settled per auction.
    settled_fraction: list[float]
    #: Clock rounds each binding auction took to clear.
    clearing_rounds: list[int]
    #: Mean settled unit price across pools after each auction.
    mean_clearing_price: list[float]
    #: Net payments collected from winners in each auction (market revenue).
    revenue: list[float]
    #: Mean pool utilization after each auction.
    mean_utilization: list[float]
    #: Std-dev of pool utilizations after each auction (migration flattens it).
    utilization_spread: list[float]
    #: Migration summary of the final auction.
    migration: dict[str, float]
    #: Settled trades pooled across all auctions.
    trade_count: int

    @property
    def premium_drop(self) -> float:
        """First-to-last change in median premium (negative = premiums fell)."""
        return _round(self.median_premium[-1] - self.median_premium[0])

    @property
    def utilization_spread_change(self) -> float:
        """First-to-last change in utilization spread (negative = flattening)."""
        return _round(self.utilization_spread[-1] - self.utilization_spread[0])

    def to_dict(self) -> dict[str, object]:
        """The canonical per-scenario report entry."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "engine": self.engine,
            "auctions": self.auctions,
            "clusters": self.clusters,
            "pools": self.pools,
            "teams": self.teams,
            "median_premium": self.median_premium,
            "mean_premium": self.mean_premium,
            "settled_fraction": self.settled_fraction,
            "clearing_rounds": self.clearing_rounds,
            "mean_clearing_price": self.mean_clearing_price,
            "revenue": self.revenue,
            "mean_utilization": self.mean_utilization,
            "utilization_spread": self.utilization_spread,
            "migration": self.migration,
            "trade_count": self.trade_count,
            "premium_drop": self.premium_drop,
            "utilization_spread_change": self.utilization_spread_change,
        }

    @classmethod
    def from_history(
        cls, spec: ScenarioSpec, scenario: Scenario, history: EconomyHistory
    ) -> "ScenarioRunResult":
        """Flatten a finished economy run into the plain trajectory record."""
        return cls(
            scenario=spec.name,
            seed=spec.config.seed,
            engine=spec.config.auction_engine,
            auctions=len(history),
            clusters=len(scenario.fleet.clusters),
            pools=len(scenario.pool_index),
            teams=len(scenario.agents),
            median_premium=_round_list(history.median_premium_series()),
            mean_premium=_round_list(p.mean_premium for p in history.premium_rows()),
            settled_fraction=_round_list(p.settled_fraction for p in history.periods),
            clearing_rounds=[p.record.rounds for p in history.periods],
            mean_clearing_price=_round_list(
                float(np.mean(list(p.record.prices.values()))) for p in history.periods
            ),
            revenue=_round_list(p.settlement.total_payments() for p in history.periods),
            mean_utilization=_round_list(
                float(np.mean(p.utilization_after)) for p in history.periods
            ),
            utilization_spread=_round_list(history.utilization_spread_series()),
            migration={k: _round(v) for k, v in history.periods[-1].migration.items()},
            trade_count=len(history.all_trades()),
        )


def run_scenario(spec: ScenarioSpec) -> ScenarioRunResult:
    """Run one scenario start to finish in the current process."""
    scenario = spec.build()
    sim = MarketEconomySimulation(
        scenario,
        drift_scale=spec.drift_scale,
        preliminary_runs=spec.preliminary_runs,
    )
    history = sim.run(spec.auctions)
    return ScenarioRunResult.from_history(spec, scenario, history)


def _run_job(spec: ScenarioSpec) -> ScenarioRunResult:
    """Process-pool entry point (module-level so it pickles under any start method)."""
    return run_scenario(spec)


def longest_job_first(specs: Sequence[ScenarioSpec]) -> list[int]:
    """Submission order for a process pool: heaviest scenario first.

    Returns indices into ``specs`` sorted by descending
    :meth:`~repro.simulation.catalog.ScenarioSpec.cost_estimate` (stable for
    ties).  Submitting the longest jobs first tightens the pool's makespan: a
    10k-bidder stress scenario starts on a worker immediately instead of
    becoming the tail after every quick scenario has already finished.  The
    *report* order is unaffected — results are always assembled in the
    caller's submission order.

    >>> from repro.simulation.catalog import get_scenario
    >>> specs = [get_scenario("smoke"), get_scenario("10k-bidder-stress")]
    >>> longest_job_first(specs)
    [1, 0]
    """
    return sorted(range(len(specs)), key=lambda i: (-specs[i].cost_estimate(), i))


@dataclass
class SweepReport:
    """Cross-scenario aggregate of one runner invocation.

    ``to_json()`` is canonical: sorted keys, fixed float rounding, no
    timestamps or wall-clock timings — the same jobs always serialise to the
    same bytes, whatever the worker count.
    """

    results: tuple[ScenarioRunResult, ...]

    def _result_keys(self) -> list[str]:
        """One unique key per result: the scenario name, disambiguated by seed
        for replicate runs and by submission position for exact duplicates."""
        name_counts: dict[str, int] = {}
        for r in self.results:
            name_counts[r.scenario] = name_counts.get(r.scenario, 0) + 1
        keys: list[str] = []
        used: set[str] = set()
        for r in self.results:
            key = r.scenario if name_counts[r.scenario] == 1 else f"{r.scenario}@seed{r.seed}"
            if key in used:  # same scenario AND same seed submitted twice
                suffix = 2
                while f"{key}#{suffix}" in used:
                    suffix += 1
                key = f"{key}#{suffix}"
            used.add(key)
            keys.append(key)
        return keys

    def aggregate(self) -> dict[str, object]:
        """The cross-scenario roll-up: premiums, migration, clearing effort."""
        keys = self._result_keys()
        return {
            "scenario_count": len(self.results),
            "total_auctions": sum(r.auctions for r in self.results),
            "total_trades": sum(r.trade_count for r in self.results),
            "mean_clearing_rounds": _round(
                float(np.mean([rounds for r in self.results for rounds in r.clearing_rounds]))
            )
            if self.results
            else 0.0,
            "premium_drop": {k: r.premium_drop for k, r in zip(keys, self.results)},
            "utilization_spread_change": {
                k: r.utilization_spread_change for k, r in zip(keys, self.results)
            },
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "scenarios": [r.to_dict() for r in self.results],
            "aggregate": self.aggregate(),
        }

    def to_json(self) -> str:
        """Canonical JSON (the byte-identical artifact the benchmark compares)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


class ParallelRunner:
    """Execute independent scenario jobs across a process pool.

    ``workers=None`` uses every core up to the job count; ``workers=1`` runs
    serially in-process.  If the pool cannot be created at all (sandboxes
    that forbid subprocesses), the runner degrades to the serial path rather
    than failing — the report is identical either way.
    """

    def __init__(self, *, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def _resolve_workers(self, job_count: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, job_count))

    def run_specs(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        on_result: Callable[[ScenarioRunResult], None] | None = None,
        store=None,
        code_version: str | None = None,
    ) -> SweepReport:
        """Run every spec; stream each finished result to ``on_result``.

        ``on_result`` fires once per spec as its run completes (completion
        order under a pool); the returned report is always in submission
        order regardless of which worker finished first.  Jobs are handed to
        the pool in :func:`longest_job_first` order so heavyweight scenarios
        never become the makespan tail.

        ``store`` is an optional :class:`repro.results.ResultStore`: each
        result is persisted as it lands, under ``code_version`` (derived from
        the working tree when ``None`` — see
        :func:`repro.results.default_code_version`).
        """
        specs = list(specs)
        if store is not None:
            from repro.results.store import default_code_version

            version = code_version if code_version is not None else default_code_version()
            inner = on_result

            def on_result(result: ScenarioRunResult) -> None:  # noqa: F811 - chained callback
                store.record(result, code_version=version)
                if inner is not None:
                    inner(result)

        if not specs:
            return SweepReport(results=())
        results: list[ScenarioRunResult | None] = [None] * len(specs)
        workers = self._resolve_workers(len(specs))
        if workers > 1:
            try:
                self._fill_from_pool(specs, workers, results, on_result)
            except (OSError, PermissionError, BrokenExecutor):
                # Process pools are unavailable (restricted sandbox) or a
                # worker could not be forked mid-run; the serial path below
                # finishes only the jobs that have not completed yet, so
                # ``on_result`` still fires exactly once per spec.
                pass
        for i, spec in enumerate(specs):
            if results[i] is None:
                results[i] = self._guarded(spec, run_scenario)
                if on_result is not None:
                    on_result(results[i])
        return SweepReport(results=tuple(r for r in results if r is not None))

    def run_replicates(
        self,
        spec: ScenarioSpec,
        replicates: int,
        *,
        on_result: Callable[[ScenarioRunResult], None] | None = None,
        store=None,
        code_version: str | None = None,
    ) -> SweepReport:
        """Run ``replicates`` copies of one scenario under seeds ``seed+i``."""
        if replicates < 1:
            raise ValueError("replicates must be >= 1")
        specs = [
            spec.with_overrides(seed=spec.config.seed + i) for i in range(replicates)
        ]
        return self.run_specs(
            specs, on_result=on_result, store=store, code_version=code_version
        )

    # -- execution paths -----------------------------------------------------------------
    def _fill_from_pool(self, specs, workers, results, on_result) -> None:
        """Run the jobs across a pool, filling ``results`` slots as they land."""
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {}
            try:
                # Heaviest jobs first: queue position decides makespan, the
                # ``results`` slot index keeps the report in submission order.
                for i in longest_job_first(specs):
                    future = pool.submit(_run_job, specs[i])
                    pending[future] = i
                while pending:
                    done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                    for future in done:
                        i = pending.pop(future)
                        error = future.exception()
                        if error is not None:
                            if isinstance(error, (OSError, PermissionError, BrokenExecutor)):
                                # Worker creation/death failure, not a scenario
                                # failure — leave the slot for the serial fallback.
                                raise error
                            raise RuntimeError(
                                f"scenario {specs[i].name!r} failed in worker: {error}"
                            ) from error
                        results[i] = future.result()
                        if on_result is not None:
                            on_result(results[i])
            except BaseException:
                # Surface the failure now: drop queued jobs instead of letting
                # the context manager's shutdown(wait=True) run them all first.
                # (Jobs already executing in a worker cannot be interrupted.)
                for future in pending:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    @staticmethod
    def _guarded(spec: ScenarioSpec, fn) -> ScenarioRunResult:
        try:
            return fn(spec)
        except Exception as error:
            raise RuntimeError(f"scenario {spec.name!r} failed: {error}") from error
