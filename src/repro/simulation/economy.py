"""The multi-auction market economy simulation.

Reproduces the longitudinal structure of the paper's experiment: periodic
clock auctions run against a fleet whose utilization evolves both organically
(traffic growth, launches) and as a *consequence of the previous auctions*
(teams that bought quota in idle clusters move load there; teams that sold
quota in congested clusters move load out).  Agents observe their settlements
and adapt their bidding between auctions, which is what drives Table I's
shrinking premiums.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.agents.base import MarketView
from repro.analysis.premium import PremiumStats, premium_stats
from repro.analysis.price_ratio import PriceRatioRow, price_ratio_table
from repro.analysis.utilization_stats import SettledTrade, migration_summary, settled_trades
from repro.baselines.comparison import (
    AllocationMetrics,
    allocation_metrics,
    market_outcome_from_quota_delta,
    requests_from_demands,
)
from repro.core.settlement import Settlement
from repro.market.platform import AuctionRecord
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenario import Scenario
from repro.simulation.workload import (
    apply_settlement_to_utilization,
    demands_from_agents,
    organic_drift,
)


@dataclass
class AuctionPeriodResult:
    """Everything recorded about one auction period."""

    auction_number: int
    record: AuctionRecord
    premium: PremiumStats
    trades: list[SettledTrade]
    price_ratios: list[PriceRatioRow]
    utilization_before: np.ndarray
    utilization_after: np.ndarray
    migration: dict[str, float]
    #: Team-level coverage of the market's *cumulative* provisioning (quota
    #: acquired since the simulation started) against the demand current at
    #: this epoch — the satisfied-fraction side of the paper's
    #: market-vs-baseline comparison (see :mod:`repro.baselines.comparison`;
    #: the pool-level shortage/surplus side is derived from
    #: ``utilization_after`` by the runner).
    allocation: AllocationMetrics
    #: Shard partition / worker facts from the sharded auction engine
    #: (``None`` for scalar/batch runs).  Diagnostic only — never part of
    #: the canonical report.
    shard_stats: dict[str, object] | None = None
    #: Delta-kernel facts from the incremental auction engine (``None`` for
    #: other engines).  Diagnostic only — never part of the canonical report.
    incremental_stats: dict[str, object] | None = None

    @property
    def settlement(self) -> Settlement:
        return self.record.result.settlement

    @property
    def settled_fraction(self) -> float:
        return self.settlement.settled_fraction()


@dataclass
class EconomyHistory:
    """The full record of a multi-auction simulation run."""

    periods: list[AuctionPeriodResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.periods)

    def settlements(self) -> list[Settlement]:
        """Settlements of every auction, in order."""
        return [period.settlement for period in self.periods]

    def premium_rows(self) -> list[PremiumStats]:
        """Table I rows for every auction."""
        return [period.premium for period in self.periods]

    def all_trades(self) -> list[SettledTrade]:
        """Settled trades pooled across all auctions (Figure 7 input)."""
        trades: list[SettledTrade] = []
        for period in self.periods:
            trades.extend(period.trades)
        return trades

    def median_premium_series(self) -> list[float]:
        """Median gamma_u per auction (should trend downwards)."""
        return [period.premium.median_premium for period in self.periods]

    def utilization_spread_series(self) -> list[float]:
        """Utilization spread across pools after each auction."""
        return [float(np.std(period.utilization_after)) for period in self.periods]

    def allocation_series(self) -> list[AllocationMetrics]:
        """Cumulative shortage/surplus/satisfaction metrics per epoch."""
        return [period.allocation for period in self.periods]


class MarketEconomySimulation:
    """Drives a scenario through a sequence of periodic auctions."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        auction_period: float = 30.0,
        drift_scale: float = 0.015,
        move_out_fraction: float = 0.9,
        preliminary_runs: int = 0,
    ):
        if auction_period <= 0:
            raise ValueError("auction_period must be positive")
        if preliminary_runs < 0:
            raise ValueError("preliminary_runs must be non-negative")
        self.scenario = scenario
        self.auction_period = auction_period
        self.drift_scale = drift_scale
        self.move_out_fraction = move_out_fraction
        self.preliminary_runs = preliminary_runs
        self.engine = SimulationEngine()
        self.history = EconomyHistory()
        self._auction_counter = 0
        # Reference points for the cumulative allocation metrics: everything a
        # team holds beyond its starting quota counts as provisioned by the
        # market, and surplus is judged against the capacity that was free
        # before the first auction.
        self._initial_index = scenario.pool_index
        self._initial_holdings = scenario.platform.quotas.snapshot()

    # -- single-period mechanics ----------------------------------------------------------
    def _market_view(self) -> MarketView:
        platform = self.scenario.platform
        return MarketView(
            index=platform.index,
            displayed_prices=dict(platform.displayed_prices),
            fixed_prices=dict(platform.fixed_prices),
            auction_number=self._auction_counter + 1,
            topology=self.scenario.fleet.topology,
        )

    def _refresh_agent_state(self) -> None:
        platform = self.scenario.platform
        for agent in self.scenario.agents:
            if platform.ledger.has_account(agent.name):
                agent.budget = platform.ledger.balance(agent.name)
            agent.holdings = platform.quotas.holdings_map(agent.name)

    def run_one_auction(self) -> AuctionPeriodResult:
        """Run a single complete auction period and record its statistics."""
        platform = self.scenario.platform
        self._auction_counter += 1
        utilization_before = platform.index.utilizations().copy()

        # The demand current at this epoch (profiles grow between auctions);
        # the same covering bundles the baseline mechanisms would be fed, so
        # the shortage/surplus comparison is apples to apples.  Pure
        # inspection: no RNG is consumed, round traces are unaffected.
        epoch_requests = requests_from_demands(
            platform.index, demands_from_agents(self.scenario.agents, platform.index)
        )

        self.engine.phase(f"auction-{self._auction_counter}:bids")
        platform.open_bid_window()
        self._refresh_agent_state()
        view = self._market_view()
        for agent in self.scenario.agents:
            for bid in agent.prepare_bids(view):
                try:
                    platform.submit_bid(bid)
                except ValueError:
                    # Bids that fail budget/quota feasibility are rejected by the
                    # platform exactly as the real front end would refuse them.
                    continue
        for _ in range(self.preliminary_runs):
            platform.run_preliminary()
        # With the sharded engine, finalize_auction overlaps each shard's
        # settlement with the remaining shards' price discovery (the
        # exchange's on_shard pipeline); the phase markers bracket it so the
        # engine trace shows the discovery window per epoch.
        self.engine.phase(f"auction-{self._auction_counter}:discovery")
        record = platform.finalize_auction()
        settlement = record.result.settlement
        self.engine.phase(f"auction-{self._auction_counter}:settled")

        # Feed settlements back to the agents (learning across auctions).
        # Grouped once up front: a per-agent scan of the line list is
        # O(agents x lines), which at stress scale is billions of
        # comparisons; the grouping preserves each bidder's line order.
        lines_by_bidder: dict[str, list] = {}
        for line in settlement.lines:
            lines_by_bidder.setdefault(line.bidder, []).append(line)
        for agent in self.scenario.agents:
            agent.observe_settlement(lines_by_bidder.get(agent.name, []), view)

        # Project the outcome onto next period's utilization and refresh the platform.
        updated_index = apply_settlement_to_utilization(
            platform.index,
            settlement.total_allocated(),
            move_out_fraction=self.move_out_fraction,
        )
        updated_index = organic_drift(updated_index, rng=self.scenario.rng, drift_scale=self.drift_scale)
        platform.update_pool_index(updated_index)

        trades = settled_trades(settlement)
        allocation = allocation_metrics(
            market_outcome_from_quota_delta(
                self._initial_index,
                epoch_requests,
                self._initial_holdings,
                platform.quotas.snapshot(),
            )
        )
        period = AuctionPeriodResult(
            auction_number=self._auction_counter,
            record=record,
            premium=premium_stats(settlement, auction=self._auction_counter),
            trades=trades,
            price_ratios=price_ratio_table(
                settlement.index, record.prices, platform.fixed_prices
            ),
            utilization_before=utilization_before,
            utilization_after=updated_index.utilizations().copy(),
            migration=migration_summary(trades),
            allocation=allocation,
            shard_stats=record.result.shard_stats,
            incremental_stats=record.result.incremental_stats,
        )
        self.history.periods.append(period)
        return period

    # -- multi-period driver --------------------------------------------------------------------
    def run(self, auctions: int) -> EconomyHistory:
        """Run ``auctions`` periodic auctions through the discrete-event engine."""
        if auctions < 0:
            raise ValueError("auctions must be non-negative")

        def auction_event(_engine: SimulationEngine) -> None:
            self.run_one_auction()

        def drift_event(_engine: SimulationEngine) -> None:
            platform = self.scenario.platform
            platform.update_pool_index(
                organic_drift(platform.index, rng=self.scenario.rng, drift_scale=self.drift_scale)
            )

        self.engine.schedule_periodic(
            self.auction_period, auction_event, count=auctions, name="auction", priority=1
        )
        # drift mid-way between auctions
        self.engine.schedule_periodic(
            self.auction_period,
            drift_event,
            count=auctions,
            name="drift",
            priority=0,
            start_delay=self.auction_period / 2,
        )
        self.engine.run()
        return self.history


def run_economy(
    scenario: Scenario,
    *,
    auctions: int = 6,
    drift_scale: float = 0.015,
    preliminary_runs: int = 0,
) -> EconomyHistory:
    """Convenience wrapper: build the simulation and run ``auctions`` periods."""
    sim = MarketEconomySimulation(
        scenario, drift_scale=drift_scale, preliminary_runs=preliminary_runs
    )
    return sim.run(auctions)
