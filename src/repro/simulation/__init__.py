"""Multi-auction economy simulation.

The paper ran "six, experimental auctions over the course of several months".
This package simulates that longitudinal process: a discrete-event engine
drives periodic auction events and organic utilization drift between them,
scenario builders assemble a synthetic fleet plus an agent population plus a
trading platform, and :class:`~repro.simulation.economy.MarketEconomySimulation`
runs the whole thing and records per-auction statistics for the analysis layer.

On top of that sits the scenario subsystem: the
:mod:`~repro.simulation.catalog` of named, declarative
:class:`~repro.simulation.catalog.ScenarioSpec` presets and the
:class:`~repro.simulation.runner.ParallelRunner` that fans independent
scenarios out across a process pool (also exposed as ``python -m repro``).
"""

from repro.simulation.engine import Event, SimulationEngine
from repro.simulation.workload import demands_from_agents, priorities_from_agents, organic_drift
from repro.simulation.scenario import ScenarioConfig, Scenario, build_scenario
from repro.simulation.economy import (
    AuctionPeriodResult,
    EconomyHistory,
    MarketEconomySimulation,
)
from repro.simulation.catalog import (
    SCENARIOS,
    ScenarioSpec,
    default_sweep_names,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.simulation.runner import (
    ParallelRunner,
    ScenarioRunResult,
    SweepReport,
    run_scenario,
)

__all__ = [
    "Event",
    "SimulationEngine",
    "demands_from_agents",
    "priorities_from_agents",
    "organic_drift",
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "AuctionPeriodResult",
    "EconomyHistory",
    "MarketEconomySimulation",
    "SCENARIOS",
    "ScenarioSpec",
    "default_sweep_names",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "ParallelRunner",
    "ScenarioRunResult",
    "SweepReport",
    "run_scenario",
]
