"""Scenario assembly: fleet + agent population + trading platform.

A scenario bundles every knob an experiment needs.  The defaults match the
scale of the paper's experimental market: ~34 clusters, ~100 bidders, CPU/RAM/
disk pools, congestion-weighted reserve prices from the phi_1 curve of
Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import TeamAgent
from repro.agents.population import PopulationSpec, build_population
from repro.cluster.fleet_gen import FleetSpec, SyntheticFleet, generate_fleet
from repro.core.clock_auction import AuctionConfig
from repro.core.increment import default_increment
from repro.core.reserve import PAPER_PHI_1, ReservePricer, WeightingFunction
from repro.market.platform import TradingPlatform
from repro.market.services import ServiceCatalog, default_catalog


@dataclass(frozen=True)
class ScenarioConfig:
    """Every knob of one experiment scenario."""

    fleet: FleetSpec = field(default_factory=FleetSpec)
    population: PopulationSpec = field(default_factory=PopulationSpec)
    weighting: WeightingFunction = PAPER_PHI_1
    use_percentile_reserves: bool = False
    operator_supply_fraction: float = 0.9
    increment_cap_fraction: float = 0.10
    increment_alpha: float = 2.0
    #: Demand-collection engine for every auction in the scenario:
    #: "auto" (default), "scalar", "batch", "incremental", or "sharded" —
    #: see :attr:`repro.core.clock_auction.AuctionConfig.engine`.
    auction_engine: str = "auto"
    seed: int = 0


@dataclass
class Scenario:
    """A fully built scenario ready to simulate."""

    config: ScenarioConfig
    fleet: SyntheticFleet
    agents: list[TeamAgent]
    platform: TradingPlatform
    catalog: ServiceCatalog
    rng: np.random.Generator

    @property
    def pool_index(self):
        """The platform's current pool index."""
        return self.platform.index


def build_scenario(config: ScenarioConfig | None = None) -> Scenario:
    """Build a scenario from a config: fleet, agents, and a registered platform."""
    config = config or ScenarioConfig()
    rng = np.random.default_rng(config.seed)
    fleet = generate_fleet(config.fleet, seed=rng)
    catalog = default_catalog()
    agents = build_population(fleet, config.population, catalog=catalog, seed=rng)

    platform = TradingPlatform(
        fleet.pool_index,
        catalog=catalog,
        weighting=ReservePricer(
            weighting=config.weighting, use_percentiles=config.use_percentile_reserves
        ),
        increment=default_increment(
            fleet.pool_index.capacities(),
            cap_fraction=config.increment_cap_fraction,
            alpha=config.increment_alpha,
        ),
        auction_config=AuctionConfig(engine=config.auction_engine),
        operator_supply_fraction=config.operator_supply_fraction,
        fixed_prices=fleet.fixed_prices,
    )
    for agent in agents:
        platform.register_team(agent.name, budget=agent.budget, initial_quota=agent.holdings or None)
    return Scenario(
        config=config,
        fleet=fleet,
        agents=agents,
        platform=platform,
        catalog=catalog,
        rng=rng,
    )


def small_scenario(*, seed: int = 0, team_count: int = 24, cluster_count: int = 8) -> Scenario:
    """A scaled-down scenario for tests and quick examples."""
    return build_scenario(
        ScenarioConfig(
            fleet=FleetSpec(cluster_count=cluster_count, sites=3, machines_range=(10, 40)),
            population=PopulationSpec(team_count=team_count, budget_per_team=200_000.0),
            seed=seed,
        )
    )
