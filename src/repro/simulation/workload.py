"""Workload helpers: baseline demand extraction and organic utilization drift."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.agents.base import TeamAgent
from repro.cluster.pools import PoolIndex


def demands_from_agents(
    agents: Sequence[TeamAgent], index: PoolIndex
) -> dict[str, dict[str, float]]:
    """Each agent's home-cluster covering bundle, keyed by team name.

    This is the demand fed to the traditional (baseline) allocators so that
    the market and the baselines are compared on exactly the same underlying
    needs.
    """
    demands: dict[str, dict[str, float]] = {}
    for agent in agents:
        bundle = agent.demand.covering_bundle(agent.catalog, index)
        if bundle:
            demands[agent.name] = bundle
    return demands


def priorities_from_agents(
    agents: Sequence[TeamAgent], *, seed: int | np.random.Generator = 0
) -> dict[str, int]:
    """Operator-assigned priorities for the priority baseline.

    The operator does not know teams' true values, so priorities are assigned
    by rough team size (bigger teams historically shout louder) with noise —
    deliberately imperfect information, as the paper argues.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    sizes = {agent.name: agent.demand.total_quantity() for agent in agents}
    if not sizes:
        return {}
    cutoffs = np.percentile(list(sizes.values()), [50, 80])
    priorities: dict[str, int] = {}
    for name, size in sizes.items():
        base = 0 if size < cutoffs[0] else (1 if size < cutoffs[1] else 2)
        if rng.random() < 0.15:  # mis-ranked teams
            base = int(rng.integers(0, 3))
        priorities[name] = base
    return priorities


def organic_drift(
    index: PoolIndex,
    *,
    rng: np.random.Generator,
    drift_scale: float = 0.02,
) -> PoolIndex:
    """One period of organic utilization drift outside the market.

    Workloads grow and shrink for reasons unrelated to the auction (traffic
    growth, launches, deprecations).  Each pool's utilization takes a small
    random walk step, clipped to [0.02, 0.99].
    """
    if drift_scale < 0:
        raise ValueError("drift_scale must be non-negative")
    current = index.utilizations()
    drift = rng.normal(0.0, drift_scale, size=len(index))
    updated = np.clip(current + drift, 0.02, 0.99)
    return index.with_utilizations(updated)


def apply_settlement_to_utilization(
    index: PoolIndex,
    net_allocation: np.ndarray,
    *,
    move_out_fraction: float = 1.0,
) -> PoolIndex:
    """Project a settlement's net allocations onto pool utilizations.

    Quota bought in a pool turns into load there; quota sold (negative net
    allocation) frees load.  ``move_out_fraction`` models how much of the sold
    quota's load actually leaves by the next auction (teams take time to
    migrate); 1.0 means the move completes within the period.
    """
    if not (0.0 <= move_out_fraction <= 1.0):
        raise ValueError("move_out_fraction must lie in [0, 1]")
    capacities = np.maximum(index.capacities(), 1e-9)
    delta = np.where(net_allocation >= 0, net_allocation, net_allocation * move_out_fraction)
    updated = np.clip(index.utilizations() + delta / capacities, 0.0, 0.995)
    return index.with_utilizations(updated)
