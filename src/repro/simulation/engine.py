"""A small discrete-event simulation engine.

The economy simulation needs only a modest scheduler — periodic auction events
interleaved with utilization-drift events — but keeping it as a proper
discrete-event engine (time-ordered heap, stable tie-breaking, cancellation)
makes the simulation easy to extend (job churn, capacity turn-ups, operator
interventions) and easy to test in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True, frozen=True)
class _QueueEntry:
    time: float
    priority: int
    seq: int
    event: "Event" = field(compare=False)


@dataclass(frozen=True)
class Event:
    """A scheduled callback.

    ``priority`` breaks ties at equal times (lower runs first); ``name`` is a
    label for traces and tests.
    """

    time: float
    callback: Callable[["SimulationEngine"], None]
    name: str = ""
    priority: int = 0


class SimulationEngine:
    """Time-ordered event execution with cancellation and periodic scheduling."""

    def __init__(self, *, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self._processed = 0
        self.trace: list[tuple[float, str]] = []

    # -- clock ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return sum(1 for entry in self._queue if entry.seq not in self._cancelled)

    # -- scheduling -----------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        name: str = "",
        priority: int = 0,
    ) -> int:
        """Schedule ``callback`` to run ``delay`` time units from now; returns a handle."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        seq = next(self._seq)
        event = Event(time=self._now + delay, callback=callback, name=name, priority=priority)
        heapq.heappush(self._queue, _QueueEntry(event.time, priority, seq, event))
        return seq

    def schedule_at(
        self,
        time: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        name: str = "",
        priority: int = 0,
    ) -> int:
        """Schedule ``callback`` at an absolute time (must not be in the past)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before current time {self._now}")
        return self.schedule(time - self._now, callback, name=name, priority=priority)

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        count: int,
        name: str = "",
        priority: int = 0,
        start_delay: float | None = None,
    ) -> list[int]:
        """Schedule ``count`` repetitions of ``callback`` every ``period`` time units."""
        if period <= 0:
            raise ValueError("period must be positive")
        if count < 0:
            raise ValueError("count must be non-negative")
        first = period if start_delay is None else start_delay
        return [
            self.schedule(first + i * period, callback, name=name, priority=priority)
            for i in range(count)
        ]

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event by handle (no-op if it already ran)."""
        self._cancelled.add(handle)

    def phase(self, name: str) -> None:
        """Record a ``phase:<name>`` marker in the trace at the current time.

        Lets a long-running event callback expose its internal pipeline — bid
        ingestion, per-shard price discovery overlapped with settlement,
        finalization — to trace-based tests without scheduling extra events.
        """
        self.trace.append((self._now, f"phase:{name}"))

    # -- execution ------------------------------------------------------------------------
    def step(self) -> Event | None:
        """Execute the next pending event; returns it, or ``None`` if the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.seq in self._cancelled:
                self._cancelled.discard(entry.seq)
                continue
            self._now = entry.time
            self.trace.append((entry.time, entry.event.name))
            entry.event.callback(self)
            self._processed += 1
            return entry.event
        return None

    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue empties, ``until`` time passes, or ``max_events`` fire.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            # peek for the time bound
            next_entry = self._queue[0]
            if until is not None and next_entry.time > until:
                self._now = float(until)
                break
            if self.step() is None:
                break
            executed += 1
        else:
            if until is not None and self._now < until:
                self._now = float(until)
        return executed
