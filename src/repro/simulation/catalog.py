"""The scenario catalog: named, declarative presets for whole economies.

The paper's findings — falling premiums, load migration out of congested
clusters, price signals for capacity planning — only show up across *many*
auction epochs and many workload mixes.  This module turns "an experiment"
into a first-class value: a :class:`ScenarioSpec` composes a
:class:`~repro.cluster.fleet_gen.FleetSpec`, a
:class:`~repro.agents.population.PopulationSpec`, and the auction knobs
(including the demand-engine selection) with a run length, and a registry maps
memorable names to curated presets.

Catalog presets
---------------

========================  ======================================================
``paper-reference``       The paper's experimental market: ~100 bidders over
                          ~100 resource pools (34 clusters x 3 dimensions),
                          six periodic auctions.
``congested-fleet``       Every cluster congested; the market rations instead
                          of migrating.
``trader-heavy``          Sellers and arbitrageurs dominate; deep two-sided
                          order books.
``flash-crowd``           A sudden demand surge: oversized requests, premium
                          payers, deep budgets.
``idle-fleet-migration``  Mostly idle fleet and relocator-heavy teams; load
                          should drain out of the few busy clusters.
``10k-bidder-stress``     10 000 bidders on the incremental demand engine —
                          the smoke-tier stress scale (tagged ``stress``;
                          excluded from the default sweep).
``100k-bidder-stress``    100 000 bidders on the sharded demand engine — the
                          full stress scale the benchmarks track (tagged
                          ``stress``; excluded from the default sweep).
``smoke``                 The reduced scale used by unit tests and CI smoke
                          runs.
========================  ======================================================

Usage:

>>> from repro.simulation.catalog import get_scenario, scenario_names
>>> "paper-reference" in scenario_names()
True
>>> spec = get_scenario("paper-reference")
>>> spec.config.population.team_count, spec.auctions
(100, 6)
>>> spec.with_overrides(auctions=2, seed=7).auctions
2
>>> len(default_sweep_names()) >= 6
True
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.agents.population import PopulationSpec
from repro.agents.tournament import TournamentConfig
from repro.cluster.fleet_gen import FleetSpec, congested_fleet_spec, idle_fleet_spec
from repro.cluster.resources import RESOURCE_TYPES
from repro.simulation.scenario import Scenario, ScenarioConfig, build_scenario

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, declarative description of one multi-auction economy.

    ``config`` carries everything :func:`~repro.simulation.scenario.build_scenario`
    needs (fleet, population, reserve weighting, demand engine, seed); the
    remaining fields describe how the economy is *run* — how many periodic
    auctions, how strong the organic utilization drift between them is, and
    how many non-binding preliminary rounds precede each binding auction.

    >>> spec = ScenarioSpec(name="tiny", description="two-cluster toy",
    ...     config=ScenarioConfig(fleet=FleetSpec(cluster_count=2, sites=1,
    ...                                           machines_range=(5, 10)),
    ...                           population=PopulationSpec(team_count=4)),
    ...     auctions=1)
    >>> spec.with_overrides(seed=3).config.seed
    3
    """

    name: str
    description: str
    config: ScenarioConfig
    #: Number of periodic binding auctions to run.
    auctions: int = 6
    #: Organic utilization drift between auctions (see ``organic_drift``).
    drift_scale: float = 0.015
    #: Non-binding preliminary runs before each binding auction.
    preliminary_runs: int = 0
    #: Allocation mechanism the run uses: ``market`` (default) or a baseline
    #: policy name from :mod:`repro.mechanisms` (``fixed-price``, ``priority``,
    #: ``proportional``).  Stored as a plain name so specs stay picklable; the
    #: runner resolves it against the mechanism registry inside the worker.
    mechanism: str = "market"
    #: Free-form labels; ``stress`` excludes a scenario from the default sweep.
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"scenario name {self.name!r} must be kebab-case ([a-z0-9-], starting alphanumeric)"
            )
        if not _NAME_RE.match(self.mechanism):
            raise ValueError(
                f"scenario {self.name!r}: mechanism {self.mechanism!r} must be a "
                "kebab-case mechanism name"
            )
        if not self.description.strip():
            raise ValueError(f"scenario {self.name!r} needs a description")
        if self.auctions < 1:
            raise ValueError(f"scenario {self.name!r}: auctions must be >= 1")
        if self.drift_scale < 0:
            raise ValueError(f"scenario {self.name!r}: drift_scale must be non-negative")
        if self.preliminary_runs < 0:
            raise ValueError(f"scenario {self.name!r}: preliminary_runs must be non-negative")

    def with_overrides(
        self,
        *,
        auctions: int | None = None,
        seed: int | None = None,
        engine: str | None = None,
        drift_scale: float | None = None,
        mechanism: str | None = None,
    ) -> "ScenarioSpec":
        """A copy with the run-time knobs the CLI exposes replaced."""
        config = self.config
        if seed is not None:
            config = replace(config, seed=seed)
        if engine is not None:
            config = replace(config, auction_engine=engine)
        return replace(
            self,
            config=config,
            auctions=self.auctions if auctions is None else auctions,
            drift_scale=self.drift_scale if drift_scale is None else drift_scale,
            mechanism=self.mechanism if mechanism is None else mechanism,
        )

    def build(self) -> Scenario:
        """Materialise the scenario: fleet, population, registered platform."""
        return build_scenario(self.config)

    #: Static cost discount for non-market mechanisms: baselines skip price
    #: discovery entirely, so an epoch costs a small fraction of a market
    #: auction's clock rounds.  Only the *ranking* matters (see
    #: :meth:`cost_estimate`); measured wall times from the result store
    #: override this estimate when available.
    BASELINE_COST_FACTOR = 0.05

    def cost_estimate(self) -> float:
        """Relative runtime weight of this scenario (bidders x auctions x pools).

        The estimate only has to *rank* scenarios: the parallel runner submits
        the heaviest jobs first so a long-running stress scenario starts
        immediately instead of serialising behind a queue of quick ones
        (longest-job-first tightens the pool's makespan).  Baseline-mechanism
        runs are discounted by :data:`BASELINE_COST_FACTOR` — they allocate in
        one pass instead of iterating clock rounds.

        >>> get_scenario("10k-bidder-stress").cost_estimate() > get_scenario("smoke").cost_estimate()
        True
        >>> spec = get_scenario("paper-reference")
        >>> spec.with_overrides(mechanism="priority").cost_estimate() < spec.cost_estimate()
        True
        """
        pools = self.config.fleet.cluster_count * len(RESOURCE_TYPES)
        weight = float(self.config.population.team_count * self.auctions * pools)
        if self.mechanism != "market":
            weight *= self.BASELINE_COST_FACTOR
        return weight

    def cost_key(self) -> tuple[str, str, str, int]:
        """The result-store key measured wall times are looked up under.

        Includes the engine and auction count alongside the scenario and
        mechanism: a one-auction smoke of a heavy scenario, or a scalar-engine
        run of a batch-engine workload, is not a valid cost measurement for
        the full job and must not poison sweep ordering.
        """
        return (self.name, self.mechanism, self.config.auction_engine, self.auctions)

    def summary(self) -> dict[str, object]:
        """The scalar facts ``python -m repro list`` displays."""
        return {
            "name": self.name,
            "clusters": self.config.fleet.cluster_count,
            "teams": self.config.population.team_count,
            "auctions": self.auctions,
            "engine": self.config.auction_engine,
            "mechanism": self.mechanism,
            "seed": self.config.seed,
            "tags": sorted(self.tags),
            "description": self.description,
        }


#: The registry: scenario name -> spec.  Populated by :func:`register_scenario`.
SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the catalog; rejects duplicate names.

    Returns the spec so presets can be registered at definition site.
    """
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name; unknown names list what *is* available."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; available: {known}") from None


def default_sweep_names() -> list[str]:
    """The scenarios ``python -m repro sweep`` runs by default.

    Everything in the catalog except scenarios tagged ``stress`` (an order
    of magnitude heavier than the rest; ask for those explicitly, via
    ``sweep --all`` or ``run <name>``).
    """
    return [name for name in scenario_names() if "stress" not in SCENARIOS[name].tags]


# ---------------------------------------------------------------------------
# Curated presets.
# ---------------------------------------------------------------------------

#: The paper's experimental market: "around 100 bidders and 100 system-level
#: resources" (Section III-C-4) — 34 clusters x 3 resource dimensions = 102
#: pools, 100 teams, six periodic auctions.  This spec is also the source of
#: truth for :data:`repro.experiments.config.PAPER_SCALE`.
PAPER_REFERENCE = register_scenario(
    ScenarioSpec(
        name="paper-reference",
        description="The paper's market: 100 bidders x ~100 pools, 6 auctions",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=34, machines_range=(50, 400)),
            population=PopulationSpec(team_count=100, budget_per_team=50_000.0),
            seed=2009,
        ),
        auctions=6,
        tags=frozenset({"paper"}),
    )
)

register_scenario(
    ScenarioSpec(
        name="congested-fleet",
        description="Every cluster congested: rationing, not migration",
        config=ScenarioConfig(
            fleet=congested_fleet_spec(),
            population=PopulationSpec(
                team_count=90,
                budget_per_team=60_000.0,
                congested_home_bias=0.9,
            ),
            seed=2009,
        ),
        auctions=6,
        tags=frozenset({"fleet"}),
    )
)

register_scenario(
    ScenarioSpec(
        name="trader-heavy",
        description="Sellers and arbitrageurs dominate the order book",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=30, machines_range=(50, 300)),
            population=PopulationSpec(
                team_count=90,
                budget_per_team=50_000.0,
                strategy_mix={
                    "seller": 0.30,
                    "arbitrageur": 0.15,
                    "market_tracker": 0.25,
                    "fixed_anchor": 0.10,
                    "relocator": 0.10,
                    "premium_payer": 0.05,
                    "lowball": 0.05,
                },
            ),
            seed=2009,
        ),
        auctions=6,
        tags=frozenset({"population"}),
    )
)

register_scenario(
    ScenarioSpec(
        name="flash-crowd",
        description="Sudden demand surge: oversized requests, premium payers",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=24, machines_range=(50, 300)),
            population=PopulationSpec(
                team_count=120,
                budget_per_team=150_000.0,
                demand_scale=0.04,
                congested_home_bias=0.9,
                strategy_mix={
                    "premium_payer": 0.30,
                    "market_tracker": 0.30,
                    "fixed_anchor": 0.20,
                    "relocator": 0.15,
                    "lowball": 0.05,
                },
            ),
            seed=2009,
        ),
        auctions=4,
        drift_scale=0.03,
        tags=frozenset({"population"}),
    )
)

register_scenario(
    ScenarioSpec(
        name="idle-fleet-migration",
        description="Mostly idle fleet; relocators drain the busy clusters",
        config=ScenarioConfig(
            fleet=idle_fleet_spec(),
            population=PopulationSpec(
                team_count=80,
                budget_per_team=50_000.0,
                congested_home_bias=0.95,
                strategy_mix={
                    "relocator": 0.45,
                    "market_tracker": 0.25,
                    "fixed_anchor": 0.10,
                    "seller": 0.15,
                    "lowball": 0.05,
                },
            ),
            seed=2009,
        ),
        auctions=6,
        tags=frozenset({"migration"}),
    )
)

register_scenario(
    ScenarioSpec(
        name="10k-bidder-stress",
        description="10 000 bidders on the incremental engine (smoke-tier stress scale)",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=34, machines_range=(100, 400)),
            population=PopulationSpec(
                team_count=10_000,
                budget_per_team=20_000.0,
                demand_scale=0.001,
            ),
            auction_engine="incremental",
            seed=2009,
        ),
        auctions=2,
        tags=frozenset({"stress"}),
    )
)

#: The full stress scale: 100k bidders whose strategies stay in their home
#: cluster, so the bid matrix decomposes into one independent shard per
#: cluster and the sharded engine's per-shard price discovery pays off.
register_scenario(
    ScenarioSpec(
        name="100k-bidder-stress",
        description="100 000 bidders on the sharded engine (full stress scale)",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=34, machines_range=(100, 400)),
            population=PopulationSpec(
                team_count=100_000,
                budget_per_team=20_000.0,
                demand_scale=0.0001,
                strategy_mix={
                    "fixed_anchor": 0.45,
                    "premium_payer": 0.20,
                    "lowball": 0.20,
                    "seller": 0.15,
                },
            ),
            auction_engine="sharded",
            seed=2009,
        ),
        auctions=1,
        tags=frozenset({"stress"}),
    )
)

#: The reduced scale the unit tests and CI smoke runs use; also the source of
#: truth for :data:`repro.experiments.config.TEST_SCALE`.
SMOKE = register_scenario(
    ScenarioSpec(
        name="smoke",
        description="Reduced scale for unit tests and CI smoke runs",
        config=ScenarioConfig(
            fleet=FleetSpec(cluster_count=8, machines_range=(10, 40)),
            population=PopulationSpec(team_count=24, budget_per_team=200_000.0),
            seed=2009,
        ),
        auctions=3,
        tags=frozenset({"ci"}),
    )
)


# ---------------------------------------------------------------------------
# Tournament presets: evolving-population runs layered on the scenarios above.
# ---------------------------------------------------------------------------

#: The registry: tournament name -> config.  Populated by
#: :func:`register_tournament`; names must not collide with scenario names
#: because generation runs are stored under ``<tournament>-g<N>``.
TOURNAMENTS: dict[str, TournamentConfig] = {}


def register_tournament(config: TournamentConfig) -> TournamentConfig:
    """Add a tournament preset; rejects duplicate names.

    >>> register_tournament(get_tournament("paper-tournament"))
    Traceback (most recent call last):
    ...
    ValueError: tournament 'paper-tournament' is already registered
    """
    if config.name in TOURNAMENTS:
        raise ValueError(f"tournament {config.name!r} is already registered")
    if config.base_scenario not in SCENARIOS:
        raise ValueError(
            f"tournament {config.name!r}: unknown base scenario {config.base_scenario!r}"
        )
    TOURNAMENTS[config.name] = config
    return config


def tournament_names() -> list[str]:
    """All registered tournament names, sorted.

    >>> "paper-tournament" in tournament_names()
    True
    """
    return sorted(TOURNAMENTS)


def get_tournament(name: str) -> TournamentConfig:
    """Look up a tournament by name; unknown names list what *is* available."""
    try:
        return TOURNAMENTS[name]
    except KeyError:
        known = ", ".join(tournament_names())
        raise KeyError(f"unknown tournament {name!r}; available: {known}") from None


#: The headline tournament: five generations of the paper's market, three
#: replicate seeds per generation.  The tier-1 acceptance test asserts its
#: mean bid premium falls 95%-CI-separated from generation 0 to the final
#: generation — the paper's live-deployment finding as a tested emergent
#: property.
PAPER_TOURNAMENT = register_tournament(
    TournamentConfig(
        name="paper-tournament",
        description="5 evolving generations of the paper's 100-bidder market",
        base_scenario="paper-reference",
        generations=5,
        replicates=3,
    )
)

#: Reduced scale for CI smoke runs (`make smoke`) and quick local checks.
register_tournament(
    TournamentConfig(
        name="smoke-tournament",
        description="2 quick generations at smoke scale for CI",
        base_scenario="smoke",
        generations=2,
        replicates=2,
    )
)
