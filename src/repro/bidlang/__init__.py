"""Tree-based bidding language (TBBL-like).

The paper's users "announce bids encapsulating their desired bundles and
willingness-to-pay criteria in a tree-based bidding language similar to TBBL"
(Parkes et al., ICE).  This package provides:

* an AST of bid-tree nodes (:mod:`repro.bidlang.ast`) — leaves name a quantity
  of one resource pool, internal nodes combine children with ``AND`` (take all
  children), ``XOR`` (take exactly one), or ``CHOOSE k`` (take exactly ``k``);
* a parser for a compact s-expression syntax and for JSON-style nested
  mappings (:mod:`repro.bidlang.parser`);
* validation against a pool index (:mod:`repro.bidlang.validate`);
* flattening of a bid tree into the flat XOR bundle set consumed by the clock
  auction (:mod:`repro.bidlang.flatten`).
"""

from repro.bidlang.ast import (
    BidNode,
    PoolLeaf,
    ClusterLeaf,
    AndNode,
    XorNode,
    ChooseNode,
    and_,
    xor,
    choose,
    pool,
    cluster_bundle,
)
from repro.bidlang.flatten import (
    FlattenLimitError,
    batch_engine_from_trees,
    flatten,
    flatten_to_matrix,
    to_bundle_set,
    tree_bid,
)
from repro.bidlang.parser import parse_sexpr, parse_json, BidLanguageSyntaxError
from repro.bidlang.validate import validate_tree, BidTreeValidationError

__all__ = [
    "BidNode",
    "PoolLeaf",
    "ClusterLeaf",
    "AndNode",
    "XorNode",
    "ChooseNode",
    "and_",
    "xor",
    "choose",
    "pool",
    "cluster_bundle",
    "flatten",
    "flatten_to_matrix",
    "batch_engine_from_trees",
    "FlattenLimitError",
    "to_bundle_set",
    "tree_bid",
    "parse_sexpr",
    "parse_json",
    "BidLanguageSyntaxError",
    "validate_tree",
    "BidTreeValidationError",
]
