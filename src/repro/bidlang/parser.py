"""Parsers for the bidding language: s-expressions and JSON-style mappings.

Two equivalent surface syntaxes are provided so bids can be written by hand
(s-expressions) or generated programmatically / stored (JSON):

S-expression form::

    (xor
      (cluster cluster-01 100 400 10000)
      (and (pool cluster-02/cpu 100) (pool cluster-02/ram 400))
      (choose 1 (cluster cluster-03 100 400 10000)
                (cluster cluster-04 100 400 10000)))

JSON form::

    {"xor": [
        {"cluster": "cluster-01", "cpu": 100, "ram": 400, "disk": 10000},
        {"and": [{"pool": "cluster-02/cpu", "quantity": 100},
                  {"pool": "cluster-02/ram", "quantity": 400}]},
        {"choose": 1, "options": [...]}
    ]}
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.bidlang.ast import (
    AndNode,
    BidNode,
    ChooseNode,
    ClusterLeaf,
    PoolLeaf,
    XorNode,
)


class BidLanguageSyntaxError(ValueError):
    """The bid text or mapping does not conform to the bidding language."""


# ---------------------------------------------------------------------------
# S-expression syntax
# ---------------------------------------------------------------------------
def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    current = ""
    for ch in text:
        if ch in "()":
            if current:
                tokens.append(current)
                current = ""
            tokens.append(ch)
        elif ch.isspace():
            if current:
                tokens.append(current)
                current = ""
        else:
            current += ch
    if current:
        tokens.append(current)
    return tokens


def _parse_tokens(tokens: list[str], pos: int) -> tuple[Any, int]:
    if pos >= len(tokens):
        raise BidLanguageSyntaxError("unexpected end of input")
    token = tokens[pos]
    if token == "(":
        items: list[Any] = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _parse_tokens(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise BidLanguageSyntaxError("missing closing parenthesis")
        return items, pos + 1
    if token == ")":
        raise BidLanguageSyntaxError("unexpected closing parenthesis")
    return token, pos + 1


def _number(token: Any, context: str) -> float:
    try:
        return float(token)
    except (TypeError, ValueError) as exc:
        raise BidLanguageSyntaxError(f"expected a number in {context}, got {token!r}") from exc


def _build_sexpr(item: Any) -> BidNode:
    if not isinstance(item, list) or not item:
        raise BidLanguageSyntaxError(f"expected a parenthesised form, got {item!r}")
    head = item[0]
    if not isinstance(head, str):
        raise BidLanguageSyntaxError(f"expected an operator name, got {head!r}")
    op = head.lower()
    args = item[1:]
    if op == "pool":
        if len(args) != 2:
            raise BidLanguageSyntaxError("(pool NAME QUANTITY) takes exactly two arguments")
        return PoolLeaf(pool_name=str(args[0]), quantity=_number(args[1], "pool leaf"))
    if op == "cluster":
        if len(args) != 4:
            raise BidLanguageSyntaxError("(cluster NAME CPU RAM DISK) takes exactly four arguments")
        return ClusterLeaf(
            cluster=str(args[0]),
            cpu=_number(args[1], "cluster leaf"),
            ram=_number(args[2], "cluster leaf"),
            disk=_number(args[3], "cluster leaf"),
        )
    if op == "and":
        if not args:
            raise BidLanguageSyntaxError("(and ...) needs at least one child")
        return AndNode(parts=tuple(_build_sexpr(a) for a in args))
    if op == "xor":
        if not args:
            raise BidLanguageSyntaxError("(xor ...) needs at least one child")
        return XorNode(alternatives=tuple(_build_sexpr(a) for a in args))
    if op == "choose":
        if len(args) < 2:
            raise BidLanguageSyntaxError("(choose K child...) needs a count and at least one child")
        k = int(_number(args[0], "choose count"))
        return ChooseNode(k=k, options=tuple(_build_sexpr(a) for a in args[1:]))
    raise BidLanguageSyntaxError(f"unknown operator {head!r}")


def parse_sexpr(text: str) -> BidNode:
    """Parse one bid tree written in the s-expression syntax.

    Examples
    --------
    >>> tree = parse_sexpr("(xor (pool a/cpu 10) (pool b/cpu 10))")
    >>> type(tree).__name__, tree.leaf_count()
    ('XorNode', 2)
    >>> tree.to_sexpr()
    '(xor (pool a/cpu 10.0) (pool b/cpu 10.0))'
    """
    tokens = _tokenize(text)
    if not tokens:
        raise BidLanguageSyntaxError("empty bid text")
    tree, pos = _parse_tokens(tokens, 0)
    if pos != len(tokens):
        raise BidLanguageSyntaxError("trailing content after the bid expression")
    return _build_sexpr(tree)


# ---------------------------------------------------------------------------
# JSON-style mapping syntax
# ---------------------------------------------------------------------------
def parse_json(data: Mapping[str, Any]) -> BidNode:
    """Parse one bid tree expressed as nested mappings (already-decoded JSON).

    Examples
    --------
    >>> tree = parse_json({"xor": [{"pool": "a/cpu", "quantity": 10},
    ...                            {"cluster": "b", "cpu": 10, "ram": 40}]})
    >>> type(tree).__name__, tree.leaf_count()
    ('XorNode', 2)
    """
    if not isinstance(data, Mapping):
        raise BidLanguageSyntaxError(f"expected a mapping, got {type(data).__name__}")
    if "pool" in data:
        return PoolLeaf(pool_name=str(data["pool"]), quantity=_number(data.get("quantity"), "pool leaf"))
    if "cluster" in data:
        return ClusterLeaf(
            cluster=str(data["cluster"]),
            cpu=_number(data.get("cpu", 0.0), "cluster leaf"),
            ram=_number(data.get("ram", 0.0), "cluster leaf"),
            disk=_number(data.get("disk", 0.0), "cluster leaf"),
        )
    if "and" in data:
        children = data["and"]
        _require_children(children, "and")
        return AndNode(parts=tuple(parse_json(child) for child in children))
    if "xor" in data:
        children = data["xor"]
        _require_children(children, "xor")
        return XorNode(alternatives=tuple(parse_json(child) for child in children))
    if "choose" in data:
        options = data.get("options")
        _require_children(options, "choose")
        k = int(_number(data["choose"], "choose count"))
        return ChooseNode(k=k, options=tuple(parse_json(child) for child in options))
    raise BidLanguageSyntaxError(
        f"mapping does not name a known node type (keys: {sorted(data.keys())})"
    )


def _require_children(children: Any, op: str) -> None:
    if not isinstance(children, Sequence) or isinstance(children, (str, bytes)) or not children:
        raise BidLanguageSyntaxError(f"{op!r} node needs a non-empty list of children")
