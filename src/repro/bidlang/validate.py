"""Validation of bid trees against a pool index and structural limits."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bidlang.ast import (
    AndNode,
    BidNode,
    ChooseNode,
    ClusterLeaf,
    PoolLeaf,
    XorNode,
)
from repro.cluster.pools import PoolIndex


class BidTreeValidationError(ValueError):
    """A bid tree references unknown pools or violates structural limits."""


@dataclass(frozen=True)
class ValidationLimits:
    """Structural limits applied during validation."""

    max_depth: int = 12
    max_leaves: int = 256
    #: Reject demands/offers larger than this multiple of the pool's capacity;
    #: a request for 10x an entire cluster is almost certainly a typo.
    max_capacity_multiple: float = 1.0


def _iter_leaves(node: BidNode):
    if isinstance(node, (PoolLeaf, ClusterLeaf)):
        yield node
        return
    for child in node.children():
        yield from _iter_leaves(child)


def validate_tree(
    node: BidNode,
    index: PoolIndex,
    *,
    limits: ValidationLimits | None = None,
) -> list[str]:
    """Validate a bid tree, returning a list of problems (empty list = valid).

    Checks:

    * structural limits (depth, leaf count);
    * every referenced pool / cluster exists in ``index``;
    * no single leaf demands or offers more than ``max_capacity_multiple``
      times the pool's total capacity;
    * CHOOSE counts are within range (enforced by the AST itself).

    Examples
    --------
    >>> from repro.bidlang.ast import pool
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> validate_tree(pool("a/cpu", 10), index)
    []
    >>> validate_tree(pool("mars/cpu", 10), index)
    ["unknown pool 'mars/cpu'"]
    """
    limits = limits or ValidationLimits()
    problems: list[str] = []

    if node.depth() > limits.max_depth:
        problems.append(f"bid tree depth {node.depth()} exceeds limit {limits.max_depth}")
    if node.leaf_count() > limits.max_leaves:
        problems.append(f"bid tree has {node.leaf_count()} leaves, limit is {limits.max_leaves}")

    known_clusters = set(index.clusters())
    for leaf in _iter_leaves(node):
        if isinstance(leaf, PoolLeaf):
            if leaf.pool_name not in index:
                problems.append(f"unknown pool {leaf.pool_name!r}")
                continue
            pool = index.pool(leaf.pool_name)
            if abs(leaf.quantity) > limits.max_capacity_multiple * pool.capacity:
                problems.append(
                    f"leaf quantity {leaf.quantity:g} for {leaf.pool_name} exceeds "
                    f"{limits.max_capacity_multiple:g}x pool capacity {pool.capacity:g}"
                )
        else:  # ClusterLeaf
            if leaf.cluster not in known_clusters:
                problems.append(f"unknown cluster {leaf.cluster!r}")
                continue
            for pool_name, quantity in leaf.quantities().items():
                if pool_name not in index:
                    problems.append(f"unknown pool {pool_name!r}")
                    continue
                pool = index.pool(pool_name)
                if abs(quantity) > limits.max_capacity_multiple * pool.capacity:
                    problems.append(
                        f"leaf quantity {quantity:g} for {pool_name} exceeds "
                        f"{limits.max_capacity_multiple:g}x pool capacity {pool.capacity:g}"
                    )
    return problems


def require_valid(node: BidNode, index: PoolIndex, *, limits: ValidationLimits | None = None) -> None:
    """Raise :class:`BidTreeValidationError` if ``node`` does not validate."""
    problems = validate_tree(node, index, limits=limits)
    if problems:
        raise BidTreeValidationError("; ".join(problems))
