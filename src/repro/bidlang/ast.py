"""AST nodes for the tree-based bidding language.

A bid tree expresses which *combinations* of resources a team would accept.
Leaves name concrete quantities; internal nodes express combinatorial
structure:

* :class:`AndNode` — the bidder needs **all** children together (e.g. CPU and
  colocated RAM and disk in the same cluster);
* :class:`XorNode` — the bidder wants **exactly one** of the children (e.g.
  "this bundle in cluster A *or* the equivalent bundle in cluster B");
* :class:`ChooseNode` — the bidder wants exactly ``k`` of the ``n`` children
  (a bounded form of OR that keeps flattening tractable).

Quantities follow the paper's sign convention: positive quantities are
demanded, negative quantities are offered for sale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


class BidNode:
    """Base class for all bid-tree nodes."""

    def children(self) -> tuple["BidNode", ...]:
        """Child nodes (empty for leaves)."""
        return ()

    def depth(self) -> int:
        """Height of the subtree rooted at this node (leaves have depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def leaf_count(self) -> int:
        """Number of leaves in the subtree."""
        kids = self.children()
        if not kids:
            return 1
        return sum(child.leaf_count() for child in kids)

    def to_sexpr(self) -> str:
        """Render the subtree in the s-expression syntax accepted by the parser."""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class PoolLeaf(BidNode):
    """A quantity of one named resource pool, e.g. 100 units of ``cluster-07/cpu``."""

    pool_name: str
    quantity: float

    def __post_init__(self) -> None:
        if not self.pool_name:
            raise ValueError("pool_name must be non-empty")
        if self.quantity == 0:
            raise ValueError("a pool leaf must name a non-zero quantity")

    def to_sexpr(self) -> str:
        return f"(pool {self.pool_name} {self.quantity!r})"


@dataclass(frozen=True)
class ClusterLeaf(BidNode):
    """A CPU/RAM/disk triple in one cluster — the common 'colocated bundle' shorthand.

    Equivalent to an :class:`AndNode` over three :class:`PoolLeaf` children but
    far more convenient, since almost every real request is of this shape
    ("CPUs in a particular place are probably not useful unless the user can
    get colocated memory, disk, and network resources as well").
    """

    cluster: str
    cpu: float = 0.0
    ram: float = 0.0
    disk: float = 0.0

    def __post_init__(self) -> None:
        if not self.cluster:
            raise ValueError("cluster must be non-empty")
        if self.cpu == 0 and self.ram == 0 and self.disk == 0:
            raise ValueError("a cluster leaf must name at least one non-zero quantity")

    def quantities(self) -> dict[str, float]:
        """``{pool name: quantity}`` for the non-zero dimensions."""
        out: dict[str, float] = {}
        if self.cpu:
            out[f"{self.cluster}/cpu"] = self.cpu
        if self.ram:
            out[f"{self.cluster}/ram"] = self.ram
        if self.disk:
            out[f"{self.cluster}/disk"] = self.disk
        return out

    def to_sexpr(self) -> str:
        return f"(cluster {self.cluster} {self.cpu!r} {self.ram!r} {self.disk!r})"


@dataclass(frozen=True)
class AndNode(BidNode):
    """All children must be obtained together."""

    parts: tuple[BidNode, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise ValueError("an AND node needs at least one child")

    def children(self) -> tuple[BidNode, ...]:
        return self.parts

    def to_sexpr(self) -> str:
        inner = " ".join(child.to_sexpr() for child in self.parts)
        return f"(and {inner})"


@dataclass(frozen=True)
class XorNode(BidNode):
    """Exactly one of the children is obtained (the paper's XOR indifference)."""

    alternatives: tuple[BidNode, ...]

    def __post_init__(self) -> None:
        if len(self.alternatives) < 1:
            raise ValueError("an XOR node needs at least one child")

    def children(self) -> tuple[BidNode, ...]:
        return self.alternatives

    def to_sexpr(self) -> str:
        inner = " ".join(child.to_sexpr() for child in self.alternatives)
        return f"(xor {inner})"


@dataclass(frozen=True)
class ChooseNode(BidNode):
    """Exactly ``k`` of the children are obtained (bounded OR)."""

    k: int
    options: tuple[BidNode, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.options) < 1:
            raise ValueError("a CHOOSE node needs at least one child")
        if not (1 <= self.k <= len(self.options)):
            raise ValueError(
                f"CHOOSE k={self.k} is out of range for {len(self.options)} children"
            )

    def children(self) -> tuple[BidNode, ...]:
        return self.options

    def to_sexpr(self) -> str:
        inner = " ".join(child.to_sexpr() for child in self.options)
        return f"(choose {self.k} {inner})"


# -- fluent constructors ---------------------------------------------------------
def pool(pool_name: str, quantity: float) -> PoolLeaf:
    """Leaf: ``quantity`` units of ``pool_name``.

    Examples
    --------
    >>> pool("a/cpu", 100).to_sexpr()
    '(pool a/cpu 100)'
    """
    return PoolLeaf(pool_name=pool_name, quantity=quantity)


def cluster_bundle(cluster: str, *, cpu: float = 0.0, ram: float = 0.0, disk: float = 0.0) -> ClusterLeaf:
    """Leaf: a colocated CPU/RAM/disk bundle in ``cluster``.

    Examples
    --------
    >>> cluster_bundle("a", cpu=100, ram=400).quantities()
    {'a/cpu': 100, 'a/ram': 400}
    """
    return ClusterLeaf(cluster=cluster, cpu=cpu, ram=ram, disk=disk)


def and_(*parts: BidNode) -> AndNode:
    """AND combinator: the bidder needs all parts together.

    Examples
    --------
    >>> and_(pool("a/cpu", 10), pool("a/ram", 40)).leaf_count()
    2
    """
    return AndNode(parts=tuple(parts))


def xor(*alternatives: BidNode) -> XorNode:
    """XOR combinator: the bidder wants exactly one alternative.

    Examples
    --------
    >>> xor(pool("a/cpu", 10), pool("b/cpu", 10)).to_sexpr()
    '(xor (pool a/cpu 10) (pool b/cpu 10))'
    """
    return XorNode(alternatives=tuple(alternatives))


def choose(k: int, *options: BidNode) -> ChooseNode:
    """CHOOSE-k combinator: exactly ``k`` of the options.

    Examples
    --------
    >>> choose(2, pool("a/cpu", 1), pool("b/cpu", 1), pool("a/ram", 1)).k
    2
    """
    return ChooseNode(k=k, options=tuple(options))
