"""Flattening bid trees into the XOR bundle sets the clock auction consumes.

A bid tree denotes a set of acceptable resource combinations.  Flattening
computes that set explicitly as quantity vectors:

* a leaf denotes a single combination (its own quantities);
* ``AND`` denotes the cross-product of its children's sets, summing quantities;
* ``XOR`` denotes the union of its children's sets;
* ``CHOOSE k`` denotes, for every k-subset of children, the cross-product sum.

The result is exactly the ``Q_u`` indifference set of the paper's bid model.
Because ``AND``/``CHOOSE`` can blow up combinatorially, flattening enforces a
configurable bundle-count limit and raises :class:`FlattenLimitError` when it
is exceeded.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from repro.bidlang.ast import AndNode, BidNode, ChooseNode, ClusterLeaf, PoolLeaf, XorNode
from repro.cluster.pools import PoolIndex
from repro.core.batch import BatchDemandEngine
from repro.core.bids import Bid
from repro.core.bundles import BundleSet


class FlattenLimitError(RuntimeError):
    """The bid tree expands to more bundles than the configured limit."""


def _merge(a: dict[str, float], b: Mapping[str, float]) -> dict[str, float]:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0.0) + value
    return out


def _dedupe(combos: list[dict[str, float]]) -> list[dict[str, float]]:
    seen: set[tuple[tuple[str, float], ...]] = set()
    result: list[dict[str, float]] = []
    for combo in combos:
        key = tuple(sorted((k, round(v, 12)) for k, v in combo.items() if v != 0.0))
        if key not in seen:
            seen.add(key)
            result.append(combo)
    return result


def _cross_product(
    groups: Sequence[list[dict[str, float]]], *, max_bundles: int
) -> list[dict[str, float]]:
    """All ways of picking one combination per group, quantities summed."""
    acc: list[dict[str, float]] = [{}]
    for group in groups:
        new_acc: list[dict[str, float]] = []
        for base in acc:
            for option in group:
                new_acc.append(_merge(base, option))
                if len(new_acc) > max_bundles:
                    raise FlattenLimitError(
                        f"bid tree expands to more than {max_bundles} bundles"
                    )
        acc = new_acc
    return acc


def flatten(node: BidNode, *, max_bundles: int = 512) -> list[dict[str, float]]:
    """Expand a bid tree into its list of acceptable ``{pool name: quantity}`` combinations.

    Parameters
    ----------
    node:
        Root of the bid tree.
    max_bundles:
        Upper bound on the size of the expansion; exceeding it raises
        :class:`FlattenLimitError` rather than silently producing an enormous
        XOR set the auction would be slow to evaluate.

    Examples
    --------
    >>> from repro.bidlang.ast import and_, pool, xor
    >>> tree = and_(pool("a/cpu", 10), xor(pool("a/ram", 40), pool("b/ram", 40)))
    >>> flatten(tree) == [{"a/cpu": 10, "a/ram": 40}, {"a/cpu": 10, "b/ram": 40}]
    True
    """
    if isinstance(node, PoolLeaf):
        return [{node.pool_name: node.quantity}]
    if isinstance(node, ClusterLeaf):
        return [node.quantities()]
    if isinstance(node, XorNode):
        combos: list[dict[str, float]] = []
        for child in node.alternatives:
            combos.extend(flatten(child, max_bundles=max_bundles))
            if len(combos) > max_bundles:
                raise FlattenLimitError(f"bid tree expands to more than {max_bundles} bundles")
        return _dedupe(combos)
    if isinstance(node, AndNode):
        groups = [flatten(child, max_bundles=max_bundles) for child in node.parts]
        return _dedupe(_cross_product(groups, max_bundles=max_bundles))
    if isinstance(node, ChooseNode):
        combos = []
        groups = [flatten(child, max_bundles=max_bundles) for child in node.options]
        for subset in combinations(range(len(groups)), node.k):
            chosen = [groups[i] for i in subset]
            combos.extend(_cross_product(chosen, max_bundles=max_bundles))
            if len(combos) > max_bundles:
                raise FlattenLimitError(f"bid tree expands to more than {max_bundles} bundles")
        return _dedupe(combos)
    raise TypeError(f"unknown bid tree node type: {type(node).__name__}")


def to_bundle_set(node: BidNode, index: PoolIndex, *, max_bundles: int = 512) -> BundleSet:
    """Flatten a bid tree into a :class:`repro.core.bundles.BundleSet` over ``index``.

    Examples
    --------
    >>> from repro.bidlang.ast import cluster_bundle, xor
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> tree = xor(cluster_bundle("a", cpu=10), cluster_bundle("b", cpu=10))
    >>> len(to_bundle_set(tree, index))
    2
    """
    combos = flatten(node, max_bundles=max_bundles)
    vectors: list[np.ndarray] = [index.vector(combo) for combo in combos]
    return BundleSet(index, vectors)


def flatten_to_matrix(node: BidNode, index: PoolIndex, *, max_bundles: int = 512) -> np.ndarray:
    """Flatten a bid tree straight into a dense ``(k, R)`` quantity matrix.

    The rows are exactly the bundle vectors of :func:`to_bundle_set`, in the
    same order — this is the raw array form the batch demand engine stacks.

    Examples
    --------
    >>> from repro.bidlang.ast import cluster_bundle, xor
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> tree = xor(cluster_bundle("a", cpu=10), cluster_bundle("b", cpu=10))
    >>> flatten_to_matrix(tree, index).shape
    (2, 4)
    """
    return to_bundle_set(node, index, max_bundles=max_bundles).matrix.copy()


def batch_engine_from_trees(
    specs: Sequence[tuple[str, BidNode, float]],
    index: PoolIndex,
    *,
    max_bundles: int = 512,
) -> BatchDemandEngine:
    """Flatten many ``(bidder, tree, limit)`` bids into one batch demand engine.

    The one-stop path from the bidding language to the vectorized auction
    core: every tree is expanded to its XOR bundle matrix, the matrices are
    stacked row-wise with per-bidder limits, and the result answers whole
    rounds of price queries at once.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.bidlang.ast import cluster_bundle
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> engine = batch_engine_from_trees(
    ...     [("team-a", cluster_bundle("a", cpu=10), 500.0),
    ...      ("team-b", cluster_bundle("b", cpu=20), 800.0)],
    ...     index,
    ... )
    >>> engine.respond_all(np.ones(len(index))).active_count
    2
    """
    bids = [
        tree_bid(bidder, node, index, limit, max_bundles=max_bundles)
        for bidder, node, limit in specs
    ]
    return BatchDemandEngine(index, bids)


def tree_bid(
    bidder: str,
    node: BidNode,
    index: PoolIndex,
    limit: float,
    *,
    max_bundles: int = 512,
    **metadata: object,
) -> Bid:
    """Build a sealed :class:`repro.core.bids.Bid` directly from a bid tree.

    ``limit`` follows the paper's convention: positive for a maximum payment,
    negative for a minimum revenue (selling).

    Examples
    --------
    >>> from repro.bidlang.ast import cluster_bundle, xor
    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> bid = tree_bid("team", xor(cluster_bundle("a", cpu=10), cluster_bundle("b", cpu=10)),
    ...                index, limit=250.0)
    >>> bid.bidder, len(bid.bundles), bid.limit
    ('team', 2, 250.0)
    """
    return Bid(
        bidder=bidder,
        bundles=to_bundle_set(node, index, max_bundles=max_bundles),
        limit=float(limit),
        metadata=dict(metadata),
    )
