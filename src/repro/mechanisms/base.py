"""The allocation-mechanism protocol and registry.

The paper's headline claim is *comparative*: the market reduces "the excessive
shortages and surpluses of more traditional allocation methods".  Making that
claim reproducible requires running the very same scenario under the market
*and* under the traditional policies, through the same pipeline, measured by
the same metrics.  An :class:`AllocationMechanism` is the unit of that
comparison: anything that can take a :class:`~repro.simulation.catalog.ScenarioSpec`
and produce a full :class:`~repro.simulation.runner.ScenarioRunResult`
trajectory — one entry per epoch for every series, exactly like the market.

The registry maps kebab-case mechanism names to implementations, mirroring the
scenario catalog: specs carry a ``mechanism`` *name* (a plain string, so they
stay picklable across process pools) and the runner resolves it via
:func:`get_mechanism` inside the worker.

>>> "market" in mechanism_names()
True
>>> get_mechanism("market").name
'market'
>>> sorted(baseline_mechanism_names()) == sorted(n for n in mechanism_names() if n != "market")
True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec
    from repro.simulation.runner import ScenarioRunResult

#: The mechanism every spec runs under unless told otherwise.
DEFAULT_MECHANISM = "market"


@runtime_checkable
class AllocationMechanism(Protocol):
    """Anything that can run a scenario end to end under one allocation policy.

    Implementations must honour the shared contract the property suite
    enforces for every registered mechanism:

    * ``run`` is **deterministic** for a fixed spec (same seed, same result);
    * every per-epoch series of the returned result has exactly
      ``spec.auctions`` entries;
    * every metric in :data:`repro.results.metrics.METRICS` is extractable
      from the result.
    """

    #: Registry name (kebab-case), recorded as store provenance.
    name: str
    #: One-line description shown by the CLI.
    description: str

    def run(self, spec: "ScenarioSpec") -> "ScenarioRunResult":
        """Run ``spec`` start to finish in the current process."""
        ...  # pragma: no cover - protocol


#: The registry: mechanism name -> implementation.
MECHANISMS: dict[str, AllocationMechanism] = {}


def register_mechanism(mechanism: AllocationMechanism) -> AllocationMechanism:
    """Add a mechanism to the registry; rejects duplicate names."""
    if mechanism.name in MECHANISMS:
        raise ValueError(f"mechanism {mechanism.name!r} is already registered")
    MECHANISMS[mechanism.name] = mechanism
    return mechanism


def mechanism_names() -> list[str]:
    """All registered mechanism names, the default first, then sorted."""
    rest = sorted(name for name in MECHANISMS if name != DEFAULT_MECHANISM)
    return ([DEFAULT_MECHANISM] if DEFAULT_MECHANISM in MECHANISMS else []) + rest


def baseline_mechanism_names() -> list[str]:
    """The registered non-market mechanisms, sorted."""
    return [name for name in mechanism_names() if name != DEFAULT_MECHANISM]


def get_mechanism(name: str) -> AllocationMechanism:
    """Look up a mechanism by name; unknown names list what *is* available."""
    try:
        return MECHANISMS[name]
    except KeyError:
        known = ", ".join(mechanism_names())
        raise KeyError(f"unknown mechanism {name!r}; available: {known}") from None


def resolve_mechanisms(selector: str | None) -> list[str]:
    """Expand a CLI mechanism selector into registry names.

    ``None`` means "the default" (market), ``"all"`` means every registered
    mechanism, and anything else is a comma-separated list of names (each
    validated against the registry).

    >>> resolve_mechanisms(None)
    ['market']
    >>> resolve_mechanisms("all") == mechanism_names()
    True
    >>> resolve_mechanisms("market,priority")
    ['market', 'priority']
    """
    if selector is None:
        return [DEFAULT_MECHANISM]
    if selector == "all":
        return mechanism_names()
    names = [part.strip() for part in selector.split(",") if part.strip()]
    if not names:
        raise ValueError("mechanism selector is empty")
    for name in names:
        get_mechanism(name)  # raises with the available list on unknown names
    return names
