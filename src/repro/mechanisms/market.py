"""The market mechanism: the paper's periodic combinatorial clock auctions.

This is the pre-existing :class:`~repro.simulation.economy.MarketEconomySimulation`
pipeline wrapped behind the :class:`~repro.mechanisms.base.AllocationMechanism`
contract.  The wrapper adds nothing to the economics — for a spec whose
``mechanism`` is ``"market"``, round traces are bit-identical to running the
simulation directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mechanisms.base import DEFAULT_MECHANISM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec
    from repro.simulation.runner import ScenarioRunResult


class MarketMechanism:
    """Periodic clock auctions with learning agents (the paper's mechanism)."""

    name = DEFAULT_MECHANISM
    description = "periodic combinatorial clock auctions with adaptive bidders"

    def run(self, spec: "ScenarioSpec") -> "ScenarioRunResult":
        return self.simulate(spec.build(), spec)

    def simulate(self, scenario, spec: "ScenarioSpec") -> "ScenarioRunResult":
        """Run the mechanism against an already-built scenario.

        Split from :meth:`run` so the mechanism benchmark can time price
        discovery and settlement without the (mechanism-independent) fleet
        generation that dominates a cold start.  Consumes the scenario.
        """
        from repro.simulation.economy import MarketEconomySimulation
        from repro.simulation.runner import ScenarioRunResult

        sim = MarketEconomySimulation(
            scenario,
            drift_scale=spec.drift_scale,
            preliminary_runs=spec.preliminary_runs,
        )
        history = sim.run(spec.auctions)
        return ScenarioRunResult.from_history(spec, scenario, history)
