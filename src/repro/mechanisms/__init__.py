"""Allocation mechanisms: one protocol over the market and every baseline.

The registry lets the scenario/runner/store pipeline treat "how resources get
allocated" as a first-class dimension, exactly like the demand engine: a
:class:`~repro.simulation.catalog.ScenarioSpec` names its mechanism, the
parallel runner resolves it by name inside the worker, and the result store
keys provenance by ``(engine, mechanism)``.

Registered mechanisms:

================  ==========================================================
``market``        The paper's periodic combinatorial clock auctions with
                  adaptive bidders (:class:`MarketMechanism`).
``fixed-price``   First-come-first-served grants at posted fixed prices.
``priority``      Operator-assigned priorities served highest first.
``proportional``  Equal fractional shares of oversubscribed pools.
``lottery``       Budget-weighted random service order (randomised fairness,
                  still no price signal).
================  ==========================================================

>>> from repro.mechanisms import get_mechanism, mechanism_names
>>> mechanism_names()
['market', 'fixed-price', 'lottery', 'priority', 'proportional']
>>> get_mechanism("fixed-price").name
'fixed-price'
"""

from repro.mechanisms.base import (
    DEFAULT_MECHANISM,
    MECHANISMS,
    AllocationMechanism,
    baseline_mechanism_names,
    get_mechanism,
    mechanism_names,
    register_mechanism,
    resolve_mechanisms,
)
from repro.mechanisms.baseline import (
    BASELINE_ALLOCATORS,
    BaselineEconomySimulation,
    BaselineHistory,
    BaselineMechanism,
    BaselinePeriodResult,
    one_shot_outcomes,
    zero_migration_summary,
)
from repro.mechanisms.market import MarketMechanism

register_mechanism(MarketMechanism())
register_mechanism(
    BaselineMechanism(
        "fixed-price",
        "first-come-first-served grants at posted fixed prices",
        BASELINE_ALLOCATORS["fixed-price"],
    )
)
register_mechanism(
    BaselineMechanism(
        "priority",
        "operator-assigned priorities served highest first",
        BASELINE_ALLOCATORS["priority"],
    )
)
register_mechanism(
    BaselineMechanism(
        "proportional",
        "equal fractional shares of oversubscribed pools",
        BASELINE_ALLOCATORS["proportional"],
    )
)
register_mechanism(
    BaselineMechanism(
        "lottery",
        "budget-weighted random service order (lottery scheduling)",
        BASELINE_ALLOCATORS["lottery"],
    )
)

__all__ = [
    "DEFAULT_MECHANISM",
    "MECHANISMS",
    "AllocationMechanism",
    "BASELINE_ALLOCATORS",
    "BaselineEconomySimulation",
    "BaselineHistory",
    "BaselineMechanism",
    "BaselinePeriodResult",
    "MarketMechanism",
    "baseline_mechanism_names",
    "get_mechanism",
    "mechanism_names",
    "one_shot_outcomes",
    "register_mechanism",
    "resolve_mechanisms",
    "zero_migration_summary",
]
