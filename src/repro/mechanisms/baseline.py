"""Traditional allocation policies as first-class mechanisms.

The paper motivates the market by contrast with manual quota setting (Section
I): fixed-price first-come-first-served grants, operator-assigned priorities,
and equal proportional shares.  :mod:`repro.baselines` implements those
policies as *one-shot* allocators; this module drives them through the same
longitudinal structure as the market economy so every catalog scenario can run
under either kind of mechanism and produce directly comparable trajectories.

Per epoch, a :class:`BaselineEconomySimulation`:

1. re-reads every team's current demand (profiles grow between epochs exactly
   as they do for market agents);
2. asks the policy to grant each team's *residual* need — what it demands
   beyond the quota it already holds — against the fleet's **current, drifted**
   available capacity (a team keeps the quota it was granted in earlier
   epochs; traditional quotas are sticky).  Requests are capped by budget at
   the operator's **posted fixed prices**: quota was never free, teams buy it
   at ``c(r)``-anchored fixed rates whatever the pool's congestion — which is
   precisely the inefficiency the market removes, since clearing prices in
   idle clusters fall *below* the fixed price and stretch the same budget
   over more resources (Figure 6);
3. projects the new grants onto pool utilizations and applies the same organic
   drift model the market simulation uses;
4. records both measurement families of :mod:`repro.baselines.comparison`:
   the cumulative team-level coverage (everything granted so far against the
   epoch's demand, via :func:`~repro.baselines.comparison.allocation_metrics`
   — the same measurement applied to the market's cumulative quota delta) and
   the pool-level imbalance (capacity overcommitted past safe headroom /
   stranded idle, via
   :func:`~repro.baselines.comparison.utilization_imbalance`).

What baselines *cannot* do is exactly what the trajectories expose: there is
no price signal steering demand out of congested home clusters, so grants
pile onto the hot pools teams already live in (shortage: hot pools run out
of headroom) while idle clusters stay untouched (surplus: cold capacity
stays stranded).  The market's congestion-weighted reserve prices repel
demand from hot pools and invite it into cold ones, shrinking both numbers.

Premium and clearing-round series are degenerate by construction — every grant
happens at the posted fixed price (premium 1.0) with no price discovery
(0 clock rounds) — which is also why baseline runs are far cheaper than
market runs (see ``benchmarks/test_bench_mechanisms.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.baselines.comparison import (
    AllocationMetrics,
    allocation_metrics,
    utilization_imbalance,
)
from repro.baselines.fixed_price import FixedPriceAllocator
from repro.baselines.lottery import LotteryAllocator
from repro.baselines.priority import PriorityAllocator
from repro.baselines.proportional import ProportionalShareAllocator
from repro.baselines.requests import AllocationOutcome, QuotaRequest
from repro.simulation.scenario import Scenario
from repro.simulation.workload import (
    apply_settlement_to_utilization,
    demands_from_agents,
    organic_drift,
    priorities_from_agents,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec
    from repro.simulation.runner import ScenarioRunResult

#: Allocation smaller than this does not count as a settled trade.
_TRADE_TOL = 1e-9

#: The one-shot allocator behind each baseline mechanism name.
BASELINE_ALLOCATORS: dict[str, Callable[[], object]] = {
    "fixed-price": FixedPriceAllocator,
    "priority": PriorityAllocator,
    "proportional": ProportionalShareAllocator,
    "lottery": LotteryAllocator,
}


def zero_migration_summary() -> dict[str, float]:
    """The migration block of a mechanism that never moves load.

    Key-compatible with :func:`repro.analysis.utilization_stats.migration_summary`
    but all-zero (and NaN-free, so canonical reports stay JSON-round-trippable).
    """
    return {
        "median_bid_percentile": 0.0,
        "median_offer_percentile": 0.0,
        "bid_quantity_share_in_underutilized": 0.0,
        "bid_count": 0.0,
        "offer_count": 0.0,
    }


@dataclass
class BaselinePeriodResult:
    """Everything recorded about one baseline allocation epoch."""

    epoch: int
    #: Cost-weighted value of this epoch's *new* grants at fixed prices.
    revenue: float
    #: Number of (team, pool) grants made this epoch.
    grant_count: int
    #: Fraction of all cost-weighted demand covered by cumulative holdings.
    grant_rate: float
    #: Pool utilizations after grants and organic drift were applied.
    utilization_after: np.ndarray
    #: Cost-weighted capacity overcommitted / stranded after this epoch (the
    #: paper's pool-level "shortages and surpluses"; see
    #: :func:`repro.baselines.comparison.utilization_imbalance`).
    shortage_cost: float
    surplus_cost: float
    #: Cumulative team-level coverage vs this epoch's demand.
    allocation: AllocationMetrics


@dataclass
class BaselineHistory:
    """The full record of a multi-epoch baseline run."""

    policy: str
    periods: list[BaselinePeriodResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.periods)

    def allocation_series(self) -> list[AllocationMetrics]:
        """Cumulative shortage/surplus/satisfaction metrics per epoch."""
        return [period.allocation for period in self.periods]


class BaselineEconomySimulation:
    """Drive a one-shot allocation policy through periodic epochs.

    The longitudinal shell mirrors :class:`~repro.simulation.economy.MarketEconomySimulation`:
    demand grows, utilization drifts, and each epoch re-evaluates the policy
    against the fleet as it currently stands — but grants are sticky and there
    is no bidding, no price discovery, and no migration.
    """

    def __init__(
        self,
        scenario: Scenario,
        allocator,
        *,
        policy: str,
        drift_scale: float = 0.015,
    ):
        if drift_scale < 0:
            raise ValueError("drift_scale must be non-negative")
        self.scenario = scenario
        self.allocator = allocator
        self.policy = policy
        self.drift_scale = drift_scale
        self.history = BaselineHistory(policy=policy)
        self._initial_index = scenario.pool_index
        #: Cumulative granted quota per team (vectors over the pool index).
        self._holdings: dict[str, np.ndarray] = {}
        #: Budget each team has left to buy quota at the posted fixed prices.
        self._budgets: dict[str, float] = {
            agent.name: float(agent.budget) for agent in scenario.agents
        }
        # Operator priorities are assigned once, up front: the operator ranks
        # teams by perceived importance, not per epoch.  Uses the scenario RNG
        # so a fixed seed fixes the whole run.
        self._priorities = priorities_from_agents(scenario.agents, seed=scenario.rng)
        # Stochastic allocators (the lottery) derive their stream from the
        # scenario RNG the same way, so a fixed seed fixes every draw.  The
        # hook is conditional: deterministic policies consume nothing and
        # their trajectories stay bit-identical to pre-lottery builds.
        if hasattr(allocator, "reseed"):
            allocator.reseed(scenario.rng)
        # Demand is re-derived analytically each epoch instead of re-running
        # the covering-bundle translation: covering bundles are linear in the
        # requested quantity and a profile's growth is one multiplicative
        # factor per epoch, so epoch t's demand vector is exactly
        # ``base * (1 + growth) ** (t - 1)``.  This is what keeps a baseline
        # epoch allocator-bound instead of bid-entry-bound (see
        # ``benchmarks/test_bench_mechanisms.py``).
        self._base_demand: dict[str, np.ndarray] = {
            team: self._initial_index.vector(bundle)
            for team, bundle in demands_from_agents(
                scenario.agents, self._initial_index
            ).items()
        }
        self._growth: dict[str, float] = {
            agent.name: float(agent.demand.growth_rate) for agent in scenario.agents
        }
        #: Posted fixed prices as a vector (constant for the whole run).
        self._fixed_prices = self._initial_index.vector(scenario.platform.fixed_prices)

    def _held(self, team: str) -> np.ndarray:
        return self._holdings.get(team, np.zeros(len(self._initial_index)))

    def _epoch_demands(self, epoch: int) -> dict[str, np.ndarray]:
        """Demand vector per team at ``epoch`` (1-based), grown analytically."""
        return {
            team: base * (1.0 + self._growth.get(team, 0.0)) ** (epoch - 1)
            for team, base in self._base_demand.items()
        }

    def _residual_requests(
        self, demands: dict[str, np.ndarray], fixed_prices: np.ndarray
    ) -> list[QuotaRequest]:
        """What each team still needs beyond the quota it already holds.

        Quota is bought, not gifted: a residual request costing more than the
        team's remaining budget at the posted fixed prices is scaled down to
        what the team can afford.  This is the flip side of the market's
        advantage — a market bidder whose home cluster is congested chases
        clearing prices *below* the fixed rate in idle clusters, so the same
        budget provisions more resources there.
        """
        index = self.scenario.pool_index
        names = index.names
        requests: list[QuotaRequest] = []
        for team, demand in demands.items():
            residual = np.clip(demand - self._held(team), 0.0, None)
            cost = float(np.dot(residual, fixed_prices))
            budget = self._budgets.get(team, 0.0)
            if cost > budget:
                residual = residual * (budget / cost if cost > 0 else 0.0)
            quantities = {
                names[i]: float(residual[i]) for i in np.flatnonzero(residual > 1e-12)
            }
            if quantities:
                requests.append(
                    QuotaRequest(
                        team=team,
                        quantities=quantities,
                        priority=self._priorities.get(team, 0),
                        # Lottery tickets: what the team can still spend.
                        weight=budget,
                    )
                )
        return requests

    def _cumulative_outcome(self, demands: dict[str, np.ndarray]) -> AllocationOutcome:
        """Everything granted so far, judged against the current demand.

        The outcome is anchored to the *initial* pool index: shortage and
        satisfaction only need unit costs (constant), and surplus then reads
        as "capacity that was free before the first epoch and that the
        mechanism has still never put to use" — the same yardstick the market
        simulation applies to its cumulative quota delta.
        """
        outcome = AllocationOutcome(index=self._initial_index, policy=self.policy)
        for team, demand in demands.items():
            outcome.record(team, demand, self._held(team))
        for team, held in self._holdings.items():
            if team not in outcome.requested and np.any(held > 0):
                outcome.record(team, np.zeros(len(self._initial_index)), held)
        return outcome

    def run_one_epoch(self) -> BaselinePeriodResult:
        """Run a single allocation epoch and record its statistics."""
        scenario = self.scenario
        index = scenario.pool_index
        demands = self._epoch_demands(len(self.history.periods) + 1)
        fixed_prices = self._fixed_prices

        epoch_outcome = self.allocator.allocate(
            index, self._residual_requests(demands, fixed_prices)
        )
        epoch_granted = epoch_outcome.total_granted()
        grant_count = 0
        for team, granted in epoch_outcome.granted.items():
            grant_count += int(np.count_nonzero(granted > _TRADE_TOL))
            self._holdings[team] = self._held(team) + granted
            spend = float(np.dot(granted, fixed_prices))
            self._budgets[team] = max(0.0, self._budgets.get(team, 0.0) - spend)

        revenue = float(np.dot(epoch_granted, fixed_prices))

        metrics = allocation_metrics(self._cumulative_outcome(demands))

        # Project grants onto utilization and drift, exactly as the market
        # simulation projects its settlements between auctions.
        updated = apply_settlement_to_utilization(index, epoch_granted)
        updated = organic_drift(updated, rng=scenario.rng, drift_scale=self.drift_scale)
        scenario.platform.update_pool_index(updated)

        shortage, surplus = utilization_imbalance(self._initial_index, updated.utilizations())
        period = BaselinePeriodResult(
            epoch=len(self.history.periods) + 1,
            revenue=revenue,
            grant_count=grant_count,
            grant_rate=metrics.grant_rate,
            utilization_after=updated.utilizations().copy(),
            shortage_cost=shortage,
            surplus_cost=surplus,
            allocation=metrics,
        )
        self.history.periods.append(period)
        return period

    def run(self, epochs: int) -> BaselineHistory:
        """Run ``epochs`` allocation epochs."""
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        for _ in range(epochs):
            self.run_one_epoch()
        return self.history


class BaselineMechanism:
    """One traditional policy wrapped behind the mechanism contract."""

    def __init__(self, name: str, description: str, allocator_factory: Callable[[], object]):
        self.name = name
        self.description = description
        self.allocator_factory = allocator_factory

    def run(self, spec: "ScenarioSpec") -> "ScenarioRunResult":
        return self.simulate(spec.build(), spec)

    def simulate(self, scenario: Scenario, spec: "ScenarioSpec") -> "ScenarioRunResult":
        """Run the policy against an already-built scenario (consumes it).

        Split from :meth:`run` for the same reason as
        :meth:`repro.mechanisms.market.MarketMechanism.simulate`: the
        mechanism benchmark compares allocation work, not fleet generation.
        """
        from repro.simulation.runner import ScenarioRunResult, _round, _round_list

        sim = BaselineEconomySimulation(
            scenario,
            self.allocator_factory(),
            policy=self.name,
            drift_scale=spec.drift_scale,
        )
        history = sim.run(spec.auctions)
        periods = history.periods
        mean_fixed_price = float(np.mean(list(scenario.platform.fixed_prices.values())))
        return ScenarioRunResult(
            scenario=spec.name,
            seed=spec.config.seed,
            engine=spec.config.auction_engine,
            auctions=len(periods),
            clusters=len(scenario.fleet.clusters),
            pools=len(scenario.pool_index),
            teams=len(scenario.agents),
            # Every grant happens at the posted fixed price: premium == 1.0.
            median_premium=[1.0] * len(periods),
            mean_premium=[1.0] * len(periods),
            settled_fraction=_round_list(p.grant_rate for p in periods),
            # No price discovery: zero clock rounds per epoch.
            clearing_rounds=[0] * len(periods),
            mean_clearing_price=[_round(mean_fixed_price)] * len(periods),
            revenue=_round_list(p.revenue for p in periods),
            mean_utilization=_round_list(
                float(np.mean(p.utilization_after)) for p in periods
            ),
            utilization_spread=_round_list(
                float(np.std(p.utilization_after)) for p in periods
            ),
            migration=zero_migration_summary(),
            trade_count=sum(p.grant_count for p in periods),
            mechanism=self.name,
            shortage_cost=_round_list(p.shortage_cost for p in periods),
            surplus_cost=_round_list(p.surplus_cost for p in periods),
            satisfied_fraction=_round_list(
                p.allocation.satisfied_fraction for p in periods
            ),
        )


def one_shot_outcomes(
    scenario: Scenario, requests: Sequence[QuotaRequest]
) -> list[AllocationOutcome]:
    """Run every baseline policy once against a scenario's current fleet.

    The single-epoch view used by ``experiments/baseline_comparison.py``:
    equivalent to each baseline mechanism's first epoch.
    """
    index = scenario.pool_index
    return [factory().allocate(index, requests) for factory in BASELINE_ALLOCATORS.values()]
