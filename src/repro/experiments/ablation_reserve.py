"""Ablation: congestion-weighted vs flat reserve pricing (Section IV).

The reserve prices are the operator's steering wheel: priced off utilization
they "guide the users as they set their bids towards under-utilized
resources".  This ablation runs the same agent population under flat-cost
reserves and under each of the paper's three weighting curves, and compares
how much bid-side demand lands in under-utilized pools, the premium paid for
congested pools, and the post-auction utilization balance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.utilization_stats import migration_summary
from repro.core.reserve import (
    PAPER_PHI_1,
    PAPER_PHI_2,
    PAPER_PHI_3,
    FlatWeight,
    WeightingFunction,
)
from repro.experiments.config import ExperimentConfig, PAPER_SCALE
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.scenario import build_scenario


@dataclass(frozen=True)
class ReserveAblationRow:
    """Outcome of one reserve-pricing choice."""

    weighting: str
    median_bid_percentile: float
    median_offer_percentile: float
    bid_share_in_underutilized: float
    settled_fraction: float
    utilization_spread_after: float
    congested_premium: float


@dataclass(frozen=True)
class ReserveAblationResult:
    rows: tuple[ReserveAblationRow, ...]

    def row(self, weighting_prefix: str) -> ReserveAblationRow:
        for row in self.rows:
            if row.weighting.startswith(weighting_prefix):
                return row
        raise KeyError(weighting_prefix)


def _run_once(config: ExperimentConfig, weighting: WeightingFunction, label: str) -> ReserveAblationRow:
    scenario = build_scenario(replace(config.scenario_config(), weighting=weighting))
    sim = MarketEconomySimulation(
        scenario, drift_scale=config.drift_scale, preliminary_runs=config.preliminary_runs
    )
    period = sim.run_one_auction()
    migration = migration_summary(period.trades)
    ratios = period.price_ratios
    congested = [row.max_ratio() for row in ratios if row.mean_utilization > 0.75]
    idle = [row.max_ratio() for row in ratios if row.mean_utilization < 0.4]
    congested_premium = (
        (sum(congested) / len(congested)) / (sum(idle) / len(idle))
        if congested and idle and sum(idle) > 0
        else 1.0
    )
    import numpy as np

    return ReserveAblationRow(
        weighting=label,
        median_bid_percentile=migration["median_bid_percentile"],
        median_offer_percentile=migration["median_offer_percentile"],
        bid_share_in_underutilized=migration["bid_quantity_share_in_underutilized"],
        settled_fraction=period.settled_fraction,
        utilization_spread_after=float(np.std(period.utilization_after)),
        congested_premium=congested_premium,
    )


def run_ablation_reserve(config: ExperimentConfig = PAPER_SCALE) -> ReserveAblationResult:
    """Run one auction under flat reserves and under each Figure 2 curve."""
    rows = [
        _run_once(config, FlatWeight(1.0), "flat(cost only)"),
        _run_once(config, PAPER_PHI_1, "phi1 exp(2(x-0.5))"),
        _run_once(config, PAPER_PHI_2, "phi2 exp(x-0.5)"),
        _run_once(config, PAPER_PHI_3, "phi3 1/(1.5-x)"),
    ]
    return ReserveAblationResult(rows=tuple(rows))


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_ablation_reserve()
    print("Reserve-pricing ablation (Section IV)")
    header = (
        f"{'weighting':<22} {'bid pct':>8} {'offer pct':>10} {'bid@idle':>9} "
        f"{'settled':>8} {'spread':>7} {'congested premium':>18}"
    )
    print(header)
    for row in result.rows:
        print(
            f"{row.weighting:<22} {row.median_bid_percentile:>8.1f} {row.median_offer_percentile:>10.1f} "
            f"{row.bid_share_in_underutilized:>8.1%} {row.settled_fraction:>7.1%} "
            f"{row.utilization_spread_after:>7.3f} {row.congested_premium:>18.2f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
