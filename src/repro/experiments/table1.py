"""Table I: bid premium statistics across consecutive auctions.

The paper reports, for its last three auctions, the median and mean of the bid
premium ``gamma_u`` (Eq. 5) and the percentage of trades settled.  The
headline finding is that the *median* premium decreased sharply over time as
bidders learned to track the market prices, while the mean stayed noisy
(sellers entering token reserve prices, low-ballers, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.premium import PremiumStats, premium_trend
from repro.experiments.config import ExperimentConfig, PAPER_SCALE
from repro.simulation.economy import EconomyHistory, MarketEconomySimulation
from repro.simulation.scenario import build_scenario


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table I."""

    rows: tuple[PremiumStats, ...]
    trend: dict[str, float]
    history: EconomyHistory

    def last_rows(self, count: int = 3) -> tuple[PremiumStats, ...]:
        """The last ``count`` auctions (the paper tabulates its final three)."""
        return self.rows[-count:]


def run_table1(config: ExperimentConfig = PAPER_SCALE, *, auctions: int | None = None) -> Table1Result:
    """Run a multi-auction economy and compute the premium statistics per auction."""
    scenario = build_scenario(config.scenario_config())
    sim = MarketEconomySimulation(
        scenario, drift_scale=config.drift_scale, preliminary_runs=config.preliminary_runs
    )
    history = sim.run(auctions if auctions is not None else config.auctions)
    rows = tuple(history.premium_rows())
    return Table1Result(rows=rows, trend=premium_trend(list(rows)), history=history)


def main() -> None:  # pragma: no cover - CLI entry point
    from repro.analysis.reports import render_premium_table

    result = run_table1()
    print(render_premium_table(result.rows))
    print()
    print("trend:", {k: round(v, 4) for k, v in result.trend.items()})


if __name__ == "__main__":  # pragma: no cover
    main()
