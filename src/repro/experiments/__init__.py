"""Experiment drivers: one module per table / figure of the paper's evaluation.

Every driver exposes a ``run_*`` function returning a plain result object and a
``main()`` that prints the regenerated rows/series, so each experiment can be
run standalone (``python -m repro.experiments.figure6``) or from the benchmark
harness in ``benchmarks/``.

| Paper artifact | Driver |
|----------------|--------|
| Figure 2 (weighting curves)              | :mod:`repro.experiments.figure2` |
| Figure 6 (price / fixed-price ratios)    | :mod:`repro.experiments.figure6` |
| Figure 7 (utilization of settled trades) | :mod:`repro.experiments.figure7` |
| Table I (bid premium statistics)         | :mod:`repro.experiments.table1` |
| Section III-C-4 (scaling claim)          | :mod:`repro.experiments.scaling` |
| Figure 1 / Algorithm 1 (clock rounds)    | :mod:`repro.experiments.clock_rounds` |
| Shortage/surplus vs. baselines           | :mod:`repro.experiments.baseline_comparison` |
| Increment-policy ablation                | :mod:`repro.experiments.ablation_increment` |
| Reserve-pricing ablation                 | :mod:`repro.experiments.ablation_reserve` |
"""

from repro.experiments.config import ExperimentConfig, PAPER_SCALE, TEST_SCALE

__all__ = ["ExperimentConfig", "PAPER_SCALE", "TEST_SCALE"]
