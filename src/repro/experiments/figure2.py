"""Figure 2: example utilization-weighted pricing curves.

The paper plots three weighting functions over normalized utilization 0-100%:

* ``phi1(x) = exp(2(x - 0.5))``
* ``phi2(x) = exp(x - 0.5)``
* ``phi3(x) = 1 / (1.5 - x)``

This driver regenerates the three series, verifies each satisfies the five
Section IV-A properties, and reports the key landmark values (the multiple at
0%, 50%, and 100% utilization) so the reproduced curves can be compared to the
published plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reserve import (
    PAPER_PHI_1,
    PAPER_PHI_2,
    PAPER_PHI_3,
    WeightingFunction,
    check_weighting_properties,
    sweep_curve,
)


@dataclass(frozen=True)
class Figure2Curve:
    """One regenerated curve of Figure 2."""

    label: str
    xs: np.ndarray
    ys: np.ndarray
    properties: dict[str, bool]

    @property
    def at_zero(self) -> float:
        return float(self.ys[0])

    @property
    def at_half(self) -> float:
        return float(self.ys[len(self.ys) // 2])

    @property
    def at_full(self) -> float:
        return float(self.ys[-1])


@dataclass(frozen=True)
class Figure2Result:
    """All three curves."""

    curves: tuple[Figure2Curve, ...]

    def curve(self, label_prefix: str) -> Figure2Curve:
        for curve in self.curves:
            if curve.label.startswith(label_prefix):
                return curve
        raise KeyError(label_prefix)


def run_figure2(*, points: int = 101) -> Figure2Result:
    """Regenerate the three Figure 2 curves with ``points`` samples each."""
    named: list[tuple[str, WeightingFunction]] = [
        ("phi1(x) = exp(2(x-0.5))", PAPER_PHI_1),
        ("phi2(x) = exp(x-0.5)", PAPER_PHI_2),
        ("phi3(x) = 1/(1.5-x)", PAPER_PHI_3),
    ]
    curves = []
    for label, phi in named:
        xs, ys = sweep_curve(phi, points=points)
        curves.append(
            Figure2Curve(label=label, xs=xs, ys=ys, properties=check_weighting_properties(phi))
        )
    return Figure2Result(curves=tuple(curves))


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_figure2()
    print("Figure 2: utilization-weighted pricing curves")
    print(f"{'curve':<28} {'phi(0)':>8} {'phi(0.5)':>9} {'phi(1)':>8}  properties")
    for curve in result.curves:
        ok = "all ok" if all(curve.properties.values()) else str(curve.properties)
        print(
            f"{curve.label:<28} {curve.at_zero:>8.3f} {curve.at_half:>9.3f} {curve.at_full:>8.3f}  {ok}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
