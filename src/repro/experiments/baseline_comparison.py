"""Shortages, surpluses, and utilization balance: market vs traditional allocation.

The paper's motivation (Section I) is that manual quota policies produce
"uneven utilization, significant shortages and surpluses in certain resource
pools"; its conclusion claims the market produced "significant improvements in
overall utilization".  This experiment quantifies that on a common workload:
the same per-team demands are run through the fixed-price FCFS, proportional
share, and priority baselines and through the market, and the shortage /
surplus / balance metrics are compared.

This module is a thin one-shot wrapper over the allocation-mechanism layer
(:mod:`repro.mechanisms`): the baseline policies come from the mechanism
registry's allocators, applied once against the scenario's initial fleet.
For the longitudinal version of the same comparison — every mechanism driven
through per-epoch trajectories, persisted with provenance, and compared with
replicate statistics — run ``python -m repro sweep --mechanism all`` followed
by ``python -m repro compare-mechanisms <scenario>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.settlement_stats import utilization_balance_improvement
from repro.baselines.comparison import (
    AllocationMetrics,
    allocation_metrics,
    market_outcome_from_quota_delta,
    requests_from_demands,
)
from repro.experiments.config import ExperimentConfig, PAPER_SCALE
from repro.mechanisms.baseline import one_shot_outcomes
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.scenario import build_scenario
from repro.simulation.workload import demands_from_agents, priorities_from_agents


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Metrics per policy plus the market's utilization-balance improvement."""

    metrics: dict[str, AllocationMetrics]
    balance: dict[str, float]

    def market(self) -> AllocationMetrics:
        return self.metrics["market"]

    def baseline(self, policy: str) -> AllocationMetrics:
        return self.metrics[policy]


def run_baseline_comparison(
    config: ExperimentConfig = PAPER_SCALE, *, market_auctions: int | None = None
) -> BaselineComparisonResult:
    """Compare the market against the three traditional allocation baselines.

    The baselines are one-shot policies; the market is given
    ``market_auctions`` periodic auctions (default: the config's auction
    count) because teams that lose one auction learn and return with better
    bids — that iteration *is* the mechanism.  The market's provisioning is
    then the cumulative quota acquired across those auctions.
    """
    scenario = build_scenario(config.scenario_config())
    index = scenario.pool_index
    demands = demands_from_agents(scenario.agents, index)
    priorities = priorities_from_agents(scenario.agents, seed=scenario.rng)
    requests = requests_from_demands(index, demands, priorities=priorities)

    outcomes = one_shot_outcomes(scenario, requests)

    initial_holdings = scenario.platform.quotas.snapshot()
    sim = MarketEconomySimulation(
        scenario, drift_scale=config.drift_scale, preliminary_runs=config.preliminary_runs
    )
    history = sim.run(market_auctions if market_auctions is not None else config.auctions)
    final_holdings = scenario.platform.quotas.snapshot()
    market_outcome = market_outcome_from_quota_delta(index, requests, initial_holdings, final_holdings)
    outcomes.append(market_outcome)

    metrics = {outcome.policy: allocation_metrics(outcome) for outcome in outcomes}
    balance = utilization_balance_improvement(history.periods[0].settlement)
    return BaselineComparisonResult(metrics=metrics, balance=balance)


def main() -> None:  # pragma: no cover - CLI entry point
    from repro.analysis.reports import render_table

    result = run_baseline_comparison()
    rows = [
        [
            name,
            metric.shortage_cost,
            metric.surplus_cost,
            metric.utilization_spread,
            metric.satisfied_fraction,
            metric.grant_rate,
        ]
        for name, metric in result.metrics.items()
    ]
    print(
        render_table(
            ["policy", "shortage $", "surplus $", "util spread", "satisfied", "grant rate"],
            rows,
            title="Market vs traditional allocation",
            float_format="{:.3f}",
        )
    )
    print()
    print("utilization balance:", {k: round(v, 4) for k, v in result.balance.items()})


if __name__ == "__main__":  # pragma: no cover
    main()
