"""Figure 1 / Algorithm 1: the price-update loop of the clock auction.

Figure 1 is a schematic, not a data plot, so the reproducible artifact is the
round-by-round trace of the loop it depicts: at each round the auctioneer
collects proxy demands, computes excess demand, and raises the prices of
over-demanded pools.  This driver runs a reference scenario with the trace
enabled and summarises how prices and excess demand evolve per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.base import MarketView
from repro.agents.population import PopulationSpec, build_population
from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.core.clock_auction import AscendingClockAuction, AuctionConfig, AuctionOutcome
from repro.core.increment import default_increment
from repro.core.reserve import PAPER_PHI_1, ReservePricer
from repro.market.services import default_catalog


@dataclass(frozen=True)
class ClockRoundsResult:
    """The trace of one reference clock auction."""

    outcome: AuctionOutcome
    #: Number of pools whose price moved at least once.
    moved_pools: int
    #: Largest relative price rise over the reserve price across pools.
    max_relative_rise: float

    @property
    def rounds(self) -> int:
        return self.outcome.round_count

    def excess_demand_norms(self) -> list[float]:
        """The L1 norm of positive excess demand per round (monotonically shrinking pressure)."""
        return [float(np.clip(r.excess_demand, 0.0, None).sum()) for r in self.outcome.rounds]


def run_clock_rounds(
    *,
    cluster_count: int = 12,
    team_count: int = 40,
    seed: int = 0,
    record_bidder_demands: bool = False,
) -> ClockRoundsResult:
    """Run the reference clock auction with full round tracing."""
    fleet = generate_fleet(FleetSpec(cluster_count=cluster_count, machines_range=(20, 80)), seed=seed)
    catalog = default_catalog()
    agents = build_population(
        fleet, PopulationSpec(team_count=team_count), catalog=catalog, seed=seed
    )
    index = fleet.pool_index
    view = MarketView(
        index=index,
        displayed_prices={p.name: p.unit_cost for p in index},
        fixed_prices=dict(fleet.fixed_prices),
        auction_number=1,
        topology=fleet.topology,
    )
    bids = []
    for agent in agents:
        bids.extend(agent.prepare_bids(view))
    reserve = ReservePricer(weighting=PAPER_PHI_1).reserve_prices(index)
    auction = AscendingClockAuction(
        index,
        bids,
        reserve_prices=reserve,
        supply=index.available() * 0.9,
        increment=default_increment(index.capacities()),
        config=AuctionConfig(record_bidder_demands=record_bidder_demands),
    )
    outcome = auction.run()
    rises = (outcome.final_prices - reserve) / np.maximum(reserve, 1e-9)
    return ClockRoundsResult(
        outcome=outcome,
        moved_pools=int(np.count_nonzero(outcome.final_prices > reserve + 1e-12)),
        max_relative_rise=float(rises.max(initial=0.0)),
    )


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_clock_rounds()
    print("Algorithm 1 price-update loop trace")
    print(f"rounds: {result.rounds}, pools with price movement: {result.moved_pools}")
    print(f"max price rise over reserve: {result.max_relative_rise:.1%}")
    norms = result.excess_demand_norms()
    for t, norm in enumerate(norms[:: max(1, len(norms) // 10)]):
        print(f"  round {t * max(1, len(norms) // 10):>4d}: positive excess demand L1 = {norm:.1f}")


if __name__ == "__main__":  # pragma: no cover
    main()
