"""Figure 7: utilization percentiles of resources in settled transactions.

The paper's boxplots show that most settled *bids* (purchases) were for
resources in under-utilized clusters and most settled *offers* (sales) were in
over-utilized clusters — the behaviour the utilization-weighted reserve prices
encourage — with a significant number of high-utilization bid outliers from
teams paying a premium to stay in congested clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.boxplot import BoxplotStats
from repro.analysis.utilization_stats import (
    SettledTrade,
    figure7_boxplots,
    migration_summary,
)
from repro.experiments.config import ExperimentConfig, PAPER_SCALE
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.scenario import build_scenario


@dataclass(frozen=True)
class Figure7Result:
    """The regenerated Figure 7 data."""

    boxplots: dict[str, BoxplotStats]
    trades: tuple[SettledTrade, ...]
    migration: dict[str, float]

    def median_percentile(self, group: str) -> float:
        """Median utilization percentile of one group, e.g. ``"CPU Bids"``."""
        return self.boxplots[group].median

    def has_high_utilization_bid_outliers(self, *, threshold: float = 75.0) -> bool:
        """Whether any bid-side trade landed in a pool above the ``threshold`` percentile.

        These are the premium payers of the paper's narrative.
        """
        return any(
            trade.side == "bid" and trade.utilization_percentile >= threshold
            for trade in self.trades
        )


def run_figure7(config: ExperimentConfig = PAPER_SCALE, *, auctions: int = 1) -> Figure7Result:
    """Run ``auctions`` auction periods and pool the settled trades."""
    scenario = build_scenario(config.scenario_config())
    sim = MarketEconomySimulation(
        scenario, drift_scale=config.drift_scale, preliminary_runs=config.preliminary_runs
    )
    history = sim.run(auctions)
    trades = history.all_trades()
    return Figure7Result(
        boxplots=figure7_boxplots(history.settlements()),
        trades=tuple(trades),
        migration=migration_summary(trades),
    )


def main() -> None:  # pragma: no cover - CLI entry point
    from repro.analysis.reports import render_boxplots

    result = run_figure7()
    print(render_boxplots(result.boxplots))
    print()
    for key, value in result.migration.items():
        print(f"{key}: {value:.2f}")


if __name__ == "__main__":  # pragma: no cover
    main()
