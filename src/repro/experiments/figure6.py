"""Figure 6: change in resource prices after the auction.

The paper plots, per cluster and per resource dimension, the settled market
price divided by the former fixed price.  The expected shape: congested
clusters settle above 1x (demand exceeded the congestion-weighted reserve and
pushed prices up) while idle clusters settle below 1x (the reserve prices
discount them and supply is ample), and price ratios correlate strongly with
utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.price_ratio import (
    PriceRatioRow,
    price_ratio_table,
    ratio_utilization_correlation,
    sort_rows_for_figure6,
)
from repro.experiments.config import ExperimentConfig, PAPER_SCALE
from repro.simulation.economy import MarketEconomySimulation
from repro.simulation.scenario import build_scenario


@dataclass(frozen=True)
class Figure6Result:
    """The regenerated Figure 6 data."""

    rows: tuple[PriceRatioRow, ...]
    correlation_with_utilization: float
    settled_fraction: float
    rounds: int

    def congested_rows(self, threshold: float = 0.75) -> list[PriceRatioRow]:
        """Rows of clusters whose mean utilization exceeds ``threshold``."""
        return [row for row in self.rows if row.mean_utilization > threshold]

    def idle_rows(self, threshold: float = 0.4) -> list[PriceRatioRow]:
        """Rows of clusters whose mean utilization is below ``threshold``."""
        return [row for row in self.rows if row.mean_utilization < threshold]


def run_figure6(config: ExperimentConfig = PAPER_SCALE) -> Figure6Result:
    """Run one full auction over a synthetic fleet and compute the price ratios."""
    scenario = build_scenario(config.scenario_config())
    sim = MarketEconomySimulation(
        scenario, drift_scale=config.drift_scale, preliminary_runs=config.preliminary_runs
    )
    period = sim.run_one_auction()
    rows = sort_rows_for_figure6(
        price_ratio_table(
            period.settlement.index, period.record.prices, scenario.platform.fixed_prices
        )
    )
    return Figure6Result(
        rows=tuple(rows),
        correlation_with_utilization=ratio_utilization_correlation(rows),
        settled_fraction=period.settled_fraction,
        rounds=period.record.rounds,
    )


def main() -> None:  # pragma: no cover - CLI entry point
    from repro.analysis.reports import render_figure6_rows

    result = run_figure6()
    print(render_figure6_rows(result.rows))
    print()
    print(f"correlation(price ratio, utilization) = {result.correlation_with_utilization:.3f}")
    print(f"settled fraction = {result.settled_fraction:.1%}, clock rounds = {result.rounds}")


if __name__ == "__main__":  # pragma: no cover
    main()
