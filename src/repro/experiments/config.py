"""Shared experiment configuration: paper-scale and test-scale presets.

Since the scenario catalog became the source of truth for named economies,
the experiment presets are *derived from it*: :data:`PAPER_SCALE` is the
catalog's ``paper-reference`` scenario and :data:`TEST_SCALE` is ``smoke``.
:class:`ExperimentConfig` remains the thin scale-knob view the experiment
drivers and benchmarks consume, and can still be constructed directly for
ad-hoc scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.simulation.catalog import ScenarioSpec, get_scenario
from repro.simulation.scenario import ScenarioConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by the experiment drivers.

    ``PAPER_SCALE`` matches the paper's experimental market (~34 clusters,
    ~100 bidders, 6 auctions); ``TEST_SCALE`` is a scaled-down variant used
    by the unit tests so they stay fast.  When built with
    :meth:`from_scenario`, ``base`` carries the catalog scenario's full
    :class:`~repro.simulation.scenario.ScenarioConfig` so knobs beyond the
    scale fields (utilization ranges, strategy mixes, the demand engine)
    survive the round trip.
    """

    cluster_count: int = 34
    team_count: int = 100
    auctions: int = 6
    seed: int = 2009  # the paper's publication year, for flavour and reproducibility
    machines_range: tuple[int, int] = (50, 400)
    budget_per_team: float = 50_000.0
    #: Run knobs for the multi-auction drivers (mirrors ``ScenarioSpec``).
    drift_scale: float = 0.015
    preliminary_runs: int = 0
    #: The full scenario config this preset was derived from, if any.
    #: Excluded from hashing: it holds mappings (FleetSpec.unit_costs), and
    #: configs must stay usable as dict keys / set members.
    base: ScenarioConfig | None = field(default=None, hash=False)

    @classmethod
    def from_scenario(cls, scenario: str | ScenarioSpec) -> "ExperimentConfig":
        """Derive the scale and run knobs from a catalog scenario (by name or spec)."""
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        return cls(
            cluster_count=spec.config.fleet.cluster_count,
            team_count=spec.config.population.team_count,
            auctions=spec.auctions,
            seed=spec.config.seed,
            machines_range=spec.config.fleet.machines_range,
            budget_per_team=spec.config.population.budget_per_team,
            drift_scale=spec.drift_scale,
            preliminary_runs=spec.preliminary_runs,
            base=spec.config,
        )

    def scenario_config(self, **overrides) -> ScenarioConfig:
        """Build a :class:`ScenarioConfig` from these knobs (overridable per experiment)."""
        if self.base is None:
            base = ScenarioConfig(
                fleet=FleetSpec(
                    cluster_count=self.cluster_count, machines_range=self.machines_range
                ),
                population=PopulationSpec(
                    team_count=self.team_count, budget_per_team=self.budget_per_team
                ),
                seed=self.seed,
            )
        else:
            # Re-apply the scale fields onto the catalog-derived base so
            # ``dataclasses.replace(PAPER_SCALE, team_count=...)`` takes
            # effect while base-only knobs (utilization ranges, strategy
            # mixes, the engine) survive.
            base = replace(
                self.base,
                fleet=replace(
                    self.base.fleet,
                    cluster_count=self.cluster_count,
                    machines_range=self.machines_range,
                ),
                population=replace(
                    self.base.population,
                    team_count=self.team_count,
                    budget_per_team=self.budget_per_team,
                ),
                seed=self.seed,
            )
        return replace(base, **overrides) if overrides else base

    def as_scenario_spec(
        self, name: str = "experiment", description: str | None = None, **overrides
    ) -> ScenarioSpec:
        """Wrap these knobs back into a runnable :class:`ScenarioSpec`.

        The inverse of :meth:`from_scenario`: benchmarks and drivers that
        hold an :class:`ExperimentConfig` can hand the parallel runner (and
        through it the result store) a proper spec without re-deriving the
        catalog entry.  ``overrides`` go to :meth:`scenario_config`.
        """
        return ScenarioSpec(
            name=name,
            description=description or f"ad-hoc experiment spec ({name})",
            config=self.scenario_config(**overrides),
            auctions=self.auctions,
            drift_scale=self.drift_scale,
            preliminary_runs=self.preliminary_runs,
        )


#: The scale of the paper's experimental market (catalog: ``paper-reference``).
PAPER_SCALE = ExperimentConfig.from_scenario("paper-reference")

#: A fast scale for unit tests and smoke runs (catalog: ``smoke``).
TEST_SCALE = ExperimentConfig.from_scenario("smoke")
