"""Shared experiment configuration: paper-scale and test-scale presets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.population import PopulationSpec
from repro.cluster.fleet_gen import FleetSpec
from repro.simulation.scenario import ScenarioConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by the experiment drivers.

    ``paper_scale()`` matches the paper's experimental market (~34 clusters,
    ~100 bidders, 6 auctions); ``test_scale()`` is a scaled-down variant used
    by the unit tests so they stay fast.
    """

    cluster_count: int = 34
    team_count: int = 100
    auctions: int = 6
    seed: int = 2009  # the paper's publication year, for flavour and reproducibility
    machines_range: tuple[int, int] = (50, 400)
    budget_per_team: float = 50_000.0

    def scenario_config(self, **overrides) -> ScenarioConfig:
        """Build a :class:`ScenarioConfig` from these knobs (overridable per experiment)."""
        base = ScenarioConfig(
            fleet=FleetSpec(cluster_count=self.cluster_count, machines_range=self.machines_range),
            population=PopulationSpec(
                team_count=self.team_count, budget_per_team=self.budget_per_team
            ),
            seed=self.seed,
        )
        return replace(base, **overrides) if overrides else base


#: The scale of the paper's experimental market.
PAPER_SCALE = ExperimentConfig()

#: A fast scale for unit tests and smoke runs.
TEST_SCALE = ExperimentConfig(
    cluster_count=8,
    team_count=24,
    auctions=3,
    machines_range=(10, 40),
    budget_per_team=200_000.0,
)
