"""Ablation: price-increment policies (Section III-C-2).

The paper notes the naive ``alpha * z+`` update "often causes the prices to
move too quickly in the early rounds of the auction and then too slowly in the
later ones", recommends capping the per-round change (Eq. 3), and suggests
normalizing increments for the base price differences between resources.
This ablation runs the same reference auction under each policy and compares
rounds-to-convergence, final price dispersion, and whether the cheap resource
(disk) ends up with prices out of proportion to its cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.base import MarketView
from repro.agents.population import PopulationSpec, build_population
from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.cluster.resources import ResourceType
from repro.core.clock_auction import AscendingClockAuction, AuctionConfig, ConvergenceError
from repro.core.increment import (
    AdditiveIncrement,
    CappedIncrement,
    IncrementPolicy,
    NormalizedIncrement,
    default_increment,
)
from repro.core.reserve import PAPER_PHI_1, ReservePricer
from repro.market.services import default_catalog


@dataclass(frozen=True)
class IncrementAblationRow:
    """Outcome of one increment policy on the reference auction."""

    policy: str
    converged: bool
    rounds: int
    settled_like_fraction: float
    #: Mean final-price / unit-cost ratio for disk vs CPU: values far from each
    #: other indicate the "out of proportion" problem the paper warns about.
    disk_to_cpu_ratio_skew: float


@dataclass(frozen=True)
class IncrementAblationResult:
    rows: tuple[IncrementAblationRow, ...]

    def row(self, policy_prefix: str) -> IncrementAblationRow:
        for row in self.rows:
            if row.policy.startswith(policy_prefix):
                return row
        raise KeyError(policy_prefix)


def _reference_auction(seed: int, cluster_count: int, team_count: int):
    fleet = generate_fleet(FleetSpec(cluster_count=cluster_count, machines_range=(20, 80)), seed=seed)
    catalog = default_catalog()
    agents = build_population(fleet, PopulationSpec(team_count=team_count), catalog=catalog, seed=seed)
    index = fleet.pool_index
    view = MarketView(
        index=index,
        displayed_prices={p.name: p.unit_cost for p in index},
        fixed_prices=dict(fleet.fixed_prices),
        auction_number=1,
        topology=fleet.topology,
    )
    bids = []
    for agent in agents:
        bids.extend(agent.prepare_bids(view))
    reserve = ReservePricer(weighting=PAPER_PHI_1).reserve_prices(index)
    supply = index.available() * 0.9
    return index, bids, reserve, supply


def run_ablation_increment(
    *,
    cluster_count: int = 12,
    team_count: int = 40,
    seed: int = 0,
    max_rounds: int = 3000,
) -> IncrementAblationResult:
    """Run the reference auction under each increment policy."""
    index, bids, reserve, supply = _reference_auction(seed, cluster_count, team_count)
    capacities = index.capacities()
    policies: list[IncrementPolicy] = [
        AdditiveIncrement(alpha=0.001),
        CappedIncrement(alpha=0.001, cap_fraction=0.10),
        NormalizedIncrement(base_prices=index.unit_costs(), alpha=0.001, cap_fraction=0.10),
        default_increment(capacities),
    ]
    rows: list[IncrementAblationRow] = []
    cpu_idx = [index.index_of(p.name) for p in index.pools_of_type(ResourceType.CPU)]
    disk_idx = [index.index_of(p.name) for p in index.pools_of_type(ResourceType.DISK)]
    costs = index.unit_costs()

    for policy in policies:
        auction = AscendingClockAuction(
            index,
            bids,
            reserve_prices=reserve,
            supply=supply,
            increment=policy,
            config=AuctionConfig(max_rounds=max_rounds),
        )
        try:
            outcome = auction.run()
            converged = True
            rounds = outcome.round_count
            final = outcome.final_prices
            active = sum(
                1 for demand in outcome.final_demands.values() if np.any(np.abs(demand) > 0)
            )
            settled = active / max(len(bids), 1)
        except ConvergenceError:
            converged = False
            rounds = max_rounds
            final = reserve
            settled = 0.0
        cpu_ratio = float(np.mean(final[cpu_idx] / costs[cpu_idx]))
        disk_ratio = float(np.mean(final[disk_idx] / costs[disk_idx]))
        skew = abs(disk_ratio - cpu_ratio)
        rows.append(
            IncrementAblationRow(
                policy=policy.describe(),
                converged=converged,
                rounds=rounds,
                settled_like_fraction=settled,
                disk_to_cpu_ratio_skew=skew,
            )
        )
    return IncrementAblationResult(rows=tuple(rows))


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_ablation_increment()
    print("Increment-policy ablation (Section III-C-2)")
    print(f"{'policy':<45} {'converged':>10} {'rounds':>7} {'active':>7} {'ratio skew':>11}")
    for row in result.rows:
        print(
            f"{row.policy:<45} {str(row.converged):>10} {row.rounds:>7d} "
            f"{row.settled_like_fraction:>6.1%} {row.disk_to_cpu_ratio_skew:>11.3f}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
