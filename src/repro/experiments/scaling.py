"""Section III-C-4 scaling claim: execution time is linear in bidders and resources.

"All else being equal, the execution time scales linearly in the number of
participants and the number of resources.  Solving for the prices in our
experimental resource auction (having around 100 bidders and 100 system-level
resources) ... took only a few minutes despite the fact that the underlying
code was written in Python and was highly non-optimized."

This driver times the clock auction over a grid of (bidders, resource pools)
sizes and fits the growth exponent, so the benchmark can check the scaling is
close to linear (exponent well below quadratic) and that the paper's reference
size (100 x 100) solves quickly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.agents.population import PopulationSpec, build_population
from repro.cluster.fleet_gen import FleetSpec, generate_fleet
from repro.core.exchange import CombinatorialExchange
from repro.core.increment import default_increment
from repro.market.services import default_catalog
from repro.agents.base import MarketView


@dataclass(frozen=True)
class ScalingPoint:
    """Timing of one (bidders, pools) grid point."""

    bidders: int
    pools: int
    seconds: float
    rounds: int
    settled_fraction: float

    @property
    def seconds_per_round(self) -> float:
        """Wall-clock time per clock round (isolates the per-round O(U x R) work)."""
        return self.seconds / max(self.rounds, 1)


@dataclass(frozen=True)
class ScalingResult:
    """All grid points plus fitted growth exponents.

    The exponents are fitted on the *per-round* time: the number of rounds a
    clock auction takes depends on how far prices must travel (a property of
    the bids, not of the system size), while the per-round work — evaluating
    every bidder's bundle costs over every pool — is what the paper's
    linear-scaling claim is about.
    """

    points: tuple[ScalingPoint, ...]
    bidder_exponent: float
    pool_exponent: float

    def point(self, bidders: int, pools: int) -> ScalingPoint:
        for point in self.points:
            if point.bidders == bidders and point.pools == pools:
                return point
        raise KeyError((bidders, pools))


def _one_auction(bidders: int, clusters: int, *, seed: int) -> ScalingPoint:
    fleet = generate_fleet(
        FleetSpec(cluster_count=clusters, machines_range=(20, 80)), seed=seed
    )
    catalog = default_catalog()
    agents = build_population(
        fleet, PopulationSpec(team_count=bidders, budget_per_team=1e6), catalog=catalog, seed=seed
    )
    index = fleet.pool_index
    view = MarketView(
        index=index,
        displayed_prices={p.name: p.unit_cost for p in index},
        fixed_prices=dict(fleet.fixed_prices),
        auction_number=1,
        topology=fleet.topology,
    )
    bids = []
    for agent in agents:
        bids.extend(agent.prepare_bids(view))
    exchange = CombinatorialExchange(
        index, increment=default_increment(index.capacities()), strict_validation=False
    )
    start = time.perf_counter()
    result = exchange.run(bids)
    elapsed = time.perf_counter() - start
    return ScalingPoint(
        bidders=bidders,
        pools=len(index),
        seconds=elapsed,
        rounds=result.rounds,
        settled_fraction=result.settlement.settled_fraction(),
    )


def _fit_exponent(sizes: np.ndarray, times: np.ndarray) -> float:
    """Least-squares slope of log(time) vs log(size)."""
    if len(sizes) < 2:
        return 0.0
    return float(np.polyfit(np.log(sizes), np.log(np.maximum(times, 1e-9)), 1)[0])


def run_scaling(
    *,
    bidder_counts: tuple[int, ...] = (25, 50, 100, 200),
    cluster_counts: tuple[int, ...] = (8, 17, 34, 68),
    reference_bidders: int = 100,
    reference_clusters: int = 34,
    seed: int = 0,
) -> ScalingResult:
    """Time the auction across the bidder sweep and the pool sweep.

    The bidder sweep holds the fleet at ``reference_clusters`` clusters
    (~3x that many pools); the pool sweep holds bidders at
    ``reference_bidders``.  The reference point (100 bidders x ~102 pools)
    matches the paper's reported problem size.
    """
    points: list[ScalingPoint] = []
    for bidders in bidder_counts:
        points.append(_one_auction(bidders, reference_clusters, seed=seed))
    for clusters in cluster_counts:
        if clusters != reference_clusters:
            points.append(_one_auction(reference_bidders, clusters, seed=seed))

    bidder_points = [p for p in points if p.pools == reference_clusters * 3]
    pool_points = [p for p in points if p.bidders == reference_bidders]
    bidder_exp = _fit_exponent(
        np.array([p.bidders for p in bidder_points], dtype=float),
        np.array([p.seconds_per_round for p in bidder_points], dtype=float),
    )
    pool_exp = _fit_exponent(
        np.array([p.pools for p in pool_points], dtype=float),
        np.array([p.seconds_per_round for p in pool_points], dtype=float),
    )
    return ScalingResult(points=tuple(points), bidder_exponent=bidder_exp, pool_exponent=pool_exp)


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_scaling()
    print("Clock auction scaling (Section III-C-4)")
    print(f"{'bidders':>8} {'pools':>6} {'seconds':>9} {'rounds':>7} {'settled':>8}")
    for point in result.points:
        print(
            f"{point.bidders:>8d} {point.pools:>6d} {point.seconds:>9.3f} {point.rounds:>7d} {point.settled_fraction:>7.1%}"
        )
    print(f"\nfitted exponent in bidders: {result.bidder_exponent:.2f}")
    print(f"fitted exponent in pools:   {result.pool_exponent:.2f}")


if __name__ == "__main__":  # pragma: no cover
    main()
