"""Resource pools and the pool index.

A *resource pool* is the unit the market prices: one (cluster, resource-type)
pair, e.g. ``cluster-07/cpu``.  The :class:`PoolIndex` assigns each pool a
dense integer index so the auction core can represent bundles, prices, and
excess demand as flat numpy vectors of length ``R`` (the number of pools).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.resources import DEFAULT_UNIT_COSTS, RESOURCE_TYPES, ResourceType
from repro.cluster.topology import FleetTopology


@dataclass(frozen=True)
class ResourcePool:
    """One tradeable resource pool: a resource type inside a cluster.

    Attributes
    ----------
    cluster:
        Name of the cluster the pool lives in.
    rtype:
        The resource dimension (CPU / RAM / disk).
    capacity:
        Total capacity of the pool in resource units.
    unit_cost:
        The operator's real cost ``c(r)`` per unit, the base of the
        congestion-weighted reserve price (paper Eq. 4).
    utilization:
        Current pre-auction utilization fraction ``psi(r)`` in [0, 1].
    """

    cluster: str
    rtype: ResourceType
    capacity: float
    unit_cost: float
    utilization: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"pool capacity must be non-negative, got {self.capacity}")
        if self.unit_cost < 0:
            raise ValueError(f"pool unit cost must be non-negative, got {self.unit_cost}")
        if not (0.0 <= self.utilization <= 1.0):
            raise ValueError(f"pool utilization must lie in [0, 1], got {self.utilization}")

    @property
    def name(self) -> str:
        """Canonical pool name, e.g. ``"cluster-07/cpu"``."""
        return f"{self.cluster}/{self.rtype.value}"

    @property
    def available(self) -> float:
        """Unused capacity in resource units."""
        return self.capacity * (1.0 - self.utilization)

    def with_utilization(self, utilization: float) -> "ResourcePool":
        """Return a copy of this pool with a different utilization."""
        return ResourcePool(
            cluster=self.cluster,
            rtype=self.rtype,
            capacity=self.capacity,
            unit_cost=self.unit_cost,
            utilization=float(np.clip(utilization, 0.0, 1.0)),
        )


class PoolIndex:
    """Dense indexing of resource pools for vectorized auction math.

    The index is ordered and immutable once built.  Bundles, prices, reserve
    prices, and excess-demand vectors are all numpy arrays of length
    ``len(index)`` whose ``i``-th entry refers to ``index.pools[i]``.
    """

    def __init__(self, pools: Sequence[ResourcePool]):
        if not pools:
            raise ValueError("PoolIndex requires at least one pool")
        names = [pool.name for pool in pools]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate pool names: {dupes}")
        self._pools: tuple[ResourcePool, ...] = tuple(pools)
        self._by_name: dict[str, int] = {pool.name: i for i, pool in enumerate(self._pools)}

    # -- basic accessors -------------------------------------------------------
    @property
    def pools(self) -> tuple[ResourcePool, ...]:
        """All pools in index order."""
        return self._pools

    @property
    def names(self) -> list[str]:
        """Pool names in index order."""
        return [pool.name for pool in self._pools]

    def __len__(self) -> int:
        return len(self._pools)

    def __iter__(self) -> Iterator[ResourcePool]:
        return iter(self._pools)

    def index_of(self, name: str) -> int:
        """Dense index of the pool named ``name``."""
        return self._by_name[name]

    def pool(self, name: str) -> ResourcePool:
        """The pool named ``name``."""
        return self._pools[self._by_name[name]]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def pools_of_cluster(self, cluster: str) -> list[ResourcePool]:
        """All pools belonging to ``cluster``."""
        return [pool for pool in self._pools if pool.cluster == cluster]

    def pools_of_type(self, rtype: ResourceType) -> list[ResourcePool]:
        """All pools of one resource dimension across clusters."""
        return [pool for pool in self._pools if pool.rtype == rtype]

    def clusters(self) -> list[str]:
        """Cluster names present in the index, in first-appearance order."""
        seen: list[str] = []
        for pool in self._pools:
            if pool.cluster not in seen:
                seen.append(pool.cluster)
        return seen

    # -- vector views ----------------------------------------------------------
    def capacities(self) -> np.ndarray:
        """Vector of pool capacities."""
        return np.array([pool.capacity for pool in self._pools], dtype=float)

    def unit_costs(self) -> np.ndarray:
        """Vector of operator unit costs c(r)."""
        return np.array([pool.unit_cost for pool in self._pools], dtype=float)

    def utilizations(self) -> np.ndarray:
        """Vector of pre-auction utilizations psi(r)."""
        return np.array([pool.utilization for pool in self._pools], dtype=float)

    def available(self) -> np.ndarray:
        """Vector of unused capacity per pool."""
        return np.array([pool.available for pool in self._pools], dtype=float)

    # -- vector construction -----------------------------------------------------
    def vector(self, quantities: Mapping[str, float]) -> np.ndarray:
        """Build a bundle vector from a ``{pool name: quantity}`` mapping.

        Positive quantities are demands, negative quantities are offers,
        matching the sign convention of the paper's bundle vectors ``q_u``.
        """
        vec = np.zeros(len(self._pools), dtype=float)
        for name, qty in quantities.items():
            if name not in self._by_name:
                raise KeyError(f"unknown pool {name!r}; known pools: {sorted(self._by_name)[:5]}...")
            vec[self._by_name[name]] = float(qty)
        return vec

    def cluster_bundle(
        self, cluster: str, *, cpu: float = 0.0, ram: float = 0.0, disk: float = 0.0
    ) -> np.ndarray:
        """Bundle vector demanding/offering CPU, RAM, and disk in one cluster."""
        quantities: dict[str, float] = {}
        amounts = {ResourceType.CPU: cpu, ResourceType.RAM: ram, ResourceType.DISK: disk}
        for rtype, qty in amounts.items():
            if qty != 0.0:
                quantities[f"{cluster}/{rtype.value}"] = qty
        if not quantities:
            return np.zeros(len(self._pools), dtype=float)
        return self.vector(quantities)

    def describe(self, vec: np.ndarray, *, tol: float = 1e-12) -> dict[str, float]:
        """Invert :meth:`vector`: the non-zero entries of ``vec`` keyed by pool name."""
        if vec.shape != (len(self._pools),):
            raise ValueError(f"vector has shape {vec.shape}, expected ({len(self._pools)},)")
        return {
            self._pools[i].name: float(vec[i])
            for i in range(len(self._pools))
            if abs(vec[i]) > tol
        }

    # -- replacement -------------------------------------------------------------
    def with_utilizations(self, utilizations: Mapping[str, float] | np.ndarray) -> "PoolIndex":
        """Return a new index with updated utilizations (same pools, same order)."""
        if isinstance(utilizations, np.ndarray):
            if utilizations.shape != (len(self._pools),):
                raise ValueError("utilization vector has wrong length")
            values = {pool.name: float(utilizations[i]) for i, pool in enumerate(self._pools)}
        else:
            values = dict(utilizations)
        new_pools = [
            pool.with_utilization(values.get(pool.name, pool.utilization)) for pool in self._pools
        ]
        return PoolIndex(new_pools)


def demo_pool_index() -> PoolIndex:
    """A tiny deterministic :class:`PoolIndex` for examples and doctests.

    Two clusters (``a`` congested at 80%, ``b`` idle at 20%), each with a CPU
    and a RAM pool at fixed capacities and unit costs.

    Examples
    --------
    >>> index = demo_pool_index()
    >>> index.names
    ['a/cpu', 'a/ram', 'b/cpu', 'b/ram']
    >>> index.capacities().tolist()
    [100.0, 400.0, 100.0, 400.0]
    """
    pools: list[ResourcePool] = []
    for cluster, util in (("a", 0.8), ("b", 0.2)):
        pools.append(
            ResourcePool(cluster=cluster, rtype=ResourceType.CPU, capacity=100.0, unit_cost=10.0, utilization=util)
        )
        pools.append(
            ResourcePool(cluster=cluster, rtype=ResourceType.RAM, capacity=400.0, unit_cost=2.0, utilization=util)
        )
    return PoolIndex(pools)


def pools_from_topology(
    topology: FleetTopology | Iterable[Cluster],
    *,
    unit_costs: Mapping[ResourceType, float] | None = None,
) -> PoolIndex:
    """Build a :class:`PoolIndex` from a fleet topology or a plain cluster list.

    One pool is created per (cluster, resource type); capacity and utilization
    are read off the cluster's current state, unit costs default to
    :data:`repro.cluster.resources.DEFAULT_UNIT_COSTS`.
    """
    costs = dict(DEFAULT_UNIT_COSTS if unit_costs is None else unit_costs)
    clusters = list(topology) if not isinstance(topology, FleetTopology) else list(topology)
    pools: list[ResourcePool] = []
    for cluster in clusters:
        # One machine pass per cluster: capacity and the full utilization
        # vector together, instead of re-aggregating hundreds of machines for
        # every resource dimension (the fleet-generation hot path).
        capacity, utilization = cluster.capacity_and_utilization()
        for rtype in RESOURCE_TYPES:
            pools.append(
                ResourcePool(
                    cluster=cluster.name,
                    rtype=rtype,
                    capacity=capacity.get(rtype),
                    unit_cost=costs.get(rtype, 0.0),
                    utilization=utilization[rtype],
                )
            )
    return PoolIndex(pools)
