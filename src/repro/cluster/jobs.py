"""Job model for the cluster substrate.

Jobs are the unit of work that engineering teams run against their provisioned
quota.  The market itself never sees individual jobs — it provisions aggregate
quota — but the scheduler places jobs to produce realistic per-cluster
utilization, and the agents derive their demand from the jobs they intend to
run (see :mod:`repro.simulation.workload`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.cluster.resources import ResourceVector, cpu_ram_disk

_job_counter = itertools.count()


class JobState(str, enum.Enum):
    """Lifecycle of a job within the scheduler."""

    PENDING = "pending"
    RUNNING = "running"
    EVICTED = "evicted"
    FINISHED = "finished"


@dataclass
class Job:
    """A schedulable unit of work.

    Parameters
    ----------
    owner:
        Name of the engineering team that owns the job.
    demand:
        Per-task resource requirement.
    tasks:
        Number of identical tasks; total footprint is ``demand * tasks``.
    priority:
        Larger values are more important; used by the priority baseline
        allocator for preemption ordering.
    duration:
        Nominal runtime in abstract time units (used by the discrete-event
        simulation when jobs churn between auctions).
    mobile:
        Whether the owning team has engineered the job to run in any cluster
        (``True``) or whether it is pinned to its current cluster by data
        locality / engineering cost (``False``).  Mirrors the paper's
        observation that relocation has a real engineering cost.
    """

    owner: str
    demand: ResourceVector
    tasks: int = 1
    priority: int = 0
    duration: float = float("inf")
    mobile: bool = True
    name: str = ""
    state: JobState = JobState.PENDING
    placed_cluster: str | None = None
    job_id: int = field(default_factory=lambda: next(_job_counter))

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError(f"job must have at least one task, got {self.tasks}")
        if not self.demand.is_nonnegative():
            raise ValueError(f"job demand must be non-negative, got {self.demand}")
        if not self.name:
            self.name = f"{self.owner}/job-{self.job_id}"

    @property
    def footprint(self) -> ResourceVector:
        """Total resource footprint across all tasks."""
        return self.demand * float(self.tasks)

    def split_tasks(self) -> list["Job"]:
        """Return one single-task job per task (used by per-task placement)."""
        return [
            Job(
                owner=self.owner,
                demand=self.demand,
                tasks=1,
                priority=self.priority,
                duration=self.duration,
                mobile=self.mobile,
                name=f"{self.name}/task-{i}",
            )
            for i in range(self.tasks)
        ]


def make_job_batch(
    owner: str,
    *,
    count: int,
    rng: np.random.Generator,
    cpu_range: tuple[float, float] = (0.5, 8.0),
    ram_per_cpu: tuple[float, float] = (1.0, 8.0),
    disk_per_cpu: tuple[float, float] = (5.0, 200.0),
    tasks_range: tuple[int, int] = (1, 50),
    priority_choices: Sequence[int] = (0, 1, 2),
    mobile_fraction: float = 0.7,
) -> list[Job]:
    """Generate a batch of synthetic jobs for one team.

    Job shapes follow the heavy-tailed pattern typical of cluster traces:
    CPU drawn log-uniformly, RAM and disk drawn as multiples of CPU so that
    resource dimensions are correlated but not identical, and task counts
    drawn log-uniformly so a few jobs dominate the footprint.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    jobs: list[Job] = []
    for _ in range(count):
        cpu = float(np.exp(rng.uniform(np.log(cpu_range[0]), np.log(cpu_range[1]))))
        ram = cpu * float(rng.uniform(*ram_per_cpu))
        disk = cpu * float(rng.uniform(*disk_per_cpu))
        lo, hi = tasks_range
        tasks = int(round(np.exp(rng.uniform(np.log(lo), np.log(hi)))))
        tasks = max(lo, min(hi, tasks))
        jobs.append(
            Job(
                owner=owner,
                demand=cpu_ram_disk(cpu, ram, disk),
                tasks=tasks,
                priority=int(rng.choice(list(priority_choices))),
                mobile=bool(rng.random() < mobile_fraction),
            )
        )
    return jobs


def total_footprint(jobs: Iterable[Job]) -> ResourceVector:
    """Aggregate footprint of a collection of jobs."""
    total = ResourceVector.zero()
    for job in jobs:
        total = total + job.footprint
    return total
