"""Bin-packing job scheduler.

The market provisions aggregate quota; this scheduler is the low-level
substrate that actually assigns jobs to machines so the fleet exhibits
realistic utilization ("the allocation limits are then mapped into the
low-level scheduling algorithms used to actually assign jobs to units of
physical hardware").  It is intentionally simple — first-fit / best-fit /
worst-fit decreasing — because the paper's contribution is the provisioning
layer above it; the reserve pricing of Section IV only needs per-pool
utilization percentiles, which any of these policies produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.jobs import Job, JobState
from repro.cluster.machine import Machine


class PlacementPolicy(Protocol):
    """Strategy for choosing which machine receives a job."""

    def choose(self, job: Job, machines: Sequence[Machine]) -> Machine | None:
        """Return the machine to place ``job`` on, or ``None`` if no machine fits."""
        ...  # pragma: no cover - protocol


class FirstFitPolicy:
    """Place each job on the first machine it fits on."""

    def choose(self, job: Job, machines: Sequence[Machine]) -> Machine | None:
        for machine in machines:
            if machine.can_fit(job):
                return machine
        return None


class BestFitPolicy:
    """Place each job on the machine whose free capacity it fills most tightly.

    "Tightness" is measured by the dominant-share fraction of the job's
    footprint against the machine's free capacity; higher is tighter.
    """

    def choose(self, job: Job, machines: Sequence[Machine]) -> Machine | None:
        best: Machine | None = None
        best_score = -1.0
        for machine in machines:
            if not machine.can_fit(job):
                continue
            score = job.footprint.max_fraction_of(machine.free)
            if score > best_score:
                best, best_score = machine, score
        return best


class WorstFitPolicy:
    """Place each job on the emptiest machine that fits it (spreads load)."""

    def choose(self, job: Job, machines: Sequence[Machine]) -> Machine | None:
        best: Machine | None = None
        best_score = 2.0
        for machine in machines:
            if not machine.can_fit(job):
                continue
            score = machine.dominant_utilization()
            if score < best_score:
                best, best_score = machine, score
        return best


@dataclass
class PlacementResult:
    """Outcome of scheduling a batch of jobs into a cluster."""

    cluster: str
    placed: list[Job] = field(default_factory=list)
    unplaced: list[Job] = field(default_factory=list)

    @property
    def placed_count(self) -> int:
        return len(self.placed)

    @property
    def unplaced_count(self) -> int:
        return len(self.unplaced)

    @property
    def all_placed(self) -> bool:
        return not self.unplaced


class BinPackingScheduler:
    """Greedy bin-packing scheduler for one cluster.

    Jobs are sorted by descending dominant footprint (classic *-fit
    decreasing) and placed one at a time via the configured policy.  Jobs with
    multiple tasks are split so tasks can spread across machines, matching how
    real cluster schedulers place replicated services.
    """

    def __init__(self, policy: PlacementPolicy | None = None, *, split_tasks: bool = True):
        self.policy: PlacementPolicy = policy or BestFitPolicy()
        self.split_tasks = split_tasks

    def schedule(self, cluster: Cluster, jobs: Sequence[Job]) -> PlacementResult:
        """Place ``jobs`` into ``cluster``; returns which were placed vs. rejected."""
        result = PlacementResult(cluster=cluster.name)
        units: list[Job] = []
        for job in jobs:
            if self.split_tasks and job.tasks > 1:
                units.extend(job.split_tasks())
            else:
                units.append(job)
        units.sort(
            key=lambda j: j.footprint.max_fraction_of(
                cluster.machines[0].capacity if cluster.machines else j.footprint
            ),
            reverse=True,
        )
        for job in units:
            machine = self.policy.choose(job, cluster.machines)
            if machine is None:
                job.state = JobState.PENDING
                result.unplaced.append(job)
                continue
            machine.place(job)
            job.placed_cluster = cluster.name
            result.placed.append(job)
        return result

    def preempt_below(self, cluster: Cluster, priority: int) -> list[Job]:
        """Evict every job with priority strictly below ``priority``.

        Used by the priority baseline allocator to model the traditional
        "more important jobs preempt lower-ranked tasks" policy the paper
        contrasts against.
        """
        evicted: list[Job] = []
        for machine in cluster.machines:
            for job in list(machine.jobs.values()):
                if job.priority < priority:
                    machine.evict(job)
                    evicted.append(job)
        return evicted
