"""Planet-wide fleet topology: sites, clusters, and inter-site distance.

The paper notes that "geographic location, location of other required
resources or data, network connectivity, or other secondary characteristics
may (or may not) distinguish a particular pool for a particular user".  The
topology captures exactly those secondary characteristics: which site each
cluster lives at and how far apart sites are.  Agents use the distance when
estimating the engineering/relocation cost of moving a workload between
clusters (:mod:`repro.agents.relocation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class Site:
    """A geographic site hosting one or more clusters."""

    name: str
    region: str = "region-0"
    #: Position on an abstract 2-D map used to derive inter-site latencies.
    coordinates: tuple[float, float] = (0.0, 0.0)


@dataclass
class FleetTopology:
    """The planet-wide fleet: sites, clusters, and distances between them."""

    sites: dict[str, Site] = field(default_factory=dict)
    clusters: dict[str, Cluster] = field(default_factory=dict)

    # -- construction ----------------------------------------------------------
    def add_site(self, site: Site) -> None:
        """Register a site (idempotent for identical definitions)."""
        existing = self.sites.get(site.name)
        if existing is not None and existing != site:
            raise ValueError(f"site {site.name} already registered with different attributes")
        self.sites[site.name] = site

    def add_cluster(self, cluster: Cluster) -> None:
        """Register a cluster; its site must already be registered."""
        if cluster.site not in self.sites:
            raise KeyError(f"cluster {cluster.name} references unknown site {cluster.site}")
        if cluster.name in self.clusters:
            raise ValueError(f"cluster {cluster.name} already registered")
        self.clusters[cluster.name] = cluster

    @staticmethod
    def from_clusters(clusters: Iterable[Cluster], sites: Iterable[Site] | None = None) -> "FleetTopology":
        """Build a topology from clusters, auto-creating any missing sites at the origin."""
        topo = FleetTopology()
        for site in sites or []:
            topo.add_site(site)
        for cluster in clusters:
            if cluster.site not in topo.sites:
                topo.add_site(Site(name=cluster.site))
            topo.add_cluster(cluster)
        return topo

    # -- queries ---------------------------------------------------------------
    def cluster(self, name: str) -> Cluster:
        """Look up a cluster by name."""
        return self.clusters[name]

    def clusters_at(self, site_name: str) -> list[Cluster]:
        """All clusters hosted at ``site_name``."""
        return [c for c in self.clusters.values() if c.site == site_name]

    def site_of(self, cluster_name: str) -> Site:
        """The site hosting ``cluster_name``."""
        return self.sites[self.clusters[cluster_name].site]

    def site_distance(self, a: str, b: str) -> float:
        """Euclidean distance between two sites on the abstract map."""
        sa, sb = self.sites[a], self.sites[b]
        dx = sa.coordinates[0] - sb.coordinates[0]
        dy = sa.coordinates[1] - sb.coordinates[1]
        return (dx * dx + dy * dy) ** 0.5

    def cluster_distance(self, a: str, b: str) -> float:
        """Distance between the sites of two clusters (0 for same-site clusters)."""
        return self.site_distance(self.clusters[a].site, self.clusters[b].site)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters.values())

    def __len__(self) -> int:
        return len(self.clusters)

    def as_networkx(self):  # pragma: no cover - thin optional helper
        """Export the site graph as a complete weighted :mod:`networkx` graph.

        Requires networkx (an optional dependency); useful for visualisation
        and for experiments that want shortest-path style locality metrics.
        """
        import networkx as nx

        graph = nx.Graph()
        for site in self.sites.values():
            graph.add_node(site.name, region=site.region, coordinates=site.coordinates)
        names = list(self.sites)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                graph.add_edge(a, b, distance=self.site_distance(a, b))
        return graph
