"""A cluster: a named collection of machines at one site."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.jobs import Job
from repro.cluster.machine import Machine
from repro.cluster.resources import (
    RESOURCE_TYPES,
    ResourceType,
    ResourceVector,
    cpu_ram_disk,
    sum_vectors,
)


@dataclass
class Cluster:
    """One cluster in the planet-wide fleet.

    A cluster aggregates machines and reports capacity / usage / utilization
    per resource dimension.  The market's resource pools are (cluster,
    resource-type) pairs, so this object is the source of truth for each
    pool's capacity and pre-auction utilization ``psi(r)``.
    """

    name: str
    site: str = "site-0"
    machines: list[Machine] = field(default_factory=list)
    #: Extra utilization (fraction, per resource type) contributed by workloads
    #: outside the simulated job set (system daemons, unmodeled tenants).
    #: Lets fleet generators hit an exact utilization target without placing
    #: thousands of filler jobs.
    background_load: dict[ResourceType, float] = field(default_factory=dict)

    # -- construction --------------------------------------------------------
    @staticmethod
    def homogeneous(
        name: str,
        *,
        machine_count: int,
        machine_capacity: ResourceVector | None = None,
        site: str = "site-0",
    ) -> "Cluster":
        """Build a cluster of ``machine_count`` identical machines."""
        if machine_count < 0:
            raise ValueError("machine_count must be non-negative")
        capacity = machine_capacity or cpu_ram_disk(32.0, 128.0, 4000.0)
        machines = [
            Machine(name=f"{name}/m{i:05d}", capacity=capacity) for i in range(machine_count)
        ]
        return Cluster(name=name, site=site, machines=machines)

    def add_machines(self, machines: Iterable[Machine]) -> None:
        """Append machines to the cluster."""
        self.machines.extend(machines)

    # -- capacity accounting --------------------------------------------------
    @property
    def capacity(self) -> ResourceVector:
        """Total capacity across all machines."""
        return sum_vectors(machine.capacity for machine in self.machines)

    @property
    def used(self) -> ResourceVector:
        """Resources consumed by placed jobs plus background load."""
        placed = sum_vectors(machine.used for machine in self.machines)
        background = ResourceVector(
            cpu=self.capacity.cpu * self.background_load.get(ResourceType.CPU, 0.0),
            ram=self.capacity.ram * self.background_load.get(ResourceType.RAM, 0.0),
            disk=self.capacity.disk * self.background_load.get(ResourceType.DISK, 0.0),
        )
        return placed + background

    @property
    def free(self) -> ResourceVector:
        """Remaining capacity (clamped at zero)."""
        return (self.capacity - self.used).clamp_nonnegative()

    def utilization(self, rtype: ResourceType) -> float:
        """Utilization fraction in [0, 1] for one resource dimension."""
        cap = self.capacity.get(rtype)
        if cap <= 0.0:
            return 0.0
        return min(1.0, max(0.0, self.used.get(rtype) / cap))

    def utilization_vector(self) -> dict[ResourceType, float]:
        """Utilization fraction per resource dimension."""
        return {rtype: self.utilization(rtype) for rtype in RESOURCE_TYPES}

    def set_background_load(self, loads: dict[ResourceType, float]) -> None:
        """Set the background utilization fractions (clamped to [0, 1])."""
        self.background_load = {
            rtype: min(1.0, max(0.0, frac)) for rtype, frac in loads.items()
        }

    # -- job queries -----------------------------------------------------------
    def jobs(self) -> list[Job]:
        """All jobs currently placed in this cluster."""
        result: list[Job] = []
        for machine in self.machines:
            result.extend(machine.jobs.values())
        return result

    def jobs_by_owner(self, owner: str) -> list[Job]:
        """Jobs in this cluster owned by ``owner``."""
        return [job for job in self.jobs() if job.owner == owner]

    def clear_jobs(self) -> None:
        """Evict every job from every machine (background load is kept)."""
        for machine in self.machines:
            machine.clear()

    def __len__(self) -> int:
        return len(self.machines)
