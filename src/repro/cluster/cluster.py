"""A cluster: a named collection of machines at one site."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.jobs import Job
from repro.cluster.machine import Machine
from repro.cluster.resources import (
    RESOURCE_TYPES,
    ResourceType,
    ResourceVector,
    cpu_ram_disk,
)


@dataclass
class Cluster:
    """One cluster in the planet-wide fleet.

    A cluster aggregates machines and reports capacity / usage / utilization
    per resource dimension.  The market's resource pools are (cluster,
    resource-type) pairs, so this object is the source of truth for each
    pool's capacity and pre-auction utilization ``psi(r)``.
    """

    name: str
    site: str = "site-0"
    machines: list[Machine] = field(default_factory=list)
    #: Extra utilization (fraction, per resource type) contributed by workloads
    #: outside the simulated job set (system daemons, unmodeled tenants).
    #: Lets fleet generators hit an exact utilization target without placing
    #: thousands of filler jobs.
    background_load: dict[ResourceType, float] = field(default_factory=dict)

    # -- construction --------------------------------------------------------
    @staticmethod
    def homogeneous(
        name: str,
        *,
        machine_count: int,
        machine_capacity: ResourceVector | None = None,
        site: str = "site-0",
    ) -> "Cluster":
        """Build a cluster of ``machine_count`` identical machines."""
        if machine_count < 0:
            raise ValueError("machine_count must be non-negative")
        capacity = machine_capacity or cpu_ram_disk(32.0, 128.0, 4000.0)
        machines = [
            Machine(name=f"{name}/m{i:05d}", capacity=capacity) for i in range(machine_count)
        ]
        return Cluster(name=name, site=site, machines=machines)

    def add_machines(self, machines: Iterable[Machine]) -> None:
        """Append machines to the cluster."""
        self.machines.extend(machines)

    # -- capacity accounting --------------------------------------------------
    #
    # These aggregates are the hot path of fleet generation: building pools
    # and utilization snapshots reads them for every cluster, and a cluster
    # can hold hundreds of machines.  They fold plain floats per dimension —
    # a strict left fold from 0, exactly like summing :class:`ResourceVector`
    # objects, so the totals are bit-identical to the object fold — instead
    # of allocating one intermediate vector per machine.

    @property
    def capacity(self) -> ResourceVector:
        """Total capacity across all machines."""
        cpu = ram = disk = 0.0
        for machine in self.machines:
            vec = machine.capacity
            cpu += vec.cpu
            ram += vec.ram
            disk += vec.disk
        return ResourceVector(cpu=cpu, ram=ram, disk=disk)

    def _totals(self) -> tuple[ResourceVector, ResourceVector]:
        """``(capacity, used)`` in one pass over the machines."""
        cap_cpu = cap_ram = cap_disk = 0.0
        use_cpu = use_ram = use_disk = 0.0
        for machine in self.machines:
            vec = machine.capacity
            cap_cpu += vec.cpu
            cap_ram += vec.ram
            cap_disk += vec.disk
            if not machine.jobs:
                continue  # contributes exactly zero to the usage fold
            used_vec = machine.used
            use_cpu += used_vec.cpu
            use_ram += used_vec.ram
            use_disk += used_vec.disk
        capacity = ResourceVector(cpu=cap_cpu, ram=cap_ram, disk=cap_disk)
        load = self.background_load
        used = ResourceVector(
            cpu=use_cpu + capacity.cpu * load.get(ResourceType.CPU, 0.0),
            ram=use_ram + capacity.ram * load.get(ResourceType.RAM, 0.0),
            disk=use_disk + capacity.disk * load.get(ResourceType.DISK, 0.0),
        )
        return capacity, used

    def capacity_and_utilization(
        self,
    ) -> tuple[ResourceVector, dict[ResourceType, float]]:
        """Total capacity plus per-dimension utilization in one machine pass.

        What pool construction reads: it needs both values for every
        cluster, and fetching them together avoids re-folding hundreds of
        machines per resource dimension.
        """
        capacity, used = self._totals()
        return capacity, {
            rtype: self._fraction(capacity, used, rtype) for rtype in RESOURCE_TYPES
        }

    @property
    def used(self) -> ResourceVector:
        """Resources consumed by placed jobs plus background load."""
        return self._totals()[1]

    @property
    def free(self) -> ResourceVector:
        """Remaining capacity (clamped at zero)."""
        capacity, used = self._totals()
        return (capacity - used).clamp_nonnegative()

    def utilization(self, rtype: ResourceType) -> float:
        """Utilization fraction in [0, 1] for one resource dimension."""
        capacity, used = self._totals()
        return self._fraction(capacity, used, rtype)

    @staticmethod
    def _fraction(capacity: ResourceVector, used: ResourceVector, rtype: ResourceType) -> float:
        cap = capacity.get(rtype)
        if cap <= 0.0:
            return 0.0
        return min(1.0, max(0.0, used.get(rtype) / cap))

    def utilization_vector(self) -> dict[ResourceType, float]:
        """Utilization fraction per resource dimension (one machine pass)."""
        capacity, used = self._totals()
        return {
            rtype: self._fraction(capacity, used, rtype) for rtype in RESOURCE_TYPES
        }

    def set_background_load(self, loads: dict[ResourceType, float]) -> None:
        """Set the background utilization fractions (clamped to [0, 1])."""
        self.background_load = {
            rtype: min(1.0, max(0.0, frac)) for rtype, frac in loads.items()
        }

    # -- job queries -----------------------------------------------------------
    def jobs(self) -> list[Job]:
        """All jobs currently placed in this cluster."""
        result: list[Job] = []
        for machine in self.machines:
            result.extend(machine.jobs.values())
        return result

    def jobs_by_owner(self, owner: str) -> list[Job]:
        """Jobs in this cluster owned by ``owner``."""
        return [job for job in self.jobs() if job.owner == owner]

    def clear_jobs(self) -> None:
        """Evict every job from every machine (background load is kept)."""
        for machine in self.machines:
            machine.clear()

    def __len__(self) -> int:
        return len(self.machines)
