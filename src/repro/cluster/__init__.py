"""Planet-wide cluster substrate.

This package models the physical substrate underneath the resource market:
machines grouped into clusters at geographically distributed sites, jobs placed
onto machines by a bin-packing scheduler, and the resulting per-pool utilization
statistics that feed the congestion-weighted reserve pricing of the auction
(:mod:`repro.core.reserve`).

The paper's experiments ran against Google's production clusters; here the
substrate is synthetic but exposes the same interface the market needs:

* **resource pools** — a (cluster, resource-type) pair such as ``"cluster-07/cpu"``
  with a total capacity, a unit cost, and a current utilization percentile;
* **fleet generation** — builders for heterogeneous planet-wide fleets with a
  controllable utilization spread (congested vs. idle clusters).
"""

from repro.cluster.resources import (
    ResourceType,
    ResourceVector,
    RESOURCE_TYPES,
    cpu_ram_disk,
)
from repro.cluster.jobs import Job, JobState, make_job_batch
from repro.cluster.machine import Machine
from repro.cluster.cluster import Cluster
from repro.cluster.topology import Site, FleetTopology
from repro.cluster.pools import ResourcePool, PoolIndex
from repro.cluster.scheduler import (
    BinPackingScheduler,
    FirstFitPolicy,
    BestFitPolicy,
    WorstFitPolicy,
    PlacementResult,
)
from repro.cluster.utilization import UtilizationSnapshot, utilization_percentiles
from repro.cluster.fleet_gen import FleetSpec, SyntheticFleet, generate_fleet

__all__ = [
    "ResourceType",
    "ResourceVector",
    "RESOURCE_TYPES",
    "cpu_ram_disk",
    "Job",
    "JobState",
    "make_job_batch",
    "Machine",
    "Cluster",
    "Site",
    "FleetTopology",
    "ResourcePool",
    "PoolIndex",
    "BinPackingScheduler",
    "FirstFitPolicy",
    "BestFitPolicy",
    "WorstFitPolicy",
    "PlacementResult",
    "UtilizationSnapshot",
    "utilization_percentiles",
    "FleetSpec",
    "SyntheticFleet",
    "generate_fleet",
]
