"""Synthetic planet-wide fleet generation.

The paper evaluated the market against Google's production fleet (about 34
clusters appear in Figure 6).  We cannot use that fleet, so this module
generates synthetic fleets whose *statistics* match what the reserve-pricing
and auction code needs to see: heterogeneous cluster sizes, a wide spread of
utilization from nearly idle to heavily congested, and per-dimension
imbalance (a cluster can be CPU-bound while its disk sits idle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.pools import PoolIndex, pools_from_topology
from repro.cluster.resources import (
    DEFAULT_UNIT_COSTS,
    RESOURCE_TYPES,
    ResourceType,
    cpu_ram_disk,
)
from repro.cluster.topology import FleetTopology, Site
from repro.cluster.utilization import UtilizationSnapshot, snapshot_clusters


@dataclass(frozen=True)
class FleetSpec:
    """Parameters controlling synthetic fleet generation.

    Attributes
    ----------
    cluster_count:
        Number of clusters (the paper's Figure 6 shows 34).
    sites:
        Number of geographic sites; clusters are assigned round-robin.
    machines_range:
        Inclusive range of machines per cluster (log-uniform draw).
    machine_cpu / ram_per_cpu / disk_per_cpu:
        Machine shapes; RAM and disk scale with CPU so clusters differ in
        their RAM:CPU and disk:CPU ratios.
    utilization_range:
        Overall spread of target utilizations assigned to clusters.  The
        defaults generate a fleet with both heavily congested (>0.9) and
        nearly idle (<0.2) clusters.
    dimension_jitter:
        Per-resource-dimension jitter applied to a cluster's base target so
        CPU, RAM, and disk utilization differ within a cluster.
    unit_costs:
        Operator unit costs c(r); defaults to
        :data:`repro.cluster.resources.DEFAULT_UNIT_COSTS`.
    """

    cluster_count: int = 34
    sites: int = 8
    machines_range: tuple[int, int] = (50, 400)
    machine_cpu: tuple[float, float] = (16.0, 64.0)
    ram_per_cpu: tuple[float, float] = (2.0, 6.0)
    disk_per_cpu: tuple[float, float] = (50.0, 250.0)
    utilization_range: tuple[float, float] = (0.10, 0.97)
    dimension_jitter: float = 0.12
    unit_costs: Mapping[ResourceType, float] = field(
        default_factory=lambda: dict(DEFAULT_UNIT_COSTS)
    )

    def __post_init__(self) -> None:
        if self.cluster_count < 1:
            raise ValueError("cluster_count must be >= 1")
        if self.sites < 1:
            raise ValueError("sites must be >= 1")
        lo, hi = self.utilization_range
        if not (0.0 <= lo <= hi <= 1.0):
            raise ValueError("utilization_range must satisfy 0 <= lo <= hi <= 1")


@dataclass
class SyntheticFleet:
    """A generated fleet: topology, pool index, and utilization snapshot."""

    spec: FleetSpec
    topology: FleetTopology
    pool_index: PoolIndex
    snapshot: UtilizationSnapshot
    #: Former fixed prices per pool name (what the operator charged before the
    #: market existed); Figure 6 reports settlement prices as a ratio to these.
    fixed_prices: dict[str, float]

    @property
    def clusters(self) -> list[Cluster]:
        return list(self.topology)

    def cluster_names(self) -> list[str]:
        return [cluster.name for cluster in self.topology]

    def congested_pools(self, threshold: float = 0.8) -> list[str]:
        """Pool names with utilization above ``threshold``."""
        return [pool.name for pool in self.pool_index if pool.utilization > threshold]

    def idle_pools(self, threshold: float = 0.4) -> list[str]:
        """Pool names with utilization below ``threshold``."""
        return [pool.name for pool in self.pool_index if pool.utilization < threshold]


def generate_fleet(
    spec: FleetSpec | None = None,
    *,
    seed: int | np.random.Generator = 0,
) -> SyntheticFleet:
    """Generate a synthetic planet-wide fleet.

    Utilization targets are assigned by evenly spacing clusters across
    ``spec.utilization_range`` and then jittering per resource dimension, so
    every generated fleet contains the full congested-to-idle spectrum the
    paper's evaluation relies on.  The background-load mechanism is used to
    hit the targets exactly without placing filler jobs.
    """
    spec = spec or FleetSpec()
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    sites = [
        Site(
            name=f"site-{i}",
            region=f"region-{i % 3}",
            coordinates=(float(rng.uniform(-180, 180)), float(rng.uniform(-60, 60))),
        )
        for i in range(spec.sites)
    ]
    topology = FleetTopology()
    for site in sites:
        topology.add_site(site)

    # Evenly spaced utilization targets, shuffled so cluster id does not encode
    # congestion, then jittered per dimension.
    lo, hi = spec.utilization_range
    base_targets = np.linspace(lo, hi, spec.cluster_count)
    rng.shuffle(base_targets)

    clusters: list[Cluster] = []
    for i in range(spec.cluster_count):
        machine_count = int(
            round(
                np.exp(
                    rng.uniform(
                        np.log(spec.machines_range[0]), np.log(spec.machines_range[1])
                    )
                )
            )
        )
        cpu = float(rng.uniform(*spec.machine_cpu))
        ram = cpu * float(rng.uniform(*spec.ram_per_cpu))
        disk = cpu * float(rng.uniform(*spec.disk_per_cpu))
        cluster = Cluster.homogeneous(
            f"cluster-{i:02d}",
            machine_count=machine_count,
            machine_capacity=cpu_ram_disk(cpu, ram, disk),
            site=sites[i % spec.sites].name,
        )
        loads: dict[ResourceType, float] = {}
        for rtype in RESOURCE_TYPES:
            jitter = float(rng.normal(0.0, spec.dimension_jitter))
            loads[rtype] = float(np.clip(base_targets[i] + jitter, 0.02, 0.99))
        cluster.set_background_load(loads)
        clusters.append(cluster)
        topology.add_cluster(cluster)

    pool_index = pools_from_topology(topology, unit_costs=spec.unit_costs)
    snapshot = snapshot_clusters(clusters)
    # The pre-market fixed price: the operator charged plain cost c(r) per
    # unit regardless of congestion.
    fixed_prices = {pool.name: pool.unit_cost for pool in pool_index}
    return SyntheticFleet(
        spec=spec,
        topology=topology,
        pool_index=pool_index,
        snapshot=snapshot,
        fixed_prices=fixed_prices,
    )


def congested_fleet_spec(
    cluster_count: int = 28,
    *,
    machines_range: tuple[int, int] = (50, 300),
    utilization_range: tuple[float, float] = (0.70, 0.97),
) -> FleetSpec:
    """A fleet where nearly every cluster is congested.

    Used by the ``congested-fleet`` catalog scenario: with no idle clusters to
    migrate into, congestion-weighted reserve prices climb everywhere and the
    market's job becomes rationing rather than migration.

    >>> spec = congested_fleet_spec()
    >>> spec.utilization_range[0] >= 0.7
    True
    """
    return FleetSpec(
        cluster_count=cluster_count,
        machines_range=machines_range,
        utilization_range=utilization_range,
    )


def idle_fleet_spec(
    cluster_count: int = 28,
    *,
    machines_range: tuple[int, int] = (50, 300),
    utilization_range: tuple[float, float] = (0.05, 0.55),
) -> FleetSpec:
    """A fleet with abundant idle capacity.

    Used by the ``idle-fleet-migration`` catalog scenario: discounted reserve
    prices on idle clusters should pull relocating teams out of the few busy
    ones.

    >>> spec = idle_fleet_spec()
    >>> spec.utilization_range[1] <= 0.55
    True
    """
    return FleetSpec(
        cluster_count=cluster_count,
        machines_range=machines_range,
        utilization_range=utilization_range,
    )


def small_fleet(
    cluster_count: int = 4,
    *,
    seed: int = 0,
    utilization_range: tuple[float, float] = (0.2, 0.9),
) -> SyntheticFleet:
    """A small fleet for tests and examples (few clusters, few machines)."""
    spec = FleetSpec(
        cluster_count=cluster_count,
        sites=min(2, cluster_count),
        machines_range=(5, 15),
        utilization_range=utilization_range,
    )
    return generate_fleet(spec, seed=seed)


def utilization_targets(fleet: SyntheticFleet) -> dict[str, float]:
    """Convenience: pool name -> utilization fraction for a generated fleet."""
    return {pool.name: pool.utilization for pool in fleet.pool_index}
