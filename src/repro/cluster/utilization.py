"""Utilization metrics for clusters and resource pools.

The congestion-weighted reserve pricing of Section IV consumes "utilization
percentiles for the different resource dimensions".  This module computes
per-pool utilization snapshots and converts raw utilization fractions into
fleet-relative percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.pools import PoolIndex
from repro.cluster.resources import RESOURCE_TYPES, ResourceType


@dataclass(frozen=True)
class UtilizationSnapshot:
    """Point-in-time utilization of every pool in a fleet.

    ``fractions`` maps pool name -> utilization fraction in [0, 1];
    ``percentiles`` maps pool name -> percentile rank (0..100) of that pool's
    utilization among all pools of the same resource type.
    """

    fractions: dict[str, float]
    percentiles: dict[str, float]

    def fraction(self, pool_name: str) -> float:
        """Utilization fraction of one pool."""
        return self.fractions[pool_name]

    def percentile(self, pool_name: str) -> float:
        """Fleet-relative utilization percentile (0..100) of one pool."""
        return self.percentiles[pool_name]

    def as_vector(self, index: PoolIndex) -> np.ndarray:
        """Utilization fractions in the order of ``index``."""
        return np.array([self.fractions[name] for name in index.names], dtype=float)

    def percentile_vector(self, index: PoolIndex) -> np.ndarray:
        """Utilization percentiles in the order of ``index``."""
        return np.array([self.percentiles[name] for name in index.names], dtype=float)


def percentile_ranks(values: Sequence[float]) -> np.ndarray:
    """Percentile rank (0..100) of each value within the sequence.

    Uses the mean-rank convention so ties share a rank, and a single value
    gets rank 50.  Vectorized: O(n log n).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return np.zeros(0, dtype=float)
    if arr.size == 1:
        return np.array([50.0])
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=float)
    ranks[order] = np.arange(arr.size, dtype=float)
    # average ranks for ties
    for value in np.unique(arr):
        mask = arr == value
        if np.count_nonzero(mask) > 1:
            ranks[mask] = ranks[mask].mean()
    return 100.0 * ranks / (arr.size - 1)


def snapshot_clusters(clusters: Iterable[Cluster]) -> UtilizationSnapshot:
    """Build a :class:`UtilizationSnapshot` from live cluster objects."""
    fractions: dict[str, float] = {}
    by_type: dict[ResourceType, list[tuple[str, float]]] = {rtype: [] for rtype in RESOURCE_TYPES}
    for cluster in clusters:
        # One machine pass per cluster (not one per resource dimension).
        vector = cluster.utilization_vector()
        for rtype in RESOURCE_TYPES:
            name = f"{cluster.name}/{rtype.value}"
            frac = vector[rtype]
            fractions[name] = frac
            by_type[rtype].append((name, frac))
    percentiles: dict[str, float] = {}
    for rtype, entries in by_type.items():
        if not entries:
            continue
        names = [name for name, _ in entries]
        ranks = percentile_ranks([frac for _, frac in entries])
        for name, rank in zip(names, ranks):
            percentiles[name] = float(rank)
    return UtilizationSnapshot(fractions=fractions, percentiles=percentiles)


def snapshot_pools(index: PoolIndex) -> UtilizationSnapshot:
    """Build a snapshot from a :class:`PoolIndex` (uses stored utilizations)."""
    fractions = {pool.name: pool.utilization for pool in index}
    percentiles: dict[str, float] = {}
    for rtype in RESOURCE_TYPES:
        pools = index.pools_of_type(rtype)
        if not pools:
            continue
        ranks = percentile_ranks([pool.utilization for pool in pools])
        for pool, rank in zip(pools, ranks):
            percentiles[pool.name] = float(rank)
    return UtilizationSnapshot(fractions=fractions, percentiles=percentiles)


def utilization_percentiles(
    utilizations: Mapping[str, float] | Iterable[Cluster] | PoolIndex,
) -> dict[str, float]:
    """Percentile rank per pool, accepting several input shapes.

    Accepts a ``{pool name: fraction}`` mapping, an iterable of clusters, or a
    :class:`PoolIndex`; returns ``{pool name: percentile 0..100}``.
    """
    if isinstance(utilizations, PoolIndex):
        return dict(snapshot_pools(utilizations).percentiles)
    if isinstance(utilizations, Mapping):
        names = list(utilizations)
        ranks = percentile_ranks([utilizations[name] for name in names])
        return {name: float(rank) for name, rank in zip(names, ranks)}
    return dict(snapshot_clusters(utilizations).percentiles)


def utilization_spread(fractions: Iterable[float]) -> float:
    """Standard deviation of utilization fractions across pools.

    The paper argues traditional allocation leads to "uneven utilization,
    significant shortages and surpluses"; a lower spread after the market runs
    indicates the utilization-weighted reserve prices are doing their job.
    """
    arr = np.asarray(list(fractions), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(arr.std())
