"""Resource types and resource vectors.

The market prices three low-level resource dimensions, matching the paper's
experimental setup ("each resource pool was taken as a cluster / resource type
combination with the latter including CPU, RAM, and disk").  A
:class:`ResourceVector` is a small typed mapping from :class:`ResourceType` to a
float quantity, used for machine capacities, job requirements, and service
coverage amounts.

Quantities use abstract but realistic units:

* ``CPU``  — cores (1.0 == one core)
* ``RAM``  — gibibytes
* ``DISK`` — gibibytes
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping


class ResourceType(str, enum.Enum):
    """A low-level resource dimension priced by the market."""

    CPU = "cpu"
    RAM = "ram"
    DISK = "disk"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Canonical ordering of resource types used throughout the code base.
RESOURCE_TYPES: tuple[ResourceType, ...] = (
    ResourceType.CPU,
    ResourceType.RAM,
    ResourceType.DISK,
)

#: Default per-unit cost (budget dollars) for each resource dimension.  These
#: play the role of the paper's "real, known cost c(r)" and are deliberately
#: not equal: disk is far cheaper per unit than CPU and RAM, which is exactly
#: the situation motivating the increment normalization of Section III-C-2.
DEFAULT_UNIT_COSTS: dict[ResourceType, float] = {
    ResourceType.CPU: 10.0,
    ResourceType.RAM: 2.0,
    ResourceType.DISK: 0.05,
}


@dataclass(frozen=True)
class ResourceVector:
    """An immutable (cpu, ram, disk) quantity triple.

    Supports element-wise arithmetic and comparisons needed by the scheduler
    (capacity checks) and the service catalog (coverage computations).
    """

    cpu: float = 0.0
    ram: float = 0.0
    disk: float = 0.0

    # -- constructors ------------------------------------------------------
    @staticmethod
    def zero() -> "ResourceVector":
        """The all-zero resource vector."""
        return ResourceVector(0.0, 0.0, 0.0)

    @staticmethod
    def from_mapping(values: Mapping[ResourceType | str, float]) -> "ResourceVector":
        """Build a vector from a mapping keyed by :class:`ResourceType` or name."""
        normalized: dict[ResourceType, float] = {}
        for key, value in values.items():
            rtype = ResourceType(key) if not isinstance(key, ResourceType) else key
            normalized[rtype] = float(value)
        return ResourceVector(
            cpu=normalized.get(ResourceType.CPU, 0.0),
            ram=normalized.get(ResourceType.RAM, 0.0),
            disk=normalized.get(ResourceType.DISK, 0.0),
        )

    # -- accessors ---------------------------------------------------------
    def get(self, rtype: ResourceType) -> float:
        """Return the quantity of ``rtype`` in this vector."""
        if rtype is ResourceType.CPU:
            return self.cpu
        if rtype is ResourceType.RAM:
            return self.ram
        if rtype is ResourceType.DISK:
            return self.disk
        raise KeyError(rtype)

    def as_dict(self) -> dict[ResourceType, float]:
        """Return a plain ``dict`` keyed by :class:`ResourceType`."""
        return {rtype: self.get(rtype) for rtype in RESOURCE_TYPES}

    def __iter__(self) -> Iterator[float]:
        return iter((self.cpu, self.ram, self.disk))

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu + other.cpu, self.ram + other.ram, self.disk + other.disk)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu - other.cpu, self.ram - other.ram, self.disk - other.disk)

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(self.cpu * scalar, self.ram * scalar, self.disk * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "ResourceVector":
        return ResourceVector(-self.cpu, -self.ram, -self.disk)

    # -- comparisons -------------------------------------------------------
    def fits_within(self, capacity: "ResourceVector", *, tol: float = 1e-9) -> bool:
        """True iff every component of ``self`` is <= the matching ``capacity``."""
        return (
            self.cpu <= capacity.cpu + tol
            and self.ram <= capacity.ram + tol
            and self.disk <= capacity.disk + tol
        )

    def dominates(self, other: "ResourceVector", *, tol: float = 1e-9) -> bool:
        """True iff every component of ``self`` is >= the matching component of ``other``."""
        return other.fits_within(self, tol=tol)

    def is_nonnegative(self, *, tol: float = 1e-9) -> bool:
        """True iff all components are >= 0 (within ``tol``)."""
        return self.cpu >= -tol and self.ram >= -tol and self.disk >= -tol

    def is_zero(self, *, tol: float = 1e-12) -> bool:
        """True iff all components are 0 (within ``tol``)."""
        return abs(self.cpu) <= tol and abs(self.ram) <= tol and abs(self.disk) <= tol

    # -- aggregates --------------------------------------------------------
    def total_cost(self, unit_costs: Mapping[ResourceType, float] | None = None) -> float:
        """Dot-product with per-unit costs (defaults to :data:`DEFAULT_UNIT_COSTS`)."""
        costs = DEFAULT_UNIT_COSTS if unit_costs is None else unit_costs
        return sum(self.get(rtype) * costs.get(rtype, 0.0) for rtype in RESOURCE_TYPES)

    def max_fraction_of(self, capacity: "ResourceVector") -> float:
        """The largest component-wise fraction ``self[r] / capacity[r]``.

        Used as the "dominant share" when deciding how full a machine or
        cluster is.  Components with zero capacity contribute ``inf`` when the
        demand on them is non-zero and are ignored otherwise.
        """
        fractions: list[float] = []
        for rtype in RESOURCE_TYPES:
            cap = capacity.get(rtype)
            need = self.get(rtype)
            if cap <= 0.0:
                if need > 0.0:
                    fractions.append(math.inf)
                continue
            fractions.append(need / cap)
        return max(fractions) if fractions else 0.0

    def clamp_nonnegative(self) -> "ResourceVector":
        """Return a copy with negative components replaced by zero."""
        return ResourceVector(max(self.cpu, 0.0), max(self.ram, 0.0), max(self.disk, 0.0))


def cpu_ram_disk(cpu: float, ram: float, disk: float) -> ResourceVector:
    """Convenience constructor mirroring the canonical resource ordering."""
    return ResourceVector(cpu=cpu, ram=ram, disk=disk)


def sum_vectors(vectors: Iterable[ResourceVector]) -> ResourceVector:
    """Sum an iterable of resource vectors (empty iterable sums to zero)."""
    total = ResourceVector.zero()
    for vec in vectors:
        total = total + vec
    return total
