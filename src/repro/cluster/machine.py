"""A single machine: capacity, current allocation, and job placement."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.jobs import Job, JobState
from repro.cluster.resources import RESOURCE_TYPES, ResourceType, ResourceVector


class CapacityError(RuntimeError):
    """Raised when a placement would exceed a machine's capacity."""


@dataclass
class Machine:
    """One physical machine inside a cluster.

    Machines track the set of jobs placed on them and expose free/used
    capacity per resource dimension.  Placement is all-or-nothing: a job
    either fits in the remaining free capacity or the placement fails.
    """

    name: str
    capacity: ResourceVector
    jobs: dict[int, Job] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.capacity.is_nonnegative():
            raise ValueError(f"machine capacity must be non-negative, got {self.capacity}")

    # -- capacity accounting -----------------------------------------------
    @property
    def used(self) -> ResourceVector:
        """Sum of footprints of all jobs currently placed on this machine."""
        if not self.jobs:  # the common case on freshly generated fleets
            return ResourceVector.zero()
        total = ResourceVector.zero()
        for job in self.jobs.values():
            total = total + job.footprint
        return total

    @property
    def free(self) -> ResourceVector:
        """Remaining capacity on this machine."""
        return self.capacity - self.used

    def utilization(self, rtype: ResourceType) -> float:
        """Utilization fraction (0..1) of one resource dimension."""
        cap = self.capacity.get(rtype)
        if cap <= 0.0:
            return 0.0
        return min(1.0, self.used.get(rtype) / cap)

    def dominant_utilization(self) -> float:
        """Largest utilization fraction across resource dimensions."""
        return max(self.utilization(rtype) for rtype in RESOURCE_TYPES)

    # -- placement -----------------------------------------------------------
    def can_fit(self, job: Job) -> bool:
        """True iff ``job``'s full footprint fits in the free capacity."""
        return job.footprint.fits_within(self.free)

    def place(self, job: Job) -> None:
        """Place ``job`` on this machine, raising :class:`CapacityError` if it does not fit."""
        if job.job_id in self.jobs:
            raise CapacityError(f"job {job.name} is already placed on {self.name}")
        if not self.can_fit(job):
            raise CapacityError(
                f"job {job.name} footprint {job.footprint} does not fit in free {self.free} on {self.name}"
            )
        self.jobs[job.job_id] = job
        job.state = JobState.RUNNING

    def evict(self, job: Job) -> None:
        """Remove ``job`` from this machine (e.g. priority preemption)."""
        if job.job_id not in self.jobs:
            raise KeyError(f"job {job.name} is not placed on {self.name}")
        del self.jobs[job.job_id]
        job.state = JobState.EVICTED

    def finish(self, job: Job) -> None:
        """Mark ``job`` finished and release its resources."""
        if job.job_id not in self.jobs:
            raise KeyError(f"job {job.name} is not placed on {self.name}")
        del self.jobs[job.job_id]
        job.state = JobState.FINISHED

    def clear(self) -> None:
        """Remove all jobs (used when regenerating utilization scenarios)."""
        for job in list(self.jobs.values()):
            job.state = JobState.PENDING
        self.jobs.clear()
