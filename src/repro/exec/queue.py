"""The coordinator's job queue: an explicit QUEUED/RUNNING/DONE/ERROR lifecycle.

PR 5's coordinator tracked a sweep with a bare ``deque`` of pending indices
and a ``set`` of done ones — enough for one sweep, but a *service* needs the
lifecycle to be inspectable (``repro workers list`` reports queue depths),
bounded (a job that keeps forfeiting must eventually abort the sweep instead
of ping-ponging forever), and testable as a state machine in its own right.

:class:`JobQueue` is that state machine.  Each job moves through:

.. code-block:: text

            mark_running                mark_done
   QUEUED ---------------> RUNNING -----------------> DONE   (terminal)
      ^                      |  |
      |       requeue        |  |      mark_error
      +----------------------+  +-------------------> ERROR  (terminal)
        (worker lost; burns
         one retry; budget
         exhausted => ERROR)

plus one deliberate extra edge: ``QUEUED -> DONE``.  A worker declared lost
prematurely may still deliver its result while the retried copy sits queued
— the job is deterministic, the bytes are the same, so the straggler result
is accepted and the queued retry evaporates (see ``docs/distributed.md``,
failure semantics).  Every other transition raises
:class:`IllegalTransition`; terminal states never move again.

Dispatch order is longest-job-first: the queue is seeded with the caller's
priority order and :meth:`next_job` always hands out the front.  A requeued
job goes back to the *front* (``front=True``), preserving the coordinator's
invariant that the heaviest forfeited job restarts before anything lighter.

>>> q = JobQueue([1, 0], retry_budget=1)    # job 1 is the heavier one
>>> q.next_job()
1
>>> q.mark_running(1, worker="w0")
>>> q.requeue(1, front=True)                # w0 died: burns the only retry
>>> q.job(1).retries_left
0
>>> q.mark_running(q.next_job(), worker="w1")
>>> q.mark_done(1)
>>> q.counts()["done"]
1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Sequence

#: How many times one job may be forfeited by a lost worker before the
#: coordinator gives up on the sweep.  Worker loss is *infrastructure*
#: failure — normally transient — so the budget is generous; a fleet that
#: eats the same job five times has a systemic problem retrying will not fix.
DEFAULT_RETRY_BUDGET = 5


class JobState(str, Enum):
    """Lifecycle states of one job on the coordinator."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"


class IllegalTransition(RuntimeError):
    """A lifecycle edge the state machine does not allow (a coordinator bug)."""


class RetryBudgetExhausted(RuntimeError):
    """A job forfeited by lost workers more times than its retry budget allows."""


@dataclass
class Job:
    """Coordinator-side record of one sweep job."""

    index: int
    #: Human label for error messages and the control plane (scenario name).
    label: str
    state: JobState = JobState.QUEUED
    #: Times the job has been dispatched to a worker.
    attempts: int = 0
    #: Worker-loss requeues still allowed before the sweep aborts.
    retries_left: int = DEFAULT_RETRY_BUDGET
    #: Worker currently (or last) running the job.
    worker: str | None = None
    #: Error message once the job is in ERROR.
    error: str | None = None

    def snapshot(self) -> dict[str, object]:
        """Plain-JSON view for the control plane."""
        return {
            "index": self.index,
            "label": self.label,
            "state": self.state.value,
            "attempts": self.attempts,
            "retries_left": self.retries_left,
            "worker": self.worker,
            "error": self.error,
        }


@dataclass
class _QueueStats:
    dispatches: int = 0
    requeues: int = 0


class JobQueue:
    """Longest-job-first queue with an explicit per-job lifecycle.

    ``order`` is the priority order (indices, heaviest first) the caller
    computed — exactly what :func:`repro.simulation.runner.longest_job_first`
    produces.  ``labels`` maps indices to human names (scenario names) used
    in error messages; unnamed jobs fall back to ``job <index>``.
    """

    def __init__(
        self,
        order: Sequence[int],
        *,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        labels: dict[int, str] | None = None,
    ):
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if len(set(order)) != len(order):
            raise ValueError("job order contains duplicate indices")
        labels = labels or {}
        self._jobs: dict[int, Job] = {
            index: Job(
                index=index,
                label=labels.get(index, f"job {index}"),
                retries_left=retry_budget,
            )
            for index in order
        }
        #: QUEUED indices in dispatch order (front = next to run).
        self._queued: list[int] = list(order)
        self.stats = _QueueStats()

    # -- introspection -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def __contains__(self, index: object) -> bool:
        """Whether ``index`` is one of this sweep's job indices.

        Explicit on purpose: without it, ``in`` would fall back to iterating
        the :class:`Job` records and an integer index would never match.
        """
        return index in self._jobs

    def job(self, index: int) -> Job:
        """The lifecycle record of one job (KeyError for unknown indices)."""
        return self._jobs[index]

    def state(self, index: int) -> JobState:
        return self._jobs[index].state

    def counts(self) -> dict[str, int]:
        """How many jobs sit in each state (the control plane's queue view).

        >>> JobQueue([0, 1]).counts()
        {'queued': 2, 'running': 0, 'done': 0, 'error': 0}
        """
        totals = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            totals[job.state.value] += 1
        return totals

    @property
    def finished(self) -> bool:
        """True once every job is terminal (DONE or ERROR)."""
        return all(
            job.state in (JobState.DONE, JobState.ERROR) for job in self._jobs.values()
        )

    @property
    def done_count(self) -> int:
        return sum(1 for job in self._jobs.values() if job.state is JobState.DONE)

    # -- transitions -------------------------------------------------------------------
    def next_job(self) -> int | None:
        """The next QUEUED index in priority order, or ``None`` when empty.

        Peeks without transitioning: the caller marks the job RUNNING only
        once its dispatch frame actually went out.
        """
        return self._queued[0] if self._queued else None

    def mark_running(self, index: int, *, worker: str) -> None:
        """QUEUED -> RUNNING: the job's frame was handed to ``worker``."""
        job = self._require(index, JobState.QUEUED, "mark_running")
        self._queued.remove(index)
        job.state = JobState.RUNNING
        job.worker = worker
        job.attempts += 1
        self.stats.dispatches += 1

    def mark_done(self, index: int) -> None:
        """RUNNING -> DONE — or QUEUED -> DONE for a straggler result.

        The straggler edge: a worker declared lost prematurely delivers its
        result while the retried copy is still queued; the result is the same
        bytes, so it counts, and the queued retry is withdrawn.
        """
        job = self._jobs[index]
        if job.state is JobState.RUNNING:
            pass
        elif job.state is JobState.QUEUED:
            self._queued.remove(index)  # withdraw the now-pointless retry
        else:
            raise IllegalTransition(
                f"{job.label} cannot move {job.state.value} -> done"
            )
        job.state = JobState.DONE

    def requeue(self, index: int, *, front: bool = True) -> None:
        """RUNNING -> QUEUED: the job's worker was lost; burn one retry.

        Raises :class:`RetryBudgetExhausted` (and parks the job in ERROR)
        when the budget is spent — the coordinator aborts the sweep rather
        than bouncing a job around a fleet that keeps eating it.
        """
        job = self._require(index, JobState.RUNNING, "requeue")
        if job.retries_left <= 0:
            job.state = JobState.ERROR
            job.error = "retry budget exhausted"
            raise RetryBudgetExhausted(
                f"{job.label} forfeited by lost workers more than "
                f"{job.attempts - 1} time(s); retry budget exhausted"
            )
        job.retries_left -= 1
        job.state = JobState.QUEUED
        job.worker = None
        self.stats.requeues += 1
        if front:
            self._queued.insert(0, index)
        else:
            self._queued.append(index)

    def mark_error(self, index: int, message: str) -> None:
        """RUNNING (or QUEUED) -> ERROR: the scenario itself raised.

        The QUEUED edge mirrors the straggler rule: a ghost worker's *error*
        for a job whose retry is still queued is just as deterministic as a
        ghost result — the retry would crash identically, so fail now.
        """
        job = self._jobs[index]
        if job.state is JobState.QUEUED:
            self._queued.remove(index)
        elif job.state is not JobState.RUNNING:
            raise IllegalTransition(
                f"{job.label} cannot move {job.state.value} -> error"
            )
        job.state = JobState.ERROR
        job.error = message

    # -- helpers -----------------------------------------------------------------------
    def _require(self, index: int, expected: JobState, verb: str) -> Job:
        job = self._jobs[index]
        if job.state is not expected:
            raise IllegalTransition(
                f"{verb}({job.label}) requires {expected.value}, "
                f"job is {job.state.value}"
            )
        return job

    def snapshot(self) -> list[dict[str, object]]:
        """Plain-JSON view of every job, in index order (control plane)."""
        return [self._jobs[i].snapshot() for i in sorted(self._jobs)]
