"""Client side of the coordinator's control plane (``repro workers ...``).

A control session is one TCP connection speaking the same length-prefixed
JSON protocol as job traffic, opened with a ``control`` frame instead of a
worker ``hello`` and authenticated by the same shared-secret handshake.  The
coordinator serves it from the connection's own thread, so fleet commands
work mid-sweep and while idle alike:

>>> from repro.exec.control import ControlClient      # doctest: +SKIP
>>> with ControlClient("127.0.0.1:7077") as fleet:    # doctest: +SKIP
...     fleet.list()["workers"]

``list`` returns the ``fleet`` snapshot (per-worker rows plus job-queue
state counts), ``drain`` blocks until in-flight jobs finish and the fleet is
retired, ``scale`` shrinks the fleet without losing queued jobs (scale-up is
advisory: the coordinator cannot start processes on other hosts, so the
reply says how many more workers to launch).
"""

from __future__ import annotations

import socket

from repro.exec.wire import (
    DEFAULT_TRANSPORT,
    HandshakeRejected,
    Transport,
    WireError,
    client_handshake,
)
from repro.exec.worker import parse_hostport


class ControlError(RuntimeError):
    """A control command failed: refused handshake, dead coordinator, bad reply."""


class ControlClient:
    """One authenticated control session against a live coordinator.

    Connects (and completes the handshake) eagerly in the constructor so a
    wrong secret or dead coordinator fails fast, before any command is
    attempted.  Use as a context manager; commands may be issued repeatedly
    on one session.
    """

    def __init__(
        self,
        connect: str,
        *,
        secret: str | None = None,
        timeout: float = 10.0,
        transport: Transport | None = None,
    ):
        self.connect = connect
        self._transport = transport or DEFAULT_TRANSPORT
        host, port = parse_hostport(connect)
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ControlError(f"no coordinator at {connect}: {error}") from error
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._transport.send(self._sock, {"type": "control"})
            client_handshake(self._sock, self._transport, secret)
        except HandshakeRejected as error:
            self._sock.close()
            raise ControlError(f"coordinator refused control session: {error}") from error
        except (OSError, WireError) as error:
            self._sock.close()
            raise ControlError(f"control handshake failed: {error}") from error

    # -- commands ----------------------------------------------------------------------
    def list(self) -> dict:
        """The fleet snapshot: worker rows, queue state counts, sweep flags."""
        return self._command({"type": "workers-list"}, expect="fleet")

    def drain(self, *, timeout: float | None = None) -> dict:
        """Stop dispatch, wait out in-flight jobs, retire every worker.

        Blocks until the coordinator reports the fleet retired (pass
        ``timeout`` to bound how long the coordinator waits on stuck jobs).
        Returns the ``drained`` frame (``workers``: how many were retired).
        """
        # The reply legitimately takes as long as the longest in-flight job.
        self._sock.settimeout(None)
        return self._command(
            {"type": "drain", "timeout": timeout}, expect="drained"
        )

    def scale(self, count: int) -> dict:
        """Shrink the fleet to ``count`` workers (losing no queued jobs).

        Returns the ``scaled`` frame: ``alive`` (fleet size now), ``stopped``
        (workers retired), ``needed`` (how many more must be started by hand
        — the coordinator cannot spawn processes on remote hosts).
        """
        self._sock.settimeout(None)  # waits for busy victims to finish
        return self._command({"type": "scale", "count": int(count)}, expect="scaled")

    # -- plumbing ----------------------------------------------------------------------
    def _command(self, frame: dict, *, expect: str) -> dict:
        try:
            self._transport.send(self._sock, frame)
            reply = self._transport.recv(self._sock)
        except (OSError, WireError) as error:
            raise ControlError(f"coordinator went away mid-command: {error}") from error
        if reply is None:
            raise ControlError("coordinator closed the control session")
        if reply.get("type") == "control-error":
            raise ControlError(str(reply.get("message", "unknown control error")))
        if reply.get("type") != expect:
            raise ControlError(
                f"expected a {expect!r} reply, got {reply.get('type')!r}"
            )
        return reply

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()