"""The execution-backend protocol and registry.

The parallel runner's job is scheduling — which scenario runs next, what the
report looks like — not *where* the work happens.  An
:class:`ExecutionBackend` is the "where": anything that can take a list of
:class:`~repro.simulation.catalog.ScenarioSpec` jobs plus a preferred
dispatch order and deliver one :class:`~repro.simulation.runner.ScenarioRunResult`
per job.  The registry maps kebab-case backend names to implementations,
mirroring the scenario catalog and the mechanism registry: the CLI selects a
backend with ``--backend NAME``, :class:`~repro.simulation.runner.ParallelRunner`
resolves the name at run time, and sweep reports stay **byte-identical**
whichever backend executed the jobs (every job carries its own seed, results
are assembled in submission order, and timings stay out of the canonical
report).

Registered backends:

===========  ==============================================================
``serial``   Run every job in the calling process, one after another.
``process``  Fan jobs across a local :class:`~concurrent.futures.ProcessPoolExecutor`
             (falls back to serial where subprocesses are forbidden).
``remote``   Stream jobs over TCP to ``python -m repro worker`` daemons on
             any number of hosts, with heartbeats, retry budgets, an
             optional shared-secret handshake, and a control plane
             (``repro workers list|drain|scale``) for persistent fleets.
===========  ==============================================================

Backends may additionally expose an optional ``set_worker_speeds(mapping)``
hook; when present, :class:`~repro.simulation.runner.ParallelRunner` feeds it
per-worker speed factors derived from the result store's wall-time histories
so dispatch can be host-aware (the remote backend sends the heaviest job to
the fastest free worker).

>>> from repro.exec import backend_names, get_backend_factory
>>> backend_names()
['serial', 'process', 'remote']
>>> get_backend_factory('serial').name
'serial'
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec
    from repro.simulation.runner import ScenarioRunResult

#: The backend jobs run on unless told otherwise.
DEFAULT_BACKEND = "process"

#: ``emit(index, result)`` — deliver the finished result for ``specs[index]``.
#: A backend must call it exactly once per job, from the thread that called
#: :meth:`ExecutionBackend.execute` (callers chain result-store writes onto
#: it, and sqlite connections are not thread-safe).
EmitFn = Callable[[int, "ScenarioRunResult"], None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute a batch of independent scenario jobs.

    Implementations must honour the shared contract the backend test suite
    enforces for every registered backend:

    * ``emit`` fires **exactly once** per spec, with a result equal to what
      :func:`~repro.simulation.runner.run_scenario` would produce in-process
      (jobs are deterministic, so *where* they ran cannot show in the bytes);
    * ``order`` is the preferred dispatch order (longest job first, indices
      into ``specs``); backends are free to complete jobs in any order;
    * a job that raises inside the backend surfaces as ``RuntimeError``
      naming the scenario — infrastructure loss (a worker dying) is retried,
      a deterministic scenario failure is not.
    """

    #: Registry name (kebab-case), recorded as store provenance via the
    #: result's ``worker`` field.
    name: str
    #: One-line description shown by ``--backend list``.
    description: str

    def execute(
        self,
        specs: Sequence["ScenarioSpec"],
        *,
        order: Sequence[int],
        emit: EmitFn,
    ) -> None:
        """Run every spec, delivering each finished result through ``emit``."""
        ...  # pragma: no cover - protocol


class BackendFactory(Protocol):
    """A callable producing a configured backend (normally the class itself)."""

    name: str
    description: str

    def __call__(self, **options) -> ExecutionBackend: ...  # pragma: no cover


#: The registry: backend name -> factory (the backend class).
BACKENDS: dict[str, BackendFactory] = {}


def register_backend(factory: BackendFactory) -> BackendFactory:
    """Add a backend factory to the registry; rejects duplicate names."""
    if factory.name in BACKENDS:
        raise ValueError(f"backend {factory.name!r} is already registered")
    BACKENDS[factory.name] = factory
    return factory


def backend_names() -> list[str]:
    """All registered backend names, in registration order (serial first)."""
    return list(BACKENDS)


def get_backend_factory(name: str) -> BackendFactory:
    """Look up a backend factory by name; unknown names list what *is* available."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise KeyError(f"unknown backend {name!r}; available: {known}") from None


def create_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a registry backend with backend-specific ``options``.

    Options every backend accepts: ``workers`` (pool size for ``process``,
    minimum connected workers for ``remote``, ignored by ``serial``).  The
    remote backend additionally takes ``bind`` and its timeout knobs — see
    :class:`repro.exec.coordinator.RemoteBackend`.
    """
    return get_backend_factory(name)(**options)


def backend_summaries() -> list[dict[str, str]]:
    """Name + description per registered backend (what ``--backend list`` shows)."""
    return [
        {"name": factory.name, "description": factory.description}
        for factory in BACKENDS.values()
    ]
