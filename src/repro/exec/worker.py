"""The remote worker daemon: ``python -m repro worker --connect HOST:PORT``.

A worker is deliberately dumb: it dials the coordinator, announces itself
(``hello`` with its id and in-flight capacity), then loops — receive a job,
run it with the very same :func:`~repro.exec.serial.run_one` path every other
backend uses, ship the result back.  A background thread emits heartbeats so
the coordinator can tell "busy with a long scenario" from "host died".  All
scheduling intelligence (dispatch order, retry, caps) lives coordinator-side;
a worker never needs the scenario catalog, the result store, or any state
beyond its open socket.

Run ``--capacity N`` workers to let the coordinator pipeline N jobs onto this
host (the worker still executes them one at a time; queued jobs wait in the
socket, so a worker loss forfeits at most ``capacity`` jobs, which the
coordinator re-runs elsewhere).

Two lifetimes:

* **one-shot** (default): one coordinator session; any ``shutdown`` — or the
  coordinator vanishing — ends the worker.
* **daemon** (``--daemon``): the worker survives across sweeps.  A non-final
  ``shutdown`` or a dropped connection sends it back to the dial loop to
  serve the next coordinator on the same address; only a *final* shutdown
  (sent by ``repro workers drain`` / scale-down) — or a rejection, which
  redialling cannot fix — retires it.

When the coordinator holds a shared secret, the hello is answered with a
``challenge`` the worker must MAC before it is welcomed; the welcome carries
the coordinator's counter-proof, so a worker given ``--secret`` refuses an
unauthenticated coordinator just as firmly (see :func:`repro.exec.wire.client_handshake`).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Callable

from repro.exec.serial import run_one
from repro.exec.wire import (
    DEFAULT_TRANSPORT,
    HandshakeRejected,
    Transport,
    WireError,
    client_handshake,
    decode_spec_b64,
    result_to_wire,
)

#: Seconds between worker heartbeats (coordinator default tolerates 10 s).
#: Constructor/CLI parameter — failure tests run it in milliseconds.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: How long a starting worker keeps redialling a coordinator that is not
#: listening yet (``make smoke`` starts workers before the sweep process).
#: A daemon gets a fresh window per reconnect attempt, so this also bounds
#: how long a daemon outlives its last coordinator.
DEFAULT_RETRY_SECONDS = 10.0

#: Pause before a daemon redials after losing its coordinator mid-session.
DEFAULT_RECONNECT_DELAY = 0.2


class WorkerError(RuntimeError):
    """The worker could not serve: connect failure, rejection, lost coordinator."""


class WorkerRejected(WorkerError):
    """The coordinator refused us (bad secret, duplicate id, malformed hello).

    Fatal even in daemon mode — redialling would just be rejected again.
    """


class _ConnectionLost(WorkerError):
    """Mid-session link loss: fatal one-shot, a redial trigger for daemons."""


def parse_hostport(address: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (the CLI's ``--connect`` / ``--bind`` syntax).

    >>> parse_hostport("127.0.0.1:7077")
    ('127.0.0.1', 7077)
    >>> parse_hostport(":0")
    ('127.0.0.1', 0)
    """
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address {address!r} is not HOST:PORT")
    return (host or "127.0.0.1", int(port))


def default_worker_id() -> str:
    """Hostname-qualified id used when ``--id`` is not given."""
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    connect: str,
    *,
    worker_id: str | None = None,
    capacity: int = 1,
    retry_seconds: float = DEFAULT_RETRY_SECONDS,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    runner: Callable | None = None,
    log: Callable[[str], None] | None = None,
    secret: str | None = None,
    daemon: bool = False,
    reconnect_delay: float = DEFAULT_RECONNECT_DELAY,
    transport: Transport | None = None,
) -> int:
    """Serve jobs from the coordinator at ``connect`` until shut down.

    Returns the number of jobs executed (across every session when
    ``daemon`` is true).  Raises :class:`WorkerError` when the coordinator
    cannot be reached within ``retry_seconds``, rejects the hello (duplicate
    worker id, failed authentication), or — for a one-shot worker — vanishes
    without sending ``shutdown``.  A daemon treats lost connections and
    non-final shutdowns as cues to redial; each redial gets a fresh
    ``retry_seconds`` window, so a daemon whose coordinator never returns
    eventually raises too.

    ``runner`` overrides the job execution path (tests inject quick fakes);
    the default is the shared :func:`~repro.exec.serial.run_one`.
    ``transport`` overrides the wire layer (the chaos harness' seam).
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    worker_id = worker_id or default_worker_id()
    say = log or (lambda message: None)
    tx = transport or DEFAULT_TRANSPORT
    total_jobs = 0
    while True:
        try:
            jobs_run, final = _serve_session(
                connect,
                worker_id=worker_id,
                capacity=capacity,
                retry_seconds=retry_seconds,
                heartbeat_interval=heartbeat_interval,
                runner=runner,
                say=say,
                secret=secret,
                daemon=daemon,
                transport=tx,
            )
        except _ConnectionLost as error:
            if not daemon:
                raise WorkerError(str(error)) from error
            say(f"worker {worker_id}: {error}; redialling")
            time.sleep(reconnect_delay)
            continue
        total_jobs += jobs_run
        if final or not daemon:
            return total_jobs
        say(f"worker {worker_id}: sweep over; redialling {connect}")
        time.sleep(reconnect_delay)


def _serve_session(
    connect: str,
    *,
    worker_id: str,
    capacity: int,
    retry_seconds: float,
    heartbeat_interval: float,
    runner: Callable | None,
    say: Callable[[str], None],
    secret: str | None,
    daemon: bool,
    transport: Transport,
) -> tuple[int, bool]:
    """One coordinator session: dial, handshake, serve jobs until shutdown.

    Returns ``(jobs_run, final)`` where ``final`` is the shutdown frame's
    retirement flag (always effectively final for one-shot workers).
    """
    sock = _dial(connect, retry_seconds)
    jobs_run = 0
    send_lock = threading.Lock()
    stop_beating = threading.Event()
    try:
        with send_lock:
            transport.send(
                sock,
                {
                    "type": "hello",
                    "worker": worker_id,
                    "capacity": capacity,
                    "pid": os.getpid(),
                    "daemon": daemon,
                },
            )
        try:
            client_handshake(sock, transport, secret)
        except HandshakeRejected as error:
            raise WorkerRejected(
                f"coordinator rejected worker {worker_id!r}: {error}"
            ) from error
        # The dial/handshake timeout must not apply to job waits: an idle
        # worker legitimately blocks on recv for as long as the sweep runs.
        sock.settimeout(None)
        say(f"worker {worker_id}: connected to {connect} (capacity {capacity})")

        beater = threading.Thread(
            target=_heartbeat_loop,
            args=(sock, send_lock, stop_beating, heartbeat_interval, transport),
            name=f"heartbeat-{worker_id}",
            daemon=True,
        )
        beater.start()

        while True:
            message = transport.recv(sock)
            if message is None:
                raise _ConnectionLost(
                    f"worker {worker_id!r}: coordinator vanished without shutdown"
                )
            kind = message["type"]
            if kind == "shutdown":
                final = bool(message.get("final", False))
                say(f"worker {worker_id}: shutdown after {jobs_run} job(s)")
                return jobs_run, final
            if kind != "job":
                continue  # future protocol additions must not kill old workers
            job = int(message["job"])
            # Results echo the sweep epoch so a straggler from an aborted
            # sweep can never complete a job of the next one.
            sweep = message.get("sweep")
            spec = decode_spec_b64(message["spec"])
            say(f"worker {worker_id}: job {job} ({message.get('scenario', '?')})")
            try:
                result = (runner or run_one)(spec, worker=worker_id)
            except Exception as error:
                with send_lock:
                    transport.send(
                        sock,
                        {
                            "type": "error",
                            "job": job,
                            "sweep": sweep,
                            "scenario": getattr(spec, "name", "?"),
                            "message": str(error),
                        },
                    )
                continue
            jobs_run += 1
            with send_lock:
                transport.send(
                    sock,
                    {"job": job, "sweep": sweep, **result_to_wire(result)},
                )
    except (OSError, WireError) as error:
        raise _ConnectionLost(
            f"worker {worker_id!r}: connection failed: {error}"
        ) from error
    finally:
        stop_beating.set()
        sock.close()


def _dial(connect: str, retry_seconds: float) -> socket.socket:
    """Connect to the coordinator, redialling until the retry window closes."""
    host, port = parse_hostport(connect)
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            # Frames are small and latency-sensitive (job in, result out);
            # Nagle buffering would serialize every exchange behind delayed
            # ACKs.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as error:
            if time.monotonic() >= deadline:
                raise WorkerError(
                    f"no coordinator at {connect} after {retry_seconds:.0f}s: {error}"
                ) from error
            time.sleep(0.2)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    stop: threading.Event,
    interval: float,
    transport: Transport,
) -> None:
    while not stop.wait(interval):
        try:
            with send_lock:
                transport.send(sock, {"type": "heartbeat"})
        except OSError:
            return  # the main loop surfaces the broken connection