"""The remote worker daemon: ``python -m repro worker --connect HOST:PORT``.

A worker is deliberately dumb: it dials the coordinator, announces itself
(``hello`` with its id and in-flight capacity), then loops — receive a job,
run it with the very same :func:`~repro.exec.serial.run_one` path every other
backend uses, ship the result back.  A background thread emits heartbeats so
the coordinator can tell "busy with a long scenario" from "host died".  All
scheduling intelligence (dispatch order, retry, caps) lives coordinator-side;
a worker never needs the scenario catalog, the result store, or any state
beyond its open socket.

Run ``--capacity N`` workers to let the coordinator pipeline N jobs onto this
host (the worker still executes them one at a time; queued jobs wait in the
socket, so a worker loss forfeits at most ``capacity`` jobs, which the
coordinator re-runs elsewhere).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Callable

from repro.exec.serial import run_one
from repro.exec.wire import (
    WireError,
    decode_spec_b64,
    recv_message,
    result_to_wire,
    send_message,
)

#: Seconds between worker heartbeats (coordinator default tolerates 10 s).
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: How long a starting worker keeps redialling a coordinator that is not
#: listening yet (``make smoke`` starts workers before the sweep process).
DEFAULT_RETRY_SECONDS = 10.0


class WorkerError(RuntimeError):
    """The worker could not serve: connect failure, rejection, lost coordinator."""


def parse_hostport(address: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (the CLI's ``--connect`` / ``--bind`` syntax).

    >>> parse_hostport("127.0.0.1:7077")
    ('127.0.0.1', 7077)
    >>> parse_hostport(":0")
    ('127.0.0.1', 0)
    """
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address {address!r} is not HOST:PORT")
    return (host or "127.0.0.1", int(port))


def default_worker_id() -> str:
    """Hostname-qualified id used when ``--id`` is not given."""
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    connect: str,
    *,
    worker_id: str | None = None,
    capacity: int = 1,
    retry_seconds: float = DEFAULT_RETRY_SECONDS,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    runner: Callable | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Serve jobs from the coordinator at ``connect`` until it shuts us down.

    Returns the number of jobs executed.  Raises :class:`WorkerError` when the
    coordinator cannot be reached within ``retry_seconds``, rejects the hello
    (duplicate worker id), or vanishes without sending ``shutdown``.

    ``runner`` overrides the job execution path (tests inject quick fakes);
    the default is the shared :func:`~repro.exec.serial.run_one`.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    worker_id = worker_id or default_worker_id()
    say = log or (lambda message: None)
    sock = _dial(connect, retry_seconds)
    jobs_run = 0
    send_lock = threading.Lock()
    stop_beating = threading.Event()
    try:
        with send_lock:
            send_message(
                sock,
                {"type": "hello", "worker": worker_id, "capacity": capacity, "pid": os.getpid()},
            )
        answer = recv_message(sock)
        if answer is None or answer.get("type") != "welcome":
            reason = (answer or {}).get("reason", "connection closed during handshake")
            raise WorkerError(f"coordinator rejected worker {worker_id!r}: {reason}")
        # The dial/handshake timeout must not apply to job waits: an idle
        # worker legitimately blocks on recv for as long as the sweep runs.
        sock.settimeout(None)
        say(f"worker {worker_id}: connected to {connect} (capacity {capacity})")

        beater = threading.Thread(
            target=_heartbeat_loop,
            args=(sock, send_lock, stop_beating, heartbeat_interval),
            name=f"heartbeat-{worker_id}",
            daemon=True,
        )
        beater.start()

        while True:
            message = recv_message(sock)
            if message is None:
                raise WorkerError(
                    f"worker {worker_id!r}: coordinator vanished without shutdown"
                )
            kind = message["type"]
            if kind == "shutdown":
                say(f"worker {worker_id}: shutdown after {jobs_run} job(s)")
                return jobs_run
            if kind != "job":
                continue  # future protocol additions must not kill old workers
            job = int(message["job"])
            spec = decode_spec_b64(message["spec"])
            say(f"worker {worker_id}: job {job} ({message.get('scenario', '?')})")
            try:
                result = (runner or run_one)(spec, worker=worker_id)
            except Exception as error:
                with send_lock:
                    send_message(
                        sock,
                        {
                            "type": "error",
                            "job": job,
                            "scenario": getattr(spec, "name", "?"),
                            "message": str(error),
                        },
                    )
                continue
            jobs_run += 1
            with send_lock:
                send_message(sock, {"type": "result", "job": job, **result_to_wire(result)})
    except (OSError, WireError) as error:
        raise WorkerError(f"worker {worker_id!r}: connection failed: {error}") from error
    finally:
        stop_beating.set()
        sock.close()


def _dial(connect: str, retry_seconds: float) -> socket.socket:
    """Connect to the coordinator, redialling until the retry window closes."""
    host, port = parse_hostport(connect)
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            # Frames are small and latency-sensitive (job in, result out);
            # Nagle buffering would serialize every exchange behind delayed
            # ACKs.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as error:
            if time.monotonic() >= deadline:
                raise WorkerError(
                    f"no coordinator at {connect} after {retry_seconds:.0f}s: {error}"
                ) from error
            time.sleep(0.2)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    stop: threading.Event,
    interval: float,
) -> None:
    while not stop.wait(interval):
        try:
            with send_lock:
                send_message(sock, {"type": "heartbeat"})
        except OSError:
            return  # the main loop surfaces the broken connection
