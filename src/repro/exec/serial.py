"""The serial execution backend: every job runs in the calling process."""

from __future__ import annotations

import os
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.exec.base import EmitFn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec


def run_one(spec: "ScenarioSpec", *, worker: str):
    """Run one spec in-process and stamp its (non-canonical) worker provenance.

    The shared single-job path of the serial backend, the process pool's
    worker entry point, and the remote worker daemon — a scenario failure is
    wrapped in ``RuntimeError`` naming the scenario, whichever backend hit it.
    """
    from repro.simulation.runner import run_scenario

    try:
        result = run_scenario(spec)
    except Exception as error:
        raise RuntimeError(f"scenario {spec.name!r} failed: {error}") from error
    return replace(result, worker=worker)


class SerialBackend:
    """Run jobs one after another in the calling process.

    The reference implementation of the backend contract: what every other
    backend's report bytes are checked against.  ``workers`` is accepted for
    interface uniformity and ignored.
    """

    name = "serial"
    description = "run every job in the calling process, one after another"

    def __init__(self, *, workers: int | None = None):
        del workers  # accepted for uniformity with the other backends

    def execute(
        self,
        specs: Sequence["ScenarioSpec"],
        *,
        order: Sequence[int],
        emit: EmitFn,
    ) -> None:
        """Run jobs in submission order (dispatch order buys nothing serially)."""
        del order  # one lane: makespan is the same whatever the order
        label = f"serial:{os.getpid()}"
        for i, spec in enumerate(specs):
            emit(i, run_one(spec, worker=label))
