"""Execution backends: one protocol over serial, process-pool, and multi-host runs.

The registry lets the runner/CLI/store pipeline treat "where jobs execute" as
a first-class dimension, exactly like the demand engine and the allocation
mechanism: :class:`~repro.simulation.runner.ParallelRunner` resolves a backend
by name, ``python -m repro run/sweep --backend NAME`` selects it from the
command line, and the result store records which worker produced each run.

>>> from repro.exec import backend_names, create_backend
>>> backend_names()
['serial', 'process', 'remote']
>>> create_backend('process', workers=2).workers
2
"""

from repro.exec.base import (
    BACKENDS,
    DEFAULT_BACKEND,
    ExecutionBackend,
    backend_names,
    backend_summaries,
    create_backend,
    get_backend_factory,
    register_backend,
)
from repro.exec.control import ControlClient, ControlError
from repro.exec.coordinator import DEFAULT_BIND, RemoteBackend
from repro.exec.process import ProcessBackend
from repro.exec.queue import (
    DEFAULT_RETRY_BUDGET,
    IllegalTransition,
    Job,
    JobQueue,
    JobState,
    RetryBudgetExhausted,
)
from repro.exec.serial import SerialBackend, run_one
from repro.exec.wire import DEFAULT_TRANSPORT, Transport
from repro.exec.worker import (
    WorkerError,
    WorkerRejected,
    default_worker_id,
    parse_hostport,
    run_worker,
)

register_backend(SerialBackend)
register_backend(ProcessBackend)
register_backend(RemoteBackend)

__all__ = [
    "BACKENDS",
    "ControlClient",
    "ControlError",
    "DEFAULT_BACKEND",
    "DEFAULT_BIND",
    "DEFAULT_RETRY_BUDGET",
    "DEFAULT_TRANSPORT",
    "ExecutionBackend",
    "IllegalTransition",
    "Job",
    "JobQueue",
    "JobState",
    "ProcessBackend",
    "RemoteBackend",
    "RetryBudgetExhausted",
    "SerialBackend",
    "Transport",
    "WorkerError",
    "WorkerRejected",
    "backend_names",
    "backend_summaries",
    "create_backend",
    "default_worker_id",
    "get_backend_factory",
    "parse_hostport",
    "register_backend",
    "run_one",
    "run_worker",
]
