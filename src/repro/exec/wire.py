"""Wire format of the remote execution fabric.

Messages are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by one UTF-8 JSON object.  JSON keeps the protocol inspectable (a
captured stream reads as plain text) and the framing keeps it boring — no
delimiter escaping, no partial-line buffering.

Two payloads need more than JSON:

* **jobs** carry a full :class:`~repro.simulation.catalog.ScenarioSpec` —
  an arbitrary dataclass graph (fleet spec, population spec, weighting
  function).  The process-pool backend already ships specs between processes
  with :mod:`pickle`; the remote fabric reuses exactly that, base64-wrapped
  inside the JSON envelope.  Pickle is an arbitrary-code-execution format,
  which is why the coordinator binds to localhost by default and the fabric
  is documented as a **trusted-network** transport (see
  ``docs/distributed.md``) — workers already run arbitrary code from the
  coordinator by design, so the spec payload adds no new trust edge.
* **results** travel as the run's canonical ``to_dict()`` report plus the
  non-canonical sidecar fields (measured wall time, worker id).  The
  canonical dict round-trips bit-exactly through JSON (plain rounded floats,
  strings, ints), which is what keeps remote sweep reports byte-identical
  to serial ones.

Message types (direction, fields):

=============  ===========  ====================================================
``hello``      worker → c.  ``worker``, ``capacity``, ``pid`` — announce id and
                            how many jobs may be in flight at once.
``welcome``    c. → worker  id accepted; dispatch may begin.
``reject``     c. → worker  ``reason`` — duplicate id or malformed hello; the
                            coordinator closes the connection after sending.
``job``        c. → worker  ``job`` (index), ``scenario``, ``spec`` (base64
                            pickle).
``result``     worker → c.  ``job``, ``result`` (canonical dict),
                            ``wall_time``, ``worker``.
``error``      worker → c.  ``job``, ``scenario``, ``message`` — the scenario
                            raised; deterministic, so never retried.
``heartbeat``  worker → c.  liveness beacon (see ``docs/distributed.md``).
``shutdown``   c. → worker  sweep finished (or aborted); the worker exits 0.
=============  ===========  ====================================================

>>> spec_payload = encode_spec_b64({"not": "a real spec, but any picklable"})
>>> decode_spec_b64(spec_payload)
{'not': 'a real spec, but any picklable'}
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runner import ScenarioRunResult

#: Frames larger than this are a protocol error, not a big job (a paper-scale
#: spec pickles to ~2 kB; results are a few kB of JSON).  Catches a
#: desynchronised stream before it turns into a gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ConnectionError):
    """A malformed or truncated frame (desync, peer gone mid-frame)."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialise ``message`` and write one length-prefixed frame."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    data = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict) or "type" not in message:
        raise WireError(f"frame is not a typed message: {message!r:.80}")
    return message


def _recv_exact(sock: socket.socket, count: int, *, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise WireError(f"connection closed {remaining} bytes into a {count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- payload codecs -----------------------------------------------------------------------


def encode_spec_b64(spec) -> str:
    """A spec (or any picklable object) as base64 text for the JSON envelope."""
    return base64.b64encode(pickle.dumps(spec)).decode("ascii")


def decode_spec_b64(payload: str):
    """Invert :func:`encode_spec_b64`.  Trusted input only (pickle)."""
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


def result_to_wire(result: "ScenarioRunResult") -> dict:
    """The fields of a ``result`` message for one finished run."""
    return {
        "type": "result",
        "result": result.to_dict(),
        "wall_time": result.wall_time_seconds,
        "worker": result.worker,
    }


def result_from_wire(message: dict) -> "ScenarioRunResult":
    """Rebuild the run result a worker shipped back.

    The canonical dict restores bit-exactly (its floats are plain rounded
    values that survive JSON), and the non-canonical sidecars ride alongside.
    """
    from repro.simulation.runner import ScenarioRunResult

    return ScenarioRunResult.from_dict(
        message["result"],
        wall_time_seconds=message.get("wall_time"),
        worker=message.get("worker"),
    )
