"""Wire format of the remote execution fabric.

Messages are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by one UTF-8 JSON object.  JSON keeps the protocol inspectable (a
captured stream reads as plain text) and the framing keeps it boring — no
delimiter escaping, no partial-line buffering.

Two payloads need more than JSON:

* **jobs** carry a full :class:`~repro.simulation.catalog.ScenarioSpec` —
  an arbitrary dataclass graph (fleet spec, population spec, weighting
  function).  The process-pool backend already ships specs between processes
  with :mod:`pickle`; the remote fabric reuses exactly that, base64-wrapped
  inside the JSON envelope.  Pickle is an arbitrary-code-execution format,
  which is why the coordinator binds to localhost by default and the fabric
  is documented as a **trusted-network** transport (see
  ``docs/distributed.md``) — workers already run arbitrary code from the
  coordinator by design, so the spec payload adds no new trust edge.
* **results** travel as the run's canonical ``to_dict()`` report plus the
  non-canonical sidecar fields (measured wall time, worker id).  The
  canonical dict round-trips bit-exactly through JSON (plain rounded floats,
  strings, ints), which is what keeps remote sweep reports byte-identical
  to serial ones.

Message types (direction, fields).  **Job frames** run a sweep; **control
frames** (added with the persistent-fleet control plane) manage it:

==================  ===========  ===============================================
``hello``           worker → c.  ``worker``, ``capacity``, ``pid``, ``daemon``
                                 — announce id, in-flight capacity, and whether
                                 the worker survives across sweeps.
``challenge``       c. → peer    ``nonce`` — sent (only) by a coordinator
                                 holding a shared secret; the peer must answer
                                 ``auth`` before anything else happens.
``auth``            peer → c.    ``mac`` — HMAC-SHA256 of the nonce under the
                                 shared secret (:func:`auth_mac`).
``welcome``         c. → peer    id accepted; with a secret set, carries
                                 ``mac`` (:func:`coordinator_mac`) proving the
                                 coordinator knows it too (mutual auth).
``reject``          c. → peer    ``reason`` — duplicate id, malformed hello,
                                 or failed authentication; the coordinator
                                 closes the connection after sending.
``job``             c. → worker  ``job`` (index), ``scenario``, ``spec``
                                 (base64 pickle).
``result``          worker → c.  ``job``, ``result`` (canonical dict),
                                 ``wall_time``, ``worker``.
``error``           worker → c.  ``job``, ``scenario``, ``message`` — the
                                 scenario raised; deterministic, never retried.
``heartbeat``       worker → c.  liveness beacon (see ``docs/distributed.md``).
``shutdown``        c. → worker  ``final`` — sweep over.  ``final: false``
                                 ends one sweep (one-shot workers exit 0,
                                 daemon workers redial); ``final: true`` (sent
                                 by drain / scale-down) retires daemons too.
``control``         client → c.  open a control session (``repro workers``).
``workers-list``    client → c.  request the fleet/queue snapshot.
``fleet``           c. → client  ``workers`` (list of per-worker dicts),
                                 ``queue`` (state counts or null), ``sweeping``.
``drain``           client → c.  stop dispatching, wait out in-flight jobs,
                                 then retire every worker.
``drained``         c. → client  ``workers`` — how many were retired.
``scale``           client → c.  ``count`` — target fleet size.
``scaled``          c. → client  ``alive``, ``stopped``, ``needed``.
==================  ===========  ===============================================

>>> spec_payload = encode_spec_b64({"not": "a real spec, but any picklable"})
>>> decode_spec_b64(spec_payload)
{'not': 'a real spec, but any picklable'}
>>> auth_mac("hunter2", "abc") == auth_mac("hunter2", "abc")
True
>>> auth_mac("hunter2", "abc") == auth_mac("wrong", "abc")
False
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import pickle
import socket
import struct
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runner import ScenarioRunResult

#: Frames larger than this are a protocol error, not a big job (a paper-scale
#: spec pickles to ~2 kB; results are a few kB of JSON).  Catches a
#: desynchronised stream before it turns into a gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ConnectionError):
    """A malformed or truncated frame (desync, peer gone mid-frame)."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialise ``message`` and write one length-prefixed frame."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    data = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict) or "type" not in message:
        raise WireError(f"frame is not a typed message: {message!r:.80}")
    return message


def _recv_exact(sock: socket.socket, count: int, *, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise WireError(f"connection closed {remaining} bytes into a {count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- transports ---------------------------------------------------------------------------


class Transport:
    """How frames reach the peer: the seam the chaos harness injects into.

    Every send/recv in the fabric goes through a transport so tests can wrap
    the wire layer — dropping, delaying, duplicating frames, or killing the
    connection at scripted points — without touching protocol code (see
    ``tests/exec/chaos.py``).  The default transport is a straight
    passthrough to :func:`send_message` / :func:`recv_message`.
    """

    def send(self, sock: socket.socket, message: dict) -> None:
        send_message(sock, message)

    def recv(self, sock: socket.socket) -> dict | None:
        return recv_message(sock)


#: The shared passthrough transport (stateless, so one instance serves all).
DEFAULT_TRANSPORT = Transport()


# -- authentication -----------------------------------------------------------------------


def auth_mac(secret: str, nonce: str) -> str:
    """The ``auth`` frame's proof: HMAC-SHA256 of the challenge nonce.

    >>> len(auth_mac("s", "n"))
    64
    """
    return hmac.new(secret.encode("utf-8"), nonce.encode("utf-8"), hashlib.sha256).hexdigest()


def coordinator_mac(secret: str, nonce: str) -> str:
    """The coordinator's counter-proof carried in ``welcome``.

    Domain-separated from :func:`auth_mac` so a coordinator cannot simply
    echo the peer's own MAC back at it.

    >>> coordinator_mac("s", "n") != auth_mac("s", "n")
    True
    """
    return auth_mac(secret, nonce + ":coordinator")


def macs_equal(expected: str, presented: object) -> bool:
    """Constant-time MAC comparison, tolerant of a missing/typed-wrong field."""
    if not isinstance(presented, str):
        return False
    return hmac.compare_digest(expected, presented)


class HandshakeRejected(ConnectionError):
    """The coordinator refused this client (bad secret, duplicate id, ...)."""


def client_handshake(
    sock: socket.socket, transport: "Transport", secret: str | None
) -> dict:
    """The client half of the hello/challenge/auth/welcome exchange.

    Called right after the opening frame (a worker's ``hello`` or a control
    session's ``control``) went out.  Answers the coordinator's challenge when
    one arrives, verifies the mutual-auth MAC on the ``welcome``, and returns
    the welcome frame.  Raises :class:`HandshakeRejected` when the coordinator
    refuses us — or cannot itself prove knowledge of the shared secret, so a
    client configured with ``--secret`` never talks to an unauthenticated
    coordinator.
    """
    answer = transport.recv(sock)
    nonce = ""
    if answer is not None and answer.get("type") == "challenge":
        if secret is None:
            raise HandshakeRejected(
                "coordinator requires a shared secret; pass --secret"
            )
        nonce = str(answer.get("nonce", ""))
        transport.send(sock, {"type": "auth", "mac": auth_mac(secret, nonce)})
        answer = transport.recv(sock)
    if answer is None or answer.get("type") != "welcome":
        reason = (answer or {}).get("reason", "connection closed during handshake")
        raise HandshakeRejected(str(reason))
    if secret is not None and not macs_equal(
        coordinator_mac(secret, nonce), answer.get("mac")
    ):
        raise HandshakeRejected(
            "coordinator could not prove knowledge of the shared secret"
        )
    return answer


# -- payload codecs -----------------------------------------------------------------------


def encode_spec_b64(spec) -> str:
    """A spec (or any picklable object) as base64 text for the JSON envelope."""
    return base64.b64encode(pickle.dumps(spec)).decode("ascii")


def decode_spec_b64(payload: str):
    """Invert :func:`encode_spec_b64`.  Trusted input only (pickle)."""
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


def result_to_wire(result: "ScenarioRunResult") -> dict:
    """The fields of a ``result`` message for one finished run."""
    return {
        "type": "result",
        "result": result.to_dict(),
        "wall_time": result.wall_time_seconds,
        "worker": result.worker,
    }


def result_from_wire(message: dict) -> "ScenarioRunResult":
    """Rebuild the run result a worker shipped back.

    The canonical dict restores bit-exactly (its floats are plain rounded
    values that survive JSON), and the non-canonical sidecars ride alongside.
    """
    from repro.simulation.runner import ScenarioRunResult

    return ScenarioRunResult.from_dict(
        message["result"],
        wall_time_seconds=message.get("wall_time"),
        worker=message.get("worker"),
    )
