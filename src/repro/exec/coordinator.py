"""The remote execution backend: a TCP control plane streaming jobs to workers.

The coordinator owns all scheduling state; workers (see
:mod:`repro.exec.worker`) are stateless job lanes.  One sweep runs like this:

1. :meth:`RemoteBackend.listen` binds the ``--bind`` address and starts
   accepting connections (each gets a reader thread that parses its first
   frame: a worker ``hello`` — authenticated against the shared secret when
   one is set, refused on duplicate ids — or a ``control`` session from
   ``python -m repro workers``).
2. :meth:`RemoteBackend.execute` waits until at least ``workers`` daemons are
   connected (late joiners are welcome mid-sweep), builds a
   :class:`~repro.exec.queue.JobQueue` from the caller's longest-job-first
   order — fed by the result store's measured wall times exactly like the
   process pool — and dispatches: the heaviest QUEUED job goes to the
   fastest free worker (per-worker speed factors from the store's
   ``runs.worker`` wall-time histories; unknown workers count as average),
   each loaded up to its advertised in-flight capacity.
3. Results are emitted (in the caller's thread) as they land.  A worker that
   misses its heartbeat window or drops its socket is declared lost: its
   in-flight jobs move RUNNING → QUEUED at the *front* of the queue (burning
   one unit of their retry budget; an exhausted budget aborts the sweep) and
   re-run on any other worker.  Jobs are deterministic, so a retried job —
   or a straggler result from a worker that was declared lost prematurely —
   produces the same bytes, and the sweep report is identical at any worker
   count, with or without failures.
4. When every job is DONE the coordinator either tells each worker the sweep
   is over (``shutdown`` with ``final: false`` — one-shot workers exit 0,
   daemon workers redial for the next sweep) and closes, or — in
   ``persistent`` mode — keeps the listener and the connected fleet alive
   for the next :meth:`execute` / control command, until :meth:`drain`
   retires the fleet for real (``final: true``).

A scenario that *raises* on a worker is not retried — same seed, same crash —
the job moves to ERROR and the coordinator aborts the sweep with a
``RuntimeError`` naming the scenario, matching the process backend's
behaviour.

Control sessions (``repro workers list|drain|scale``) are served by their
own connection threads at any time the coordinator is listening — mid-sweep
or idle — over the same wire protocol as job traffic, behind the same
shared-secret handshake.  See ``docs/distributed.md`` for the frame table
and the trust model.
"""

from __future__ import annotations

import queue
import secrets as secrets_mod
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.exec.base import EmitFn
from repro.exec.queue import DEFAULT_RETRY_BUDGET, JobQueue, JobState
from repro.exec.wire import (
    DEFAULT_TRANSPORT,
    Transport,
    WireError,
    auth_mac,
    coordinator_mac,
    encode_spec_b64,
    macs_equal,
    result_from_wire,
)
from repro.exec.worker import parse_hostport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec

#: Default coordinator address: localhost, one port above the decade's year.
DEFAULT_BIND = "127.0.0.1:7077"

#: A worker silent for this many seconds is declared lost (workers beat every
#: second by default, so this tolerates nine dropped beats).  Constructor
#: parameter — failure tests run it in milliseconds.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: How long ``execute`` waits for the first worker(s) to connect.
DEFAULT_WAIT_TIMEOUT = 30.0

#: How long a connecting peer gets to finish its hello/auth exchange.
DEFAULT_HANDSHAKE_TIMEOUT = 10.0


@dataclass
class _Worker:
    """Coordinator-side view of one connected worker daemon."""

    worker_id: str
    sock: socket.socket
    capacity: int
    joined_at: float
    last_seen: float
    #: Whether the worker announced itself as a daemon (survives sweeps).
    daemon: bool = False
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    #: job index -> dispatch timestamp, for every job sent but not yet done.
    in_flight: dict[int, float] = field(default_factory=dict)
    #: Jobs this worker completed over the connection's lifetime.
    jobs_done: int = 0
    alive: bool = True
    #: Scale-down marked this worker for retirement: no new jobs.
    draining: bool = False

    def free_slots(self) -> int:
        return max(0, self.capacity - len(self.in_flight))


class RemoteBackend:
    """Stream scenario jobs to ``python -m repro worker`` daemons over TCP.

    Parameters
    ----------
    bind:
        ``HOST:PORT`` to listen on (port ``0`` picks an ephemeral port; read
        the bound address back from :attr:`address`).
    workers:
        Minimum connected workers before dispatch begins (default 1).  More
        may join at any time; fewer after ``wait_timeout`` aborts only when
        *zero* are connected.
    heartbeat_timeout:
        Seconds of silence before a worker is declared lost.
    wait_timeout:
        Seconds to wait for the initial workers — and, mid-sweep, for a
        replacement when every worker has been lost with jobs still pending.
    max_in_flight:
        Coordinator-side ceiling on any worker's in-flight jobs (the
        effective cap is ``min(worker capacity, max_in_flight)``).
    secret:
        Shared secret for the HMAC handshake.  ``None`` (default) accepts
        any peer — localhost trust; with a secret set every worker and
        control client must answer the challenge or is rejected before any
        job frame crosses the wire.
    persistent:
        Keep the listener and the connected fleet alive after ``execute``
        returns, so further sweeps (and control sessions) reuse the same
        workers.  :meth:`drain` — or a ``repro workers drain`` command —
        retires the fleet; :meth:`close` merely ends the current service
        without retiring daemon workers.
    retry_budget:
        Worker-loss requeues allowed per job before the sweep aborts.
    handshake_timeout:
        Seconds a connecting peer gets to complete hello/auth.
    transport:
        Wire transport override (the chaos harness' injection seam).
    """

    name = "remote"
    description = "stream jobs over TCP to repro worker daemons (heartbeats, retry)"

    def __init__(
        self,
        *,
        bind: str = DEFAULT_BIND,
        workers: int | None = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
        max_in_flight: int | None = None,
        quiet: bool = False,
        secret: str | None = None,
        persistent: bool = False,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        handshake_timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
        transport: Transport | None = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive seconds")
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        self.bind = bind
        self.min_workers = workers or 1
        self.heartbeat_timeout = heartbeat_timeout
        self.wait_timeout = wait_timeout
        self.max_in_flight = max_in_flight
        self.quiet = quiet
        self.secret = secret
        self.persistent = persistent
        self.retry_budget = retry_budget
        self.handshake_timeout = handshake_timeout
        #: The bound ``HOST:PORT`` once listening (ephemeral port resolved).
        self.address: str | None = None
        self._transport = transport or DEFAULT_TRANSPORT
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._sweeping = threading.Event()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._events: queue.Queue = queue.Queue()
        self._workers: dict[str, _Worker] = {}
        self._registry_lock = threading.Lock()
        self._worker_speeds: dict[str, float] = {}
        #: The active sweep's job queue (control-plane snapshots read it).
        self._queue: JobQueue | None = None
        #: Dispatch/requeue counters of the most recently finished sweep.
        self.last_sweep_stats = None
        #: Monotonic sweep counter; results echo it so a straggler from an
        #: aborted previous sweep can never complete a job of the next one.
        self._sweep_epoch = 0

    # -- lifecycle ---------------------------------------------------------------------
    def listen(self) -> str:
        """Bind the coordinator address and start accepting peers (idempotent).

        Returns the bound ``HOST:PORT`` — callers that bound port 0 read the
        real port from here before starting their workers.
        """
        if self._listener is not None:
            return self.address or self.bind
        host, port = parse_hostport(self.bind)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        # Polling accept: closing a socket does not wake a thread blocked in
        # accept(), so the accept loop must time out to notice shutdown.
        listener.settimeout(0.2)
        self._listener = listener
        self._stopping.clear()
        self.address = f"{host}:{listener.getsockname()[1]}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        self._say(f"coordinator listening on {self.address}")
        return self.address

    def connected_workers(self) -> int:
        """How many workers are currently connected and alive.

        Lets callers (and benchmarks) pre-start long-lived worker daemons and
        wait for them to register before dispatching a timed sweep.
        """
        with self._registry_lock:
            return sum(1 for worker in self._workers.values() if worker.alive)

    def set_worker_speeds(self, speeds: Mapping[str, float]) -> None:
        """Install per-worker speed factors for host-aware dispatch.

        ``speeds`` maps worker ids to mean relative wall time (1.0 = fleet
        average, smaller = faster) as computed by
        :meth:`repro.results.store.ResultStore.worker_speeds`;
        :meth:`~repro.simulation.runner.ParallelRunner.run_specs` calls this
        automatically when it has a result store.  Unknown workers schedule
        as average.
        """
        self._worker_speeds = dict(speeds)

    def close(self, *, final: bool = False) -> None:
        """Stop listening and end the current service.

        ``final=False`` (default) sends a non-final ``shutdown``: one-shot
        workers exit 0, daemon workers redial and survive to serve the next
        coordinator on this address.  ``final=True`` retires daemons too
        (what :meth:`drain` does after waiting out in-flight jobs).
        """
        self._stopping.set()
        self._shutdown_workers(final=final)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        self._events = queue.Queue()

    def drain(self, *, poll: float = 0.05, timeout: float | None = None) -> int:
        """Stop dispatching, wait out in-flight jobs, retire every worker.

        Returns how many workers were retired.  Callable from any thread —
        it is what a ``repro workers drain`` control session runs.  A drain
        issued mid-sweep lets in-flight jobs finish, then aborts the sweep
        if jobs were still queued (a drained fleet cannot run them).
        """
        self._draining.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._registry_lock:
                busy = any(
                    worker.in_flight
                    for worker in self._workers.values()
                    if worker.alive
                )
            if not busy:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(poll)
        with self._registry_lock:
            count = sum(1 for worker in self._workers.values() if worker.alive)
        self._shutdown_workers(final=True)
        self._drained.set()
        self._say(f"fleet drained ({count} worker(s) retired)")
        return count

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until a drain has retired the fleet (``--persist`` waits here)."""
        return self._drained.wait(timeout)

    def scale_to(
        self, count: int, *, poll: float = 0.05, timeout: float = 30.0
    ) -> dict[str, int]:
        """Shrink the fleet to ``count`` workers; report what scale-up needs.

        Scale-down retires the excess — idle workers first, newest first —
        waiting for a busy victim's in-flight jobs to finish before retiring
        it, so no QUEUED or RUNNING job is ever lost.  Scale-up cannot spawn
        processes on remote hosts: the reply's ``needed`` says how many more
        workers must be started (``python -m repro worker --connect …``).
        """
        count = max(0, int(count))
        with self._registry_lock:
            eligible = [
                worker
                for worker in self._workers.values()
                if worker.alive and not worker.draining
            ]
            if count >= len(eligible):
                return {
                    "alive": len(eligible),
                    "stopped": 0,
                    "needed": count - len(eligible),
                }
            # Idle workers first, then the newest joiners: retiring the
            # longest-serving busy worker would forfeit the most history.
            victims = sorted(
                eligible,
                key=lambda w: (1 if w.in_flight else 0, -w.joined_at),
            )[: len(eligible) - count]
            for victim in victims:
                victim.draining = True
        stopped = 0
        deadline = time.monotonic() + timeout
        for victim in victims:
            while victim.in_flight and victim.alive and time.monotonic() < deadline:
                time.sleep(poll)
            if victim.in_flight and victim.alive:
                victim.draining = False  # could not drain in time; keep it
                continue
            self._retire_worker(victim)
            stopped += 1
        with self._registry_lock:
            alive = sum(1 for worker in self._workers.values() if worker.alive)
        return {"alive": alive, "stopped": stopped, "needed": 0}

    # -- backend contract --------------------------------------------------------------
    def execute(
        self,
        specs: Sequence["ScenarioSpec"],
        *,
        order: Sequence[int],
        emit: EmitFn,
    ) -> None:
        if not specs:
            return
        self.listen()
        self._sweep_epoch += 1
        self._sweeping.set()
        try:
            self._wait_for_workers()
            self._dispatch_all(specs, list(order), emit)
        finally:
            self._sweeping.clear()
            self._flush_events()
            with self._registry_lock:
                # An aborted sweep's in-flight jobs are dead either way; a
                # persistent fleet must not carry them into the next sweep's
                # capacity accounting.
                for worker in self._workers.values():
                    worker.in_flight.clear()
            if not self.persistent:
                self.close()

    # -- dispatch loop -----------------------------------------------------------------
    def _wait_for_workers(self) -> None:
        deadline = time.monotonic() + self.wait_timeout
        while True:
            with self._registry_lock:
                connected = sum(1 for w in self._workers.values() if w.alive)
            if connected >= self.min_workers:
                return
            if time.monotonic() >= deadline:
                if connected:
                    self._say(
                        f"proceeding with {connected} worker(s); "
                        f"{self.min_workers} requested"
                    )
                    return
                raise RuntimeError(
                    f"no workers connected to {self.address} within "
                    f"{self.wait_timeout:.0f}s; start some with "
                    f"`python -m repro worker --connect {self.address}`"
                )
            event = self._drain_event(timeout=0.1)
            if event is None:
                continue
            if event[0] == "lost":
                # A worker that came and went before dispatch: drop it so it
                # does not count toward (or receive) anything.
                self._remove_worker(event[1], event[2])
            elif event[0] == "msg":
                # Heartbeats must keep last_seen fresh even before dispatch:
                # assembling a fleet can take longer than heartbeat_timeout,
                # and a stale timestamp here would get a healthy worker
                # declared lost on the first liveness check.
                worker = self._workers.get(event[1])
                if worker is not None:
                    worker.last_seen = time.monotonic()

    def _dispatch_all(self, specs, pending_order: list[int], emit: EmitFn) -> None:
        jobs = JobQueue(
            pending_order,
            retry_budget=self.retry_budget,
            labels={i: spec.name for i, spec in enumerate(specs)},
        )
        self._queue = jobs
        last_progress = time.monotonic()
        try:
            while not jobs.finished:
                self._assign(specs, jobs)
                event = self._drain_event(timeout=0.1)
                now = time.monotonic()
                if event is not None:
                    kind = event[0]
                    if kind == "joined":
                        last_progress = now
                    elif kind == "lost":
                        _, worker_id, reason = event
                        self._on_worker_lost(worker_id, reason, jobs)
                    elif kind == "msg":
                        _, worker_id, message = event
                        if self._on_message(worker_id, message, emit, jobs):
                            last_progress = now
                self._check_heartbeats(jobs)
                if jobs.finished:
                    return
                if not self._alive_workers():
                    if self._draining.is_set():
                        remaining = len(jobs) - jobs.done_count
                        raise RuntimeError(
                            f"fleet drained with {remaining} job(s) unfinished"
                        )
                    if now - last_progress > self.wait_timeout:
                        raise RuntimeError(
                            f"all workers lost with {len(jobs) - jobs.done_count} job(s) "
                            f"unfinished and none reconnected within "
                            f"{self.wait_timeout:.0f}s"
                        )
        finally:
            # Keep the finished sweep's dispatch/requeue counters around:
            # tests (and curious callers) can check how bumpy the ride was
            # after the queue itself is gone.
            self.last_sweep_stats = jobs.stats
            self._queue = None

    def _assign(self, specs, jobs: JobQueue) -> None:
        """Hand QUEUED jobs to free worker slots, fastest worker first.

        Host-aware: the heaviest queued job goes to the free worker with the
        best measured speed factor (ties broken by join order, so the
        no-history fleet behaves exactly as before).
        """
        if self._draining.is_set():
            return
        while True:
            index = jobs.next_job()
            if index is None:
                return
            candidates = [
                w
                for w in self._alive_workers()
                if not w.draining and w.free_slots() > 0
            ]
            if not candidates:
                return
            worker = min(
                candidates,
                key=lambda w: (self._worker_speeds.get(w.worker_id, 1.0), w.joined_at),
            )
            spec = specs[index]
            try:
                with worker.send_lock:
                    self._transport.send(
                        worker.sock,
                        {
                            "type": "job",
                            "job": index,
                            "sweep": self._sweep_epoch,
                            "scenario": spec.name,
                            "spec": encode_spec_b64(spec),
                        },
                    )
            except OSError as error:
                # The job never left: it stays QUEUED (no retry burned) and
                # the dead lane is reported like any other loss.
                self._events.put(("lost", worker.worker_id, f"send failed: {error}"))
                worker.alive = False
                continue
            jobs.mark_running(index, worker=worker.worker_id)
            worker.in_flight[index] = time.monotonic()
            self._say(f"dispatch job {index} ({spec.name}) -> {worker.worker_id}")

    def _on_message(self, worker_id, message, emit: EmitFn, jobs: JobQueue) -> bool:
        """Apply one worker message; True when it completed a job."""
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.last_seen = time.monotonic()
        kind = message["type"]
        if kind not in ("result", "error"):
            return False
        job = int(message.get("job", -1))
        # Workers echo the job frame's sweep epoch; a frame carrying a stale
        # epoch is a leftover from an aborted previous sweep and must not
        # complete this one's jobs.  A frame *without* the field (minimal
        # scripted workers) is trusted as current.
        sweep = message.get("sweep")
        if (sweep is not None and int(sweep) != self._sweep_epoch) or job not in jobs:
            return False
        if kind == "result":
            if worker is not None and worker.in_flight.pop(job, None) is not None:
                worker.jobs_done += 1
            if jobs.state(job) is JobState.DONE:
                return False  # duplicate/straggler: the bytes already landed
            jobs.mark_done(job)
            emit(job, result_from_wire(message))
            return True
        scenario = message.get("scenario", "?")
        detail = message.get("message", "unknown error")
        jobs.mark_error(job, str(detail))
        raise RuntimeError(
            f"scenario {scenario!r} failed on worker {worker_id!r}: {detail}"
        )

    def _on_worker_lost(self, worker_id, reason, jobs: JobQueue) -> None:
        with self._registry_lock:
            worker = self._workers.pop(worker_id, None)
        if worker is None:
            return
        worker.alive = False
        worker.sock.close()
        # in_flight is insertion-ordered, i.e. the order the scheduler chose
        # (longest job first under measured costs); re-queue at the front in
        # that same order so the heaviest forfeited job restarts first.  Only
        # jobs still RUNNING *on this worker* go back: a straggler result may
        # already have completed one, and a prematurely-declared-lost worker's
        # jobs may already be running elsewhere.
        requeued = [
            job
            for job in worker.in_flight
            if job in jobs
            and jobs.state(job) is JobState.RUNNING
            and jobs.job(job).worker == worker_id
        ]
        for job in reversed(requeued):
            jobs.requeue(job, front=True)
        self._say(
            f"worker {worker_id} lost ({reason}); requeued {len(requeued)} job(s)"
        )

    def _check_heartbeats(self, jobs: JobQueue) -> None:
        cutoff = time.monotonic() - self.heartbeat_timeout
        for worker in self._alive_workers():
            if worker.last_seen < cutoff:
                worker.alive = False
                self._on_worker_lost(
                    worker.worker_id,
                    f"no heartbeat for {self.heartbeat_timeout:g}s",
                    jobs,
                )

    # -- connection handling -----------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                sock, _ = listener.accept()
            except TimeoutError:
                continue  # poll tick: re-check the stopping flag
            except OSError:
                return  # listener closed
            # Accepted sockets inherit the listener's poll timeout; the
            # handshake sets its own deadline and then clears it.
            sock.settimeout(None)
            threading.Thread(
                target=self._serve_connection, args=(sock,), daemon=True
            ).start()

    def _authenticate(self, sock: socket.socket) -> str | None:
        """Run the challenge/response when a secret is set.

        Returns the nonce (for the welcome's counter-MAC) on success, or
        raises :class:`_HandshakeFailed` after sending the reject — the
        caller closes the socket.  Without a secret, returns ``None``.
        """
        if self.secret is None:
            return None
        nonce = secrets_mod.token_hex(16)
        self._transport.send(sock, {"type": "challenge", "nonce": nonce})
        answer = self._transport.recv(sock)
        if (
            answer is None
            or answer.get("type") != "auth"
            or not macs_equal(auth_mac(self.secret, nonce), answer.get("mac"))
        ):
            self._transport.send(
                sock, {"type": "reject", "reason": "authentication failed"}
            )
            raise _HandshakeFailed("authentication failed")
        return nonce

    def _serve_connection(self, sock: socket.socket) -> None:
        worker_id = None
        try:
            sock.settimeout(self.handshake_timeout)
            # Small latency-sensitive frames; see the matching setting in
            # the worker's dial path.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            first = self._transport.recv(sock)
            if first is None:
                sock.close()
                return
            if first.get("type") == "control":
                self._serve_control(sock)
                return
            if first.get("type") != "hello" or "worker" not in first:
                self._transport.send(
                    sock, {"type": "reject", "reason": "malformed hello"}
                )
                sock.close()
                return
            nonce = self._authenticate(sock)  # BEFORE any registration/jobs
            worker_id = str(first["worker"])
            capacity = max(1, int(first.get("capacity", 1)))
            if self.max_in_flight is not None:
                capacity = min(capacity, self.max_in_flight)
            now = time.monotonic()
            worker = _Worker(
                worker_id=worker_id,
                sock=sock,
                capacity=capacity,
                joined_at=now,
                last_seen=now,
                daemon=bool(first.get("daemon", False)),
            )
            with self._registry_lock:
                existing = self._workers.get(worker_id)
                if existing is not None and existing.alive:
                    self._transport.send(
                        sock,
                        {
                            "type": "reject",
                            "reason": f"worker id {worker_id!r} is already connected",
                        },
                    )
                    sock.close()
                    return
                self._workers[worker_id] = worker
            welcome: dict = {"type": "welcome"}
            if nonce is not None:
                welcome["mac"] = coordinator_mac(self.secret, nonce)
            with worker.send_lock:
                self._transport.send(sock, welcome)
            sock.settimeout(None)
            if self._sweeping.is_set():
                self._events.put(("joined", worker_id))
            while True:
                message = self._transport.recv(sock)
                if message is None:
                    self._on_connection_closed(worker_id, "connection closed")
                    return
                # The reader thread refreshes liveness itself so heartbeats
                # count even while no sweep loop is draining events (a
                # persistent fleet spends most of its life idle).
                worker.last_seen = time.monotonic()
                if self._sweeping.is_set():
                    self._events.put(("msg", worker_id, message))
        except _HandshakeFailed:
            sock.close()
        except (OSError, WireError) as error:
            if worker_id is not None:
                self._on_connection_closed(worker_id, str(error))
            else:
                sock.close()

    def _serve_control(self, sock: socket.socket) -> None:
        """One ``repro workers`` session: authenticate, then answer commands."""
        try:
            nonce = self._authenticate(sock)
            welcome: dict = {"type": "welcome"}
            if nonce is not None:
                welcome["mac"] = coordinator_mac(self.secret, nonce)
            self._transport.send(sock, welcome)
            sock.settimeout(None)  # a drain legitimately takes a while
            while True:
                command = self._transport.recv(sock)
                if command is None:
                    return
                kind = command.get("type")
                if kind == "workers-list":
                    self._transport.send(sock, self._fleet_snapshot())
                elif kind == "drain":
                    retired = self.drain(timeout=command.get("timeout"))
                    self._transport.send(sock, {"type": "drained", "workers": retired})
                elif kind == "scale":
                    outcome = self.scale_to(int(command.get("count", 0)))
                    self._transport.send(sock, {"type": "scaled", **outcome})
                else:
                    self._transport.send(
                        sock,
                        {
                            "type": "control-error",
                            "message": f"unknown control command {kind!r}",
                        },
                    )
        except _HandshakeFailed:
            pass
        except (OSError, WireError):
            pass
        finally:
            sock.close()

    def _fleet_snapshot(self) -> dict:
        """The ``fleet`` frame: per-worker rows plus the queue's state counts."""
        now = time.monotonic()
        with self._registry_lock:
            workers = list(self._workers.values())
        rows = []
        for worker in workers:
            if not worker.alive:
                continue
            idle = now - worker.last_seen
            rows.append(
                {
                    "worker": worker.worker_id,
                    "capacity": worker.capacity,
                    "in_flight": len(worker.in_flight),
                    "jobs_done": worker.jobs_done,
                    "daemon": worker.daemon,
                    "draining": worker.draining,
                    "connected_seconds": round(now - worker.joined_at, 3),
                    "idle_seconds": round(idle, 3),
                    "status": "ok" if idle < self.heartbeat_timeout else "late",
                }
            )
        rows.sort(key=lambda row: row["worker"])
        jobs = self._queue
        return {
            "type": "fleet",
            "address": self.address,
            "sweeping": self._sweeping.is_set(),
            "draining": self._draining.is_set(),
            "workers": rows,
            "queue": None if jobs is None else jobs.counts(),
        }

    def _on_connection_closed(self, worker_id: str, reason: str) -> None:
        """A worker's socket ended: route to the sweep loop or reap directly."""
        if self._sweeping.is_set():
            self._events.put(("lost", worker_id, reason))
        else:
            self._remove_worker(worker_id, reason)

    def _remove_worker(self, worker_id: str, reason: str) -> None:
        with self._registry_lock:
            worker = self._workers.pop(worker_id, None)
        if worker is None:
            return
        worker.alive = False
        worker.sock.close()
        self._say(f"worker {worker_id} disconnected ({reason})")

    def _retire_worker(self, worker: _Worker) -> None:
        """Send a final shutdown and forget the worker (drain / scale-down)."""
        with self._registry_lock:
            self._workers.pop(worker.worker_id, None)
        if worker.alive:
            try:
                with worker.send_lock:
                    self._transport.send(
                        worker.sock, {"type": "shutdown", "final": True}
                    )
            except OSError:
                pass
        worker.alive = False
        worker.sock.close()
        self._say(f"worker {worker.worker_id} retired")

    def _shutdown_workers(self, *, final: bool) -> None:
        with self._registry_lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            if worker.alive:
                try:
                    with worker.send_lock:
                        self._transport.send(
                            worker.sock, {"type": "shutdown", "final": final}
                        )
                except OSError:
                    pass
            worker.sock.close()

    # -- helpers -----------------------------------------------------------------------
    def _alive_workers(self) -> list[_Worker]:
        with self._registry_lock:
            return [w for w in self._workers.values() if w.alive]

    def _drain_event(self, *, timeout: float):
        try:
            return self._events.get(timeout=timeout)
        except queue.Empty:
            return None

    def _flush_events(self) -> None:
        """Process leftovers after a sweep so stale frames cannot leak into
        the next one: losses reap their workers, everything else is stale."""
        while True:
            try:
                event = self._events.get_nowait()
            except queue.Empty:
                return
            if event[0] == "lost":
                self._remove_worker(event[1], event[2])

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"[remote] {message}", file=sys.stderr)


class _HandshakeFailed(Exception):
    """A peer failed hello/auth; the reject has already been sent."""
