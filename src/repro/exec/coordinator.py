"""The remote execution backend: a TCP coordinator streaming jobs to workers.

The coordinator owns all scheduling state; workers (see
:mod:`repro.exec.worker`) are stateless job lanes.  One sweep runs like this:

1. :meth:`RemoteBackend.listen` binds the ``--bind`` address and starts
   accepting worker connections (each gets a reader thread that parses its
   ``hello``, refuses duplicate worker ids, and forwards every later message
   onto one event queue).
2. :meth:`RemoteBackend.execute` waits until at least ``workers`` daemons are
   connected (late joiners are welcome mid-sweep), then dispatches jobs in
   the caller's longest-job-first order — fed by the result store's measured
   wall times exactly like the process pool — keeping each worker loaded up
   to its advertised in-flight capacity.
3. Results are emitted (in the caller's thread) as they land.  A worker that
   misses its heartbeat window or drops its socket is declared lost: its
   in-flight jobs go back to the *front* of the queue and re-run on any other
   worker.  Jobs are deterministic, so a retried job — or a straggler result
   from a worker that was declared lost prematurely — produces the same
   bytes, and the sweep report is identical at any worker count, with or
   without failures.
4. When every job is done the coordinator sends ``shutdown`` to each worker
   (they exit 0) and closes the listener.

A scenario that *raises* on a worker is not retried — same seed, same crash —
the coordinator aborts the sweep with a ``RuntimeError`` naming the scenario,
matching the process backend's behaviour.
"""

from __future__ import annotations

import queue
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.exec.base import EmitFn
from repro.exec.wire import (
    WireError,
    encode_spec_b64,
    recv_message,
    result_from_wire,
    send_message,
)
from repro.exec.worker import parse_hostport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec

#: Default coordinator address: localhost, one port above the decade's year.
DEFAULT_BIND = "127.0.0.1:7077"

#: A worker silent for this many seconds is declared lost (workers beat every
#: second by default, so this tolerates nine dropped beats).
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: How long ``execute`` waits for the first worker(s) to connect.
DEFAULT_WAIT_TIMEOUT = 30.0


@dataclass
class _Worker:
    """Coordinator-side view of one connected worker daemon."""

    worker_id: str
    sock: socket.socket
    capacity: int
    joined_at: float
    last_seen: float
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    #: job index -> dispatch timestamp, for every job sent but not yet done.
    in_flight: dict[int, float] = field(default_factory=dict)
    alive: bool = True

    def free_slots(self) -> int:
        return max(0, self.capacity - len(self.in_flight))


class RemoteBackend:
    """Stream scenario jobs to ``python -m repro worker`` daemons over TCP.

    Parameters
    ----------
    bind:
        ``HOST:PORT`` to listen on (port ``0`` picks an ephemeral port; read
        the bound address back from :attr:`address`).
    workers:
        Minimum connected workers before dispatch begins (default 1).  More
        may join at any time; fewer after ``wait_timeout`` aborts only when
        *zero* are connected.
    heartbeat_timeout:
        Seconds of silence before a worker is declared lost.
    wait_timeout:
        Seconds to wait for the initial workers — and, mid-sweep, for a
        replacement when every worker has been lost with jobs still pending.
    max_in_flight:
        Coordinator-side ceiling on any worker's in-flight jobs (the
        effective cap is ``min(worker capacity, max_in_flight)``).
    """

    name = "remote"
    description = "stream jobs over TCP to repro worker daemons (heartbeats, retry)"

    def __init__(
        self,
        *,
        bind: str = DEFAULT_BIND,
        workers: int | None = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
        max_in_flight: int | None = None,
        quiet: bool = False,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.bind = bind
        self.min_workers = workers or 1
        self.heartbeat_timeout = heartbeat_timeout
        self.wait_timeout = wait_timeout
        self.max_in_flight = max_in_flight
        self.quiet = quiet
        #: The bound ``HOST:PORT`` once listening (ephemeral port resolved).
        self.address: str | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._events: queue.Queue = queue.Queue()
        self._workers: dict[str, _Worker] = {}
        self._registry_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------------
    def listen(self) -> str:
        """Bind the coordinator address and start accepting workers (idempotent).

        Returns the bound ``HOST:PORT`` — callers that bound port 0 read the
        real port from here before starting their workers.
        """
        if self._listener is not None:
            return self.address or self.bind
        host, port = parse_hostport(self.bind)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        # Polling accept: closing a socket does not wake a thread blocked in
        # accept(), so the accept loop must time out to notice shutdown.
        listener.settimeout(0.2)
        self._listener = listener
        self._stopping.clear()
        self.address = f"{host}:{listener.getsockname()[1]}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        self._say(f"coordinator listening on {self.address}")
        return self.address

    def connected_workers(self) -> int:
        """How many workers are currently connected and alive.

        Lets callers (and benchmarks) pre-start long-lived worker daemons and
        wait for them to register before dispatching a timed sweep.
        """
        with self._registry_lock:
            return sum(1 for worker in self._workers.values() if worker.alive)

    def close(self) -> None:
        """Tell every worker to shut down and stop listening."""
        self._stopping.set()
        with self._registry_lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            if worker.alive:
                try:
                    with worker.send_lock:
                        send_message(worker.sock, {"type": "shutdown"})
                except OSError:
                    pass
            worker.sock.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        self._events = queue.Queue()

    # -- backend contract --------------------------------------------------------------
    def execute(
        self,
        specs: Sequence["ScenarioSpec"],
        *,
        order: Sequence[int],
        emit: EmitFn,
    ) -> None:
        if not specs:
            return
        self.listen()
        try:
            self._wait_for_workers()
            self._dispatch_all(specs, list(order), emit)
        finally:
            self.close()

    # -- dispatch loop -----------------------------------------------------------------
    def _wait_for_workers(self) -> None:
        deadline = time.monotonic() + self.wait_timeout
        while True:
            with self._registry_lock:
                connected = sum(1 for w in self._workers.values() if w.alive)
            if connected >= self.min_workers:
                return
            if time.monotonic() >= deadline:
                if connected:
                    self._say(
                        f"proceeding with {connected} worker(s); "
                        f"{self.min_workers} requested"
                    )
                    return
                raise RuntimeError(
                    f"no workers connected to {self.address} within "
                    f"{self.wait_timeout:.0f}s; start some with "
                    f"`python -m repro worker --connect {self.address}`"
                )
            event = self._drain_event(timeout=0.1)
            if event is None:
                continue
            if event[0] == "lost":
                # A worker that came and went before dispatch: drop it so it
                # does not count toward (or receive) anything.
                self._on_worker_lost(event[1], event[2], deque(), set())
            elif event[0] == "msg":
                # Heartbeats must keep last_seen fresh even before dispatch:
                # assembling a fleet can take longer than heartbeat_timeout,
                # and a stale timestamp here would get a healthy worker
                # declared lost on the first liveness check.
                worker = self._workers.get(event[1])
                if worker is not None:
                    worker.last_seen = time.monotonic()

    def _dispatch_all(self, specs, pending_order: list[int], emit: EmitFn) -> None:
        pending: deque[int] = deque(pending_order)
        done: set[int] = set()
        last_progress = time.monotonic()

        while len(done) < len(specs):
            self._assign(specs, pending, done)
            event = self._drain_event(timeout=0.1)
            now = time.monotonic()
            if event is not None:
                kind = event[0]
                if kind == "joined":
                    last_progress = now
                elif kind == "lost":
                    _, worker_id, reason = event
                    self._on_worker_lost(worker_id, reason, pending, done)
                elif kind == "msg":
                    _, worker_id, message = event
                    if self._on_message(worker_id, message, specs, emit, done):
                        last_progress = now
            self._check_heartbeats(pending, done)
            if not self._alive_workers() and len(done) < len(specs):
                if now - last_progress > self.wait_timeout:
                    raise RuntimeError(
                        f"all workers lost with {len(specs) - len(done)} job(s) "
                        f"unfinished and none reconnected within "
                        f"{self.wait_timeout:.0f}s"
                    )

    def _assign(self, specs, pending: deque[int], done: set[int]) -> None:
        """Hand pending jobs to free worker slots, earliest-joined worker first."""
        while pending:
            candidates = [w for w in self._alive_workers() if w.free_slots() > 0]
            if not candidates:
                return
            worker = min(candidates, key=lambda w: w.joined_at)
            job = pending.popleft()
            if job in done:
                continue  # a straggler result landed while this retry was queued
            spec = specs[job]
            try:
                with worker.send_lock:
                    send_message(
                        worker.sock,
                        {
                            "type": "job",
                            "job": job,
                            "scenario": spec.name,
                            "spec": encode_spec_b64(spec),
                        },
                    )
            except OSError as error:
                pending.appendleft(job)
                self._events.put(("lost", worker.worker_id, f"send failed: {error}"))
                worker.alive = False
                continue
            worker.in_flight[job] = time.monotonic()
            self._say(f"dispatch job {job} ({spec.name}) -> {worker.worker_id}")

    def _on_message(self, worker_id, message, specs, emit, done: set[int]) -> bool:
        """Apply one worker message; True when it completed a job."""
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.last_seen = time.monotonic()
        kind = message["type"]
        if kind == "heartbeat" or kind == "hello":
            return False
        job = int(message.get("job", -1))
        if kind == "result":
            if worker is not None:
                worker.in_flight.pop(job, None)
            if job in done:
                return False  # straggler from a worker declared lost too early
            done.add(job)
            emit(job, result_from_wire(message))
            return True
        if kind == "error":
            scenario = message.get("scenario", "?")
            raise RuntimeError(
                f"scenario {scenario!r} failed on worker {worker_id!r}: "
                f"{message.get('message', 'unknown error')}"
            )
        return False

    def _on_worker_lost(self, worker_id, reason, pending: deque[int], done: set[int]) -> None:
        with self._registry_lock:
            worker = self._workers.pop(worker_id, None)
        if worker is None:
            return
        worker.alive = False
        worker.sock.close()
        # in_flight is insertion-ordered, i.e. the order the scheduler chose
        # (longest job first under measured costs); re-queue at the front in
        # that same order so the heaviest forfeited job restarts first.
        requeued = [job for job in worker.in_flight if job not in done]
        pending.extendleft(reversed(requeued))
        self._say(
            f"worker {worker_id} lost ({reason}); requeued {len(requeued)} job(s)"
        )

    def _check_heartbeats(self, pending: deque[int], done: set[int]) -> None:
        cutoff = time.monotonic() - self.heartbeat_timeout
        for worker in self._alive_workers():
            if worker.last_seen < cutoff:
                worker.alive = False
                self._on_worker_lost(
                    worker.worker_id,
                    f"no heartbeat for {self.heartbeat_timeout:.0f}s",
                    pending,
                    done,
                )

    # -- connection handling -----------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                sock, _ = listener.accept()
            except TimeoutError:
                continue  # poll tick: re-check the stopping flag
            except OSError:
                return  # listener closed
            # Accepted sockets inherit the listener's poll timeout; the
            # handshake sets its own deadline and then clears it.
            sock.settimeout(None)
            threading.Thread(
                target=self._serve_connection, args=(sock,), daemon=True
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        worker_id = None
        try:
            sock.settimeout(10.0)
            # Small latency-sensitive frames; see the matching setting in
            # the worker's dial path.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = recv_message(sock)
            if hello is None or hello.get("type") != "hello" or "worker" not in hello:
                send_message(sock, {"type": "reject", "reason": "malformed hello"})
                sock.close()
                return
            worker_id = str(hello["worker"])
            capacity = max(1, int(hello.get("capacity", 1)))
            if self.max_in_flight is not None:
                capacity = min(capacity, self.max_in_flight)
            now = time.monotonic()
            worker = _Worker(
                worker_id=worker_id,
                sock=sock,
                capacity=capacity,
                joined_at=now,
                last_seen=now,
            )
            with self._registry_lock:
                existing = self._workers.get(worker_id)
                if existing is not None and existing.alive:
                    send_message(
                        sock,
                        {
                            "type": "reject",
                            "reason": f"worker id {worker_id!r} is already connected",
                        },
                    )
                    sock.close()
                    return
                self._workers[worker_id] = worker
            with worker.send_lock:
                send_message(sock, {"type": "welcome"})
            sock.settimeout(None)
            self._events.put(("joined", worker_id))
            while True:
                message = recv_message(sock)
                if message is None:
                    self._events.put(("lost", worker_id, "connection closed"))
                    return
                self._events.put(("msg", worker_id, message))
        except (OSError, WireError) as error:
            if worker_id is not None:
                self._events.put(("lost", worker_id, str(error)))
            else:
                sock.close()

    # -- helpers -----------------------------------------------------------------------
    def _alive_workers(self) -> list[_Worker]:
        with self._registry_lock:
            return [w for w in self._workers.values() if w.alive]

    def _drain_event(self, *, timeout: float):
        try:
            return self._events.get(timeout=timeout)
        except queue.Empty:
            return None

    def _say(self, message: str) -> None:
        if not self.quiet:
            print(f"[remote] {message}", file=sys.stderr)
