"""The process-pool execution backend (one machine, many cores).

This is the pool logic that used to live inside
:class:`~repro.simulation.runner.ParallelRunner`, extracted behind the
:class:`~repro.exec.base.ExecutionBackend` contract so multi-host execution
could slot in beside it.  Semantics are unchanged:

* jobs are submitted to the pool in the caller's dispatch order (longest job
  first) so heavyweight scenarios never become the makespan tail;
* results are emitted as they land (completion order), the caller reassembles
  submission order;
* if the pool cannot be created at all, or a worker dies mid-run (restricted
  sandboxes that forbid subprocesses), the backend degrades to running the
  unfinished jobs serially — ``emit`` still fires exactly once per job and
  the report is identical either way.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.exec.base import EmitFn
from repro.exec.serial import run_one

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.catalog import ScenarioSpec


def _pool_job(spec: "ScenarioSpec"):
    """Pool entry point (module-level so it pickles under any start method)."""
    from repro.simulation.runner import run_scenario

    result = run_scenario(spec)
    return replace(result, worker=f"process:{os.getpid()}")


class ProcessBackend:
    """Fan jobs across a local :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``workers=None`` uses every core up to the job count; ``workers=1`` runs
    the jobs serially in-process without creating a pool.
    """

    name = "process"
    description = "fan jobs across a local process pool (serial fallback)"

    def __init__(self, *, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def _resolve_workers(self, job_count: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, job_count))

    def execute(
        self,
        specs: Sequence["ScenarioSpec"],
        *,
        order: Sequence[int],
        emit: EmitFn,
    ) -> None:
        done: set[int] = set()

        def emit_once(i: int, result) -> None:
            done.add(i)
            emit(i, result)

        workers = self._resolve_workers(len(specs))
        if workers > 1:
            try:
                self._execute_pool(specs, workers, order, emit_once)
            except (OSError, PermissionError, BrokenExecutor):
                # Process pools are unavailable (restricted sandbox) or a
                # worker could not be forked mid-run; the serial path below
                # finishes only the jobs that have not completed yet, so
                # ``emit`` still fires exactly once per spec.
                pass
        label = f"serial:{os.getpid()}"
        for i, spec in enumerate(specs):
            if i not in done:
                emit_once(i, run_one(spec, worker=label))

    def _execute_pool(self, specs, workers: int, order, emit) -> None:
        """Run the jobs across a pool, emitting results as they land."""
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {}
            try:
                # Heaviest jobs first: queue position decides makespan; the
                # emitted slot index keeps the report in submission order.
                for i in order:
                    future = pool.submit(_pool_job, specs[i])
                    pending[future] = i
                while pending:
                    finished, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                    for future in finished:
                        i = pending.pop(future)
                        error = future.exception()
                        if error is not None:
                            if isinstance(error, (OSError, PermissionError, BrokenExecutor)):
                                # Worker creation/death failure, not a scenario
                                # failure — leave the slot for the serial fallback.
                                raise error
                            raise RuntimeError(
                                f"scenario {specs[i].name!r} failed in worker: {error}"
                            ) from error
                        emit(i, future.result())
            except BaseException:
                # Surface the failure now: drop queued jobs instead of letting
                # the context manager's shutdown(wait=True) run them all first.
                # (Jobs already executing in a worker cannot be interrupted.)
                for future in pending:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
