"""Relocation (re-engineering) cost model.

"There is an engineering cost to reconfiguring applications for different
resource pools and the market economy allows teams to act on those costs
autonomously."  The cost model below quantifies that: moving a workload from
its home cluster to another cluster costs a fixed re-engineering effort plus a
distance-dependent component (data transfer, latency re-qualification) plus a
per-unit component proportional to the footprint being moved.  Agents compare
this cost against the price discount available elsewhere when deciding whether
to relocate or to pay the premium to stay.

>>> model = RelocationCostModel(base_cost=50.0, cost_per_unit=1.0)
>>> model.move_cost(None, "a", "a", workload_size=100)
0.0
>>> model.move_cost(None, "a", "b", workload_size=100)
150.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.topology import FleetTopology


@dataclass(frozen=True)
class RelocationCostModel:
    """Budget-dollar cost of moving a workload between clusters.

    Attributes
    ----------
    base_cost:
        Fixed engineering cost of any move (code changes, turn-up, qualification).
    cost_per_distance:
        Cost per unit of inter-site distance (proxy for data-transfer and
        latency re-engineering).
    cost_per_unit:
        Cost per unit of workload footprint moved (expressed in the same
        abstract "size" unit the caller supplies, typically CPU cores).
    immobile_multiplier:
        Extra multiplier applied to workloads flagged as hard to move (deep
        data-locality dependencies).
    """

    base_cost: float = 50.0
    cost_per_distance: float = 0.5
    cost_per_unit: float = 1.0
    immobile_multiplier: float = 5.0

    def __post_init__(self) -> None:
        if min(self.base_cost, self.cost_per_distance, self.cost_per_unit) < 0:
            raise ValueError("relocation cost components must be non-negative")
        if self.immobile_multiplier < 1:
            raise ValueError("immobile_multiplier must be >= 1")

    def move_cost(
        self,
        topology: FleetTopology | None,
        source: str,
        destination: str,
        *,
        workload_size: float,
        mobile: bool = True,
    ) -> float:
        """Cost of moving ``workload_size`` units from ``source`` to ``destination``.

        A move within the same cluster is free.  When no topology is supplied
        the distance component is skipped (agents can still trade off base and
        per-unit costs).
        """
        if workload_size < 0:
            raise ValueError("workload_size must be non-negative")
        if source == destination:
            return 0.0
        distance = 0.0
        if topology is not None and source in topology.clusters and destination in topology.clusters:
            distance = topology.cluster_distance(source, destination)
        cost = self.base_cost + self.cost_per_distance * distance + self.cost_per_unit * workload_size
        if not mobile:
            cost *= self.immobile_multiplier
        return cost

    def cheapest_destination(
        self,
        topology: FleetTopology | None,
        source: str,
        candidate_prices: Mapping[str, float],
        *,
        workload_size: float,
        recurring_horizon: float = 1.0,
        mobile: bool = True,
    ) -> tuple[str, float]:
        """Pick the destination minimising (recurring price cost + one-off move cost).

        ``candidate_prices`` maps cluster name -> recurring (per-auction) cost
        of hosting the workload there at current prices; ``recurring_horizon``
        is how many auction periods the team amortises the move over.  Returns
        the chosen cluster and its total cost; staying at ``source`` is always
        among the candidates if present in ``candidate_prices``.
        """
        if not candidate_prices:
            raise ValueError("candidate_prices must not be empty")
        best_cluster = None
        best_total = float("inf")
        for cluster, recurring in candidate_prices.items():
            total = recurring * recurring_horizon + self.move_cost(
                topology, source, cluster, workload_size=workload_size, mobile=mobile
            )
            if total < best_total:
                best_cluster, best_total = cluster, total
        assert best_cluster is not None
        return best_cluster, best_total
