"""Agent framework: the market view, demand profiles, and the team agent shell.

A :class:`TeamAgent` owns a demand profile (what the team needs to run), a
bidding strategy (how it converts that need plus the current market view into
sealed bids), and a learning model that adjusts its limit-price margin from
one auction to the next.  The simulation engine calls
:meth:`TeamAgent.prepare_bids` each auction and feeds back the team's
settlement via :meth:`TeamAgent.observe_settlement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.cluster.topology import FleetTopology
from repro.core.bids import Bid
from repro.core.settlement import SettlementLine
from repro.market.services import ServiceCatalog, ServiceRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.agents.strategies import BiddingStrategy


@dataclass(frozen=True)
class MarketView:
    """Everything an agent is allowed to see when preparing its bids.

    Mirrors the information on the trading-platform front end: the pool index
    (capacities and utilizations), the currently displayed prices, the former
    fixed prices, and which auction number this is.
    """

    index: PoolIndex
    displayed_prices: Mapping[str, float]
    fixed_prices: Mapping[str, float]
    auction_number: int
    topology: FleetTopology | None = None

    def price(self, pool_name: str) -> float:
        """Displayed price of one pool."""
        return float(self.displayed_prices[pool_name])

    def cluster_cost(self, cluster: str, bundle: Mapping[str, float]) -> float:
        """Cost of a {pool name: qty} bundle using displayed prices."""
        return float(sum(qty * self.displayed_prices[name] for name, qty in bundle.items()))

    def cheapest_clusters(self, *, by: str = "cpu", limit: int | None = None) -> list[str]:
        """Clusters ordered by ascending displayed price of one resource dimension."""
        clusters = self.index.clusters()
        ordered = sorted(clusters, key=lambda c: self.displayed_prices[f"{c}/{by}"])
        return ordered if limit is None else ordered[:limit]

    def utilization(self, pool_name: str) -> float:
        """Current utilization of one pool."""
        return self.index.pool(pool_name).utilization


@dataclass
class DemandProfile:
    """What a team needs: service requests anchored at a home cluster.

    Attributes
    ----------
    home_cluster:
        Where the team's workload currently runs.
    requests:
        The service-level requirements the team must provision for.
    growth_rate:
        Multiplicative demand growth per auction period (e.g. 0.05 = +5%).
    mobile:
        Whether the workload can move clusters without prohibitive cost.
    """

    home_cluster: str
    requests: list[ServiceRequest] = field(default_factory=list)
    growth_rate: float = 0.0
    mobile: bool = True

    def grow(self) -> None:
        """Apply one period of demand growth in place."""
        if self.growth_rate == 0.0:
            return
        self.requests = [
            ServiceRequest(
                service=req.service,
                cluster=req.cluster,
                quantity=req.quantity * (1.0 + self.growth_rate),
            )
            for req in self.requests
        ]

    def total_quantity(self) -> float:
        """Sum of request quantities (a crude workload-size proxy)."""
        return float(sum(req.quantity for req in self.requests))

    def covering_bundle(self, catalog: ServiceCatalog, index: PoolIndex, cluster: str | None = None) -> dict[str, float]:
        """Aggregate covering bundle of all requests, optionally re-homed to ``cluster``."""
        target = cluster or self.home_cluster
        bundle: dict[str, float] = {}
        for req in self.requests:
            rehomed = ServiceRequest(service=req.service, cluster=target, quantity=req.quantity)
            for name, qty in catalog.covering_bundle(rehomed, index).items():
                bundle[name] = bundle.get(name, 0.0) + qty
        return bundle


class TeamAgent:
    """One engineering team participating in the market."""

    def __init__(
        self,
        name: str,
        *,
        demand: DemandProfile,
        strategy: "BiddingStrategy",
        catalog: ServiceCatalog,
        budget: float = 0.0,
    ):
        self.name = name
        self.demand = demand
        self.strategy = strategy
        self.catalog = catalog
        self.budget = budget
        #: Settlement lines observed across auctions (newest last).
        self.settlement_history: list[SettlementLine] = []
        #: Quota the agent currently holds, keyed by pool name (refreshed by the simulation).
        self.holdings: dict[str, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TeamAgent({self.name!r}, strategy={type(self.strategy).__name__})"

    # -- main hooks -------------------------------------------------------------------
    def prepare_bids(self, view: MarketView) -> list[Bid]:
        """Produce this auction's sealed bids."""
        bids = self.strategy.prepare_bids(self, view)
        for bid in bids:
            if bid.bidder != self.name:
                raise ValueError(
                    f"strategy {type(self.strategy).__name__} produced a bid for {bid.bidder!r}"
                )
        return bids

    def observe_settlement(self, lines: Sequence[SettlementLine], view: MarketView) -> None:
        """Feed back the agent's settlement lines so its strategy can adapt."""
        own = [line for line in lines if line.bidder == self.name]
        self.settlement_history.extend(own)
        self.strategy.observe(self, own, view)
        self.demand.grow()

    # -- helpers used by strategies ----------------------------------------------------
    def affordable_limit(self, desired_limit: float) -> float:
        """Clamp a desired limit price to the agent's remaining budget."""
        if self.budget <= 0:
            return max(0.0, desired_limit)
        return float(np.clip(desired_limit, 0.0, self.budget))

    def last_premium(self) -> float | None:
        """Premium gamma_u of the most recent winning settlement, if any."""
        for line in reversed(self.settlement_history):
            if line.won and line.premium is not None:
                return line.premium
        return None

    def won_last_auction(self) -> bool | None:
        """Whether the most recent settlement line was a win (None if no history)."""
        if not self.settlement_history:
            return None
        return self.settlement_history[-1].won
