"""Bidding strategies: how teams convert needs + market view into sealed bids.

Each strategy reproduces one of the behavioural patterns reported in the
paper's Section V (see the package docstring).  Strategies are deliberately
simple and inspectable — the point of the reproduction is the *mechanism's*
response to these behaviours, not sophisticated agent AI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.agents.base import MarketView, TeamAgent
from repro.agents.learning import AdaptiveMarginModel
from repro.agents.relocation import RelocationCostModel
from repro.core.bids import Bid
from repro.core.bundles import BundleSet
from repro.core.settlement import SettlementLine


class BiddingStrategy(Protocol):
    """The strategy interface used by :class:`repro.agents.base.TeamAgent`."""

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        """Produce the agent's sealed bids for this auction."""
        ...  # pragma: no cover - protocol

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        """Observe the agent's settlement lines after the auction."""
        ...  # pragma: no cover - protocol


def _home_bundle(agent: TeamAgent, view: MarketView, cluster: str | None = None) -> dict[str, float]:
    """The agent's aggregate covering bundle, homed at ``cluster`` (default: home)."""
    return agent.demand.covering_bundle(agent.catalog, view.index, cluster)


def _bundle_cost(bundle: dict[str, float], prices) -> float:
    return float(sum(qty * prices[name] for name, qty in bundle.items()))


def _buy_bid(agent: TeamAgent, view: MarketView, bundles: list[dict[str, float]], limit: float, **metadata: object) -> Bid:
    vectors = [view.index.vector(b) for b in bundles]
    return Bid(
        bidder=agent.name,
        bundles=BundleSet(view.index, vectors),
        limit=float(max(limit, 0.0)),
        metadata={"strategy": type(agent.strategy).__name__, **metadata},
    )


@dataclass
class FixedPriceAnchorStrategy:
    """Anchor the limit price to the *former fixed prices*, not the market.

    This is the dominant early-auction behaviour the paper reports; because
    fixed prices can be far from the clearing prices, these bids produce the
    wide, erratic premiums of the first auctions.
    """

    margin: float = 0.75
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    jitter: float = 0.5

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        bundle = _home_bundle(agent, view)
        if not bundle:
            return []
        anchor = _bundle_cost(bundle, view.fixed_prices)
        noise = float(self.rng.uniform(-self.jitter, self.jitter))
        limit = agent.affordable_limit(anchor * (1.0 + max(self.margin + noise, 0.0)))
        return [_buy_bid(agent, view, [bundle], limit, anchor="fixed_price")]

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        return None  # deliberately non-adaptive


@dataclass
class MarketTrackerStrategy:
    """Anchor the limit price to the displayed market prices with a shrinking margin.

    This is the mature-market behaviour: teams watch the preliminary prices and
    bid just above them, so winner premiums fall towards zero (Table I).
    """

    margins: AdaptiveMarginModel = field(default_factory=AdaptiveMarginModel)
    alternatives: int = 0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        home = agent.demand.home_cluster
        clusters = [home]
        if self.alternatives:
            for cluster in view.cheapest_clusters(limit=self.alternatives + 1):
                if cluster != home and len(clusters) < self.alternatives + 1:
                    clusters.append(cluster)
        bundles = [_home_bundle(agent, view, c) for c in clusters]
        bundles = [b for b in bundles if b]
        if not bundles:
            return []
        cheapest_cost = min(_bundle_cost(b, view.displayed_prices) for b in bundles)
        limit = agent.affordable_limit(self.margins.limit_for(cheapest_cost))
        return [_buy_bid(agent, view, bundles, limit, anchor="market_price")]

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        for line in lines:
            if line.won:
                self.margins.record_win(observed_premium=line.premium)
            else:
                self.margins.record_loss()


@dataclass
class LowballStrategy:
    """Enter deliberately low bids expecting excess supply to settle them anyway.

    "Some bidders in earlier auctions would enter arbitrarily low bids in the
    expectation that these trades would be settled due to lack of competition
    and excess Google supply without reserve prices."
    """

    fraction: float = 0.35
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        bundle = _home_bundle(agent, view)
        if not bundle:
            return []
        cost = _bundle_cost(bundle, view.displayed_prices)
        limit = agent.affordable_limit(cost * self.fraction * float(self.rng.uniform(0.5, 1.0)))
        return [_buy_bid(agent, view, [bundle], limit, anchor="lowball")]

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        return None


@dataclass
class PremiumPayerStrategy:
    """Keep growing in the congested home cluster, whatever the price.

    "We also saw other teams that were willing to pay a significant price
    premium to continue growing in congested clusters even though resources
    were available at much lower cost elsewhere."  These teams have a high
    engineering cost of relocation (data locality, latency), so their bids
    name only the home cluster and carry a large premium — the outliers in
    Figure 7.
    """

    premium: float = 2.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        bundle = _home_bundle(agent, view)
        if not bundle:
            return []
        cost = _bundle_cost(bundle, view.displayed_prices)
        limit = agent.affordable_limit(cost * (1.0 + self.premium * float(self.rng.uniform(0.8, 1.2))))
        return [_buy_bid(agent, view, [bundle], limit, anchor="premium", relocatable=False)]

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        return None


@dataclass
class RelocatorStrategy:
    """Move demand to cheaper, less utilized clusters when the discount beats the move cost.

    "Teams that find resource A at a significant discount to resource B may bid
    on resource A and set about reengineering their job to use less of
    resource B and more of resource A."  The relocator quotes its bundle in
    every candidate cluster, subtracts the (amortised) relocation cost from
    the attractiveness of each alternative, and submits the XOR set of the
    worthwhile ones.
    """

    relocation: RelocationCostModel = field(default_factory=RelocationCostModel)
    candidate_count: int = 4
    margins: AdaptiveMarginModel = field(default_factory=lambda: AdaptiveMarginModel(initial_margin=0.4))
    amortisation_periods: float = 4.0

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        home = agent.demand.home_cluster
        home_bundle = _home_bundle(agent, view, home)
        if not home_bundle:
            return []
        home_cost = _bundle_cost(home_bundle, view.displayed_prices)
        workload_size = agent.demand.total_quantity()

        alternatives: list[tuple[str, dict[str, float], float]] = [(home, home_bundle, home_cost)]
        for cluster in view.cheapest_clusters(limit=self.candidate_count + 1):
            if cluster == home:
                continue
            bundle = _home_bundle(agent, view, cluster)
            recurring = _bundle_cost(bundle, view.displayed_prices)
            move = self.relocation.move_cost(
                view.topology, home, cluster, workload_size=workload_size, mobile=agent.demand.mobile
            )
            effective = recurring + move / self.amortisation_periods
            # only include alternatives that actually beat staying home
            if effective < home_cost:
                alternatives.append((cluster, bundle, recurring))
        bundles = [bundle for _, bundle, _ in alternatives]
        cheapest_cost = min(cost for _, _, cost in alternatives)
        limit = agent.affordable_limit(self.margins.limit_for(cheapest_cost))
        return [
            _buy_bid(
                agent,
                view,
                bundles,
                limit,
                anchor="relocation",
                candidates=[c for c, _, _ in alternatives],
            )
        ]

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        for line in lines:
            if line.won:
                self.margins.record_win(observed_premium=line.premium)
            else:
                self.margins.record_loss()


@dataclass
class SellerStrategy:
    """Offer held quota in congested clusters to profit from the higher prices.

    "In those clusters with the highest market prices for resources we saw a
    number of large teams offer resources on the market to take advantage of
    the higher prices and move to less congested clusters."  Sellers anchor
    their minimum revenue *below* the displayed value, confident that
    competition will lift the clearing price ("a number of sellers will enter
    very low prices confident that there will be ample competition").
    """

    offer_fraction: float = 0.8
    reserve_discount: float = 0.5
    utilization_threshold: float = 0.7

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        if not agent.holdings:
            return []
        offered: dict[str, float] = {}
        for name, quantity in agent.holdings.items():
            if quantity <= 0:
                continue
            if view.utilization(name) >= self.utilization_threshold:
                offered[name] = quantity * self.offer_fraction
        if not offered:
            return []
        value = _bundle_cost(offered, view.displayed_prices)
        min_revenue = max(value * self.reserve_discount, 0.0)
        return [
            Bid.sell(
                agent.name,
                view.index,
                [offered],
                min_revenue=min_revenue,
                strategy=type(self).__name__,
                anchor="sell_congested",
            )
        ]

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        return None


@dataclass
class ArbitrageurStrategy:
    """Buy under-priced pools now, sell them back when the price differential widens.

    "Another change in bidder behavior we have observed is an increasing
    sophistication towards arbitrage opportunities.  As the market price
    differential between resources increases there have been greater
    opportunities for teams to profit from one auction to the next."
    """

    buy_budget_fraction: float = 0.5
    sell_markup: float = 1.3
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    #: Average purchase price per pool, updated as positions are opened.
    cost_basis: dict[str, float] = field(default_factory=dict)

    def prepare_bids(self, agent: TeamAgent, view: MarketView) -> list[Bid]:
        bids: list[Bid] = []
        # Sell any holding whose displayed price has risen past the markup.
        to_sell: dict[str, float] = {}
        for name, quantity in agent.holdings.items():
            basis = self.cost_basis.get(name)
            if quantity > 0 and basis is not None and view.price(name) >= basis * self.sell_markup:
                to_sell[name] = quantity
        if to_sell:
            value = _bundle_cost(to_sell, view.displayed_prices)
            bids.append(
                Bid.sell(
                    agent.name, view.index, [to_sell], min_revenue=value * 0.8,
                    strategy=type(self).__name__, anchor="arbitrage_sell",
                )
            )
        # Buy the cheapest cluster's CPU/RAM relative to fixed price.
        cheapest = view.cheapest_clusters(limit=1)[0]
        bundle = _home_bundle(agent, view, cheapest)
        if bundle:
            cost = _bundle_cost(bundle, view.displayed_prices)
            limit = agent.affordable_limit(
                min(cost * 1.05, agent.budget * self.buy_budget_fraction if agent.budget > 0 else cost * 1.05)
            )
            if limit > 0:
                bids.append(
                    _buy_bid(agent, view, [bundle], limit, anchor="arbitrage_buy", target=cheapest)
                )
        return bids

    def observe(self, agent: TeamAgent, lines: Sequence[SettlementLine], view: MarketView) -> None:
        for line in lines:
            if not line.won:
                continue
            allocation = view.index.describe(line.allocation)
            bought = {name: qty for name, qty in allocation.items() if qty > 0}
            total_qty = sum(bought.values())
            if total_qty > 0 and line.payment > 0:
                for name, qty in bought.items():
                    # attribute cost proportionally to quantity at displayed prices
                    share = qty * view.price(name) / max(
                        sum(q * view.price(n) for n, q in bought.items()), 1e-9
                    )
                    self.cost_basis[name] = (line.payment * share) / qty
