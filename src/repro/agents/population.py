"""Population generation: building a fleet of team agents for an experiment.

The paper's experimental auctions had on the order of 100 bidders.  This
module builds a synthetic population of that scale: each team gets a home
cluster (biased towards congested clusters, since that is where teams
accumulate before the market exists), a demand profile drawn from the service
catalog, a budget endowment, starting quota equal to its current footprint,
and a strategy drawn from a configurable mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.agents.base import DemandProfile, TeamAgent
from repro.agents.learning import AdaptiveMarginModel
from repro.agents.relocation import RelocationCostModel
from repro.agents.strategies import (
    ArbitrageurStrategy,
    BiddingStrategy,
    FixedPriceAnchorStrategy,
    LowballStrategy,
    MarketTrackerStrategy,
    PremiumPayerStrategy,
    RelocatorStrategy,
    SellerStrategy,
)
from repro.agents.traits import ENDOWED_KINDS, AgentGenome, strategy_from_traits
from repro.cluster.fleet_gen import SyntheticFleet
from repro.market.services import ServiceCatalog, ServiceRequest, default_catalog


@dataclass(frozen=True)
class PopulationSpec:
    """Parameters controlling population generation.

    ``strategy_mix`` gives the relative weight of each strategy kind; the
    defaults roughly match the behavioural mix the paper describes (most
    teams anchor on fixed prices early / track the market, a smaller set of
    relocators and sellers, a few premium payers, low-ballers, and
    arbitrageurs).

    ``roster`` switches the population from sampled to scripted: instead of
    drawing strategy kinds and parameters from ``strategy_mix``, each agent
    is built from an explicit :class:`~repro.agents.traits.AgentGenome`
    (name, kind, traits).  This is how tournament generations ride a
    :class:`~repro.simulation.catalog.ScenarioSpec` unchanged through every
    execution backend.  Demand profiles and home clusters are still drawn
    from the scenario rng, so two genomes in the same slot face identical
    market conditions.

    >>> spec = PopulationSpec(team_count=2, roster=(
    ...     AgentGenome(name="a", kind="lowball"),
    ...     AgentGenome(name="b", kind="seller"),
    ... ))
    >>> len(spec.roster)
    2
    """

    team_count: int = 100
    budget_per_team: float = 50_000.0
    #: Mean fraction of a congested cluster's footprint one team represents.
    demand_scale: float = 0.01
    congested_home_bias: float = 0.75
    strategy_mix: Mapping[str, float] = field(
        default_factory=lambda: {
            "fixed_anchor": 0.25,
            "market_tracker": 0.30,
            "relocator": 0.20,
            "premium_payer": 0.08,
            "seller": 0.10,
            "lowball": 0.04,
            "arbitrageur": 0.03,
        }
    )
    roster: tuple[AgentGenome, ...] | None = None

    def __post_init__(self) -> None:
        if self.team_count < 1:
            raise ValueError("team_count must be >= 1")
        if self.budget_per_team < 0:
            raise ValueError("budget_per_team must be non-negative")
        if not self.strategy_mix:
            raise ValueError("strategy_mix must not be empty")
        if any(weight < 0 for weight in self.strategy_mix.values()):
            raise ValueError("strategy weights must be non-negative")
        if sum(self.strategy_mix.values()) <= 0:
            raise ValueError("strategy weights must sum to a positive value")
        if self.roster is not None:
            if len(self.roster) != self.team_count:
                raise ValueError(
                    f"roster has {len(self.roster)} genomes but team_count is {self.team_count}"
                )
            names = [genome.name for genome in self.roster]
            if len(set(names)) != len(names):
                raise ValueError("roster genome names must be unique")


def _make_strategy(kind: str, rng: np.random.Generator) -> BiddingStrategy:
    seed = int(rng.integers(0, 2**31 - 1))
    strategy_rng = np.random.default_rng(seed)
    if kind == "fixed_anchor":
        return FixedPriceAnchorStrategy(margin=float(rng.uniform(0.4, 1.2)), rng=strategy_rng)
    if kind == "market_tracker":
        return MarketTrackerStrategy(
            margins=AdaptiveMarginModel(initial_margin=float(rng.uniform(0.2, 0.8))),
            alternatives=int(rng.integers(0, 3)),
            rng=strategy_rng,
        )
    if kind == "relocator":
        return RelocatorStrategy(
            relocation=RelocationCostModel(base_cost=float(rng.uniform(20, 120))),
            candidate_count=int(rng.integers(2, 6)),
            margins=AdaptiveMarginModel(initial_margin=float(rng.uniform(0.1, 0.5))),
        )
    if kind == "premium_payer":
        return PremiumPayerStrategy(premium=float(rng.uniform(1.0, 3.0)), rng=strategy_rng)
    if kind == "seller":
        return SellerStrategy(
            offer_fraction=float(rng.uniform(0.5, 0.9)),
            reserve_discount=float(rng.uniform(0.3, 0.7)),
        )
    if kind == "lowball":
        return LowballStrategy(fraction=float(rng.uniform(0.1, 0.5)), rng=strategy_rng)
    if kind == "arbitrageur":
        return ArbitrageurStrategy(rng=strategy_rng)
    raise KeyError(f"unknown strategy kind {kind!r}")


def build_population(
    fleet: SyntheticFleet,
    spec: PopulationSpec | None = None,
    *,
    catalog: ServiceCatalog | None = None,
    seed: int | np.random.Generator = 0,
) -> list[TeamAgent]:
    """Build a population of team agents homed on a synthetic fleet.

    Home clusters are drawn with probability proportional to utilization
    (raised by ``congested_home_bias``) so that, as in the real system, most
    existing workloads sit in the congested clusters and the market's job is
    to move them out.  Demand sizes scale with the home cluster's capacity.
    """
    spec = spec or PopulationSpec()
    catalog = catalog or default_catalog()
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    clusters = fleet.cluster_names()
    cpu_utils = np.array(
        [fleet.pool_index.pool(f"{c}/cpu").utilization for c in clusters], dtype=float
    )
    weights = spec.congested_home_bias * cpu_utils + (1 - spec.congested_home_bias)
    weights = weights / weights.sum()

    services = catalog.names()

    def draw_demand(home: str) -> DemandProfile:
        # Demand: one or two service requests sized as a fraction of the home cluster.
        home_cpu_capacity = fleet.pool_index.pool(f"{home}/cpu").capacity
        request_count = int(rng.integers(1, 3))
        requests = []
        for _ in range(request_count):
            service = str(rng.choice(services))
            coverage_cpu = catalog.spec(service).coverage.cpu
            target_cpu = home_cpu_capacity * spec.demand_scale * float(rng.lognormal(0.0, 0.6))
            quantity = max(target_cpu / max(coverage_cpu, 1e-6), 1.0)
            requests.append(ServiceRequest(service=service, cluster=home, quantity=quantity))
        return DemandProfile(
            home_cluster=home,
            requests=requests,
            growth_rate=float(rng.uniform(0.0, 0.10)),
            mobile=bool(rng.random() < 0.75),
        )

    agents: list[TeamAgent] = []
    if spec.roster is not None:
        # Scripted path: kinds and strategy parameters come from the genomes;
        # only market conditions (home, demand) are drawn from the rng.
        for genome in spec.roster:
            home = str(rng.choice(clusters, p=weights))
            demand = draw_demand(home)
            strategy_seed = int(rng.integers(0, 2**31 - 1))
            agent = TeamAgent(
                name=genome.name,
                demand=demand,
                strategy=strategy_from_traits(genome.kind, genome.traits, seed=strategy_seed),
                catalog=catalog,
                budget=spec.budget_per_team,
            )
            if genome.kind in ENDOWED_KINDS:
                agent.holdings = demand.covering_bundle(catalog, fleet.pool_index, home)
            agents.append(agent)
        return agents

    kinds = list(spec.strategy_mix)
    kind_weights = np.array([spec.strategy_mix[k] for k in kinds], dtype=float)
    kind_weights = kind_weights / kind_weights.sum()

    for i in range(spec.team_count):
        home = str(rng.choice(clusters, p=weights))
        kind = str(rng.choice(kinds, p=kind_weights))
        demand = draw_demand(home)
        agent = TeamAgent(
            name=f"team-{i:03d}",
            demand=demand,
            strategy=_make_strategy(kind, rng),
            catalog=catalog,
            budget=spec.budget_per_team,
        )
        # Sellers and arbitrageurs need starting holdings to offer: endow them
        # with quota equal to their current footprint in their home cluster.
        if kind in ("seller", "arbitrageur"):
            agent.holdings = demand.covering_bundle(catalog, fleet.pool_index, home)
        agents.append(agent)
    return agents


def strategy_counts(agents: list[TeamAgent]) -> dict[str, int]:
    """How many agents use each strategy class (for reporting)."""
    counts: dict[str, int] = {}
    for agent in agents:
        name = type(agent.strategy).__name__
        counts[name] = counts.get(name, 0) + 1
    return counts
