"""Engineering-team agents: the simulated market participants.

The paper's participants were real engineering teams; this package provides
scripted agents reproducing the behavioural patterns reported in Section V:

* teams anchoring their limit prices to the former fixed prices in early
  auctions and to market prices later (Table I's shrinking bid premium);
* teams in congested clusters selling their quota at the higher prices and
  relocating to cheaper clusters;
* teams willing to pay a large premium to keep growing in a congested cluster
  because relocation has a real engineering cost (Figure 7's outliers);
* low-ball bidders counting on excess supply;
* arbitrageurs exploiting price differentials across auctions.
"""

from repro.agents.relocation import RelocationCostModel
from repro.agents.base import MarketView, TeamAgent, DemandProfile
from repro.agents.strategies import (
    BiddingStrategy,
    FixedPriceAnchorStrategy,
    MarketTrackerStrategy,
    LowballStrategy,
    PremiumPayerStrategy,
    RelocatorStrategy,
    SellerStrategy,
    ArbitrageurStrategy,
)
from repro.agents.learning import AdaptiveMarginModel
from repro.agents.population import PopulationSpec, build_population
from repro.agents.traits import (
    TRAIT_BOUNDS,
    TRAIT_NAMES,
    AgentGenome,
    Traits,
    clone_genomes,
    mutate_from_base,
    mutate_traits,
    random_traits,
    register_strategy_kind,
    select_elites,
    strategy_from_traits,
    strategy_kinds,
)
from repro.agents.tournament import (
    GenerationReport,
    TournamentConfig,
    TournamentEngine,
    TournamentReport,
    genome_score,
    initial_roster,
    next_generation,
    run_tournament,
)

__all__ = [
    "RelocationCostModel",
    "MarketView",
    "TeamAgent",
    "DemandProfile",
    "BiddingStrategy",
    "FixedPriceAnchorStrategy",
    "MarketTrackerStrategy",
    "LowballStrategy",
    "PremiumPayerStrategy",
    "RelocatorStrategy",
    "SellerStrategy",
    "ArbitrageurStrategy",
    "AdaptiveMarginModel",
    "PopulationSpec",
    "build_population",
    "TRAIT_BOUNDS",
    "TRAIT_NAMES",
    "AgentGenome",
    "Traits",
    "clone_genomes",
    "mutate_from_base",
    "mutate_traits",
    "random_traits",
    "register_strategy_kind",
    "select_elites",
    "strategy_from_traits",
    "strategy_kinds",
    "GenerationReport",
    "TournamentConfig",
    "TournamentEngine",
    "TournamentReport",
    "genome_score",
    "initial_roster",
    "next_generation",
    "run_tournament",
]
