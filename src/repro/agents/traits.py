"""Numeric strategy traits: the genome the bidder tournaments evolve.

The seven bidding strategies of :mod:`repro.agents.strategies` were built with
hand-picked parameters.  This module re-expresses every one of those knobs as
a function of four numeric **traits**, so that a whole population of bidders
becomes a vector-valued genome the tournament engine
(:mod:`repro.agents.tournament`) can clone, mutate, and select on:

``aggressiveness``
    How far above the estimated bundle cost the bidder is willing to commit —
    feeds initial margins, premiums, and offer sizes.
``patience``
    How widely the bidder shops before committing — feeds the number of
    alternative clusters quoted, relocation amortisation horizons, and sell
    thresholds.
``budget_discipline``
    How tightly the bidder guards its endowment — feeds margin ceilings,
    reserve discounts, and the budget fraction risked per auction.
``learning_rate``
    How fast the bidder converges on the observed clearing prices — feeds the
    :class:`~repro.agents.learning.AdaptiveMarginModel` decay speed (the
    paper's Section V-C adaptation, dialled per bidder).

All traits live in ``[0, 1]``.  Every strategy kind is registered in
:data:`STRATEGY_BUILDERS`; tests parametrise over :func:`strategy_kinds` so a
newly registered kind is automatically covered by the contract suite.

>>> rng = np.random.default_rng(7)
>>> t = random_traits(rng)
>>> all(0.0 <= v <= 1.0 for v in t.as_dict().values())
True
>>> mutate_traits(t, np.random.default_rng(1), scale=0.2) == mutate_traits(
...     t, np.random.default_rng(1), scale=0.2)
True
>>> sorted(strategy_kinds()) == strategy_kinds()
True
>>> type(strategy_from_traits("market_tracker", t, seed=3)).__name__
'MarketTrackerStrategy'
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

import numpy as np

from repro.agents.learning import AdaptiveMarginModel
from repro.agents.relocation import RelocationCostModel
from repro.agents.strategies import (
    ArbitrageurStrategy,
    BiddingStrategy,
    FixedPriceAnchorStrategy,
    LowballStrategy,
    MarketTrackerStrategy,
    PremiumPayerStrategy,
    RelocatorStrategy,
    SellerStrategy,
)

#: The trait names, in canonical order.
TRAIT_NAMES: tuple[str, ...] = (
    "aggressiveness",
    "patience",
    "budget_discipline",
    "learning_rate",
)

#: Hard bounds every trait must stay inside (mutation clamps to these).
TRAIT_BOUNDS: dict[str, tuple[float, float]] = {name: (0.0, 1.0) for name in TRAIT_NAMES}


def _lerp(lo: float, hi: float, t: float) -> float:
    """Linear interpolation of ``[lo, hi]`` by ``t`` in [0, 1]."""
    return lo + (hi - lo) * t


@dataclass(frozen=True)
class Traits:
    """One bidder's numeric genome.

    >>> Traits(aggressiveness=0.5).patience
    0.5
    >>> Traits.from_dict({"aggressiveness": 1.0}).aggressiveness
    1.0
    >>> Traits(aggressiveness=2.0)
    Traceback (most recent call last):
    ...
    ValueError: trait 'aggressiveness' = 2.0 outside bounds [0.0, 1.0]
    """

    aggressiveness: float = 0.5
    patience: float = 0.5
    budget_discipline: float = 0.5
    learning_rate: float = 0.5

    def __post_init__(self) -> None:
        for name in TRAIT_NAMES:
            value = getattr(self, name)
            lo, hi = TRAIT_BOUNDS[name]
            if not (lo <= value <= hi):
                raise ValueError(f"trait {name!r} = {value} outside bounds [{lo}, {hi}]")

    def as_dict(self) -> dict[str, float]:
        """The traits as a plain mapping, in canonical order."""
        return {name: float(getattr(self, name)) for name in TRAIT_NAMES}

    @classmethod
    def from_dict(cls, values: Mapping[str, float]) -> "Traits":
        """Build traits from a mapping; absent traits keep their defaults."""
        known = {k: float(v) for k, v in values.items() if k in TRAIT_NAMES}
        unknown = set(values) - set(TRAIT_NAMES)
        if unknown:
            raise KeyError(f"unknown trait(s): {', '.join(sorted(unknown))}")
        return cls(**known)


def random_traits(rng: np.random.Generator) -> Traits:
    """Uniform random traits within bounds (the generation-0 prior).

    >>> random_traits(np.random.default_rng(0)) == random_traits(np.random.default_rng(0))
    True
    """
    values = {}
    for name in TRAIT_NAMES:
        lo, hi = TRAIT_BOUNDS[name]
        values[name] = float(rng.uniform(lo, hi))
    return Traits(**values)


def mutate_traits(traits: Traits, rng: np.random.Generator, *, scale: float = 0.15) -> Traits:
    """Gaussian-perturb every trait, clamped back into :data:`TRAIT_BOUNDS`.

    Deterministic per ``rng`` state: the same seeded generator produces the
    same child, which is what makes tournament generations replayable.

    >>> base = Traits()
    >>> child = mutate_traits(base, np.random.default_rng(5), scale=0.3)
    >>> all(0.0 <= v <= 1.0 for v in child.as_dict().values())
    True
    """
    if scale < 0:
        raise ValueError("mutation scale must be non-negative")
    values = {}
    for name in TRAIT_NAMES:
        lo, hi = TRAIT_BOUNDS[name]
        perturbed = getattr(traits, name) + float(rng.normal(0.0, scale))
        values[name] = float(min(max(perturbed, lo), hi))
    return Traits(**values)


# ---------------------------------------------------------------------------
# Genomes: a named, heritable (kind, traits) pair.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AgentGenome:
    """One tournament agent: a strategy kind plus its trait vector.

    Genomes are what populations are made of: frozen, picklable, and cheap to
    serialise, so a roster of them can ride a
    :class:`~repro.simulation.catalog.ScenarioSpec` across process and remote
    execution backends unchanged.

    >>> g = AgentGenome(name="g0-market_tracker-000", kind="market_tracker",
    ...                 traits=Traits(aggressiveness=0.8))
    >>> g.generation, g.parent
    (0, None)
    >>> g.as_dict()["traits"]["aggressiveness"]
    0.8
    """

    name: str
    kind: str
    traits: Traits = field(default_factory=Traits)
    generation: int = 0
    parent: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("genome name must be non-empty")
        if self.generation < 0:
            raise ValueError("generation must be non-negative")

    def as_dict(self) -> dict[str, object]:
        """The canonical report entry for one genome (rounded for JSON)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "generation": self.generation,
            "parent": self.parent,
            "traits": {k: round(v, 6) for k, v in self.traits.as_dict().items()},
        }


def clone_genomes(parents: list[AgentGenome], names: list[str], *, generation: int) -> list[AgentGenome]:
    """Exact copies of ``parents`` under new names (elitism without mutation).

    ``names`` supplies one fresh name per clone; parents cycle when more
    clones than parents are requested.

    >>> base = AgentGenome(name="p", kind="lowball", traits=Traits())
    >>> clones = clone_genomes([base], ["c0", "c1"], generation=1)
    >>> [(c.name, c.parent, c.generation) for c in clones]
    [('c0', 'p', 1), ('c1', 'p', 1)]
    >>> clones[0].traits == base.traits
    True
    """
    if not parents:
        raise ValueError("clone_genomes needs at least one parent")
    return [
        replace(parents[i % len(parents)], name=name, generation=generation,
                parent=parents[i % len(parents)].name)
        for i, name in enumerate(names)
    ]


def mutate_from_base(
    parents: list[AgentGenome],
    names: list[str],
    rng: np.random.Generator,
    *,
    generation: int,
    scale: float = 0.15,
) -> list[AgentGenome]:
    """Mutated children of ``parents``, one per entry of ``names``.

    Parents are cycled in order; each child's traits are the parent's traits
    Gaussian-perturbed by :func:`mutate_traits` within :data:`TRAIT_BOUNDS`.
    Reproducible from ``(rng seed, parents)``.

    >>> base = AgentGenome(name="p", kind="seller", traits=Traits())
    >>> kids = mutate_from_base([base], ["k0", "k1"], np.random.default_rng(3),
    ...                         generation=2, scale=0.2)
    >>> [(k.kind, k.parent, k.generation) for k in kids]
    [('seller', 'p', 2), ('seller', 'p', 2)]
    """
    if not parents:
        raise ValueError("mutate_from_base needs at least one parent")
    children: list[AgentGenome] = []
    for i, name in enumerate(names):
        parent = parents[i % len(parents)]
        children.append(
            replace(
                parent,
                name=name,
                traits=mutate_traits(parent.traits, rng, scale=scale),
                generation=generation,
                parent=parent.name,
            )
        )
    return children


def select_elites(
    genomes: list[AgentGenome],
    scores: Mapping[str, float],
    *,
    fraction: float,
) -> list[AgentGenome]:
    """The top ``fraction`` of ``genomes`` by score (at least one survives).

    Ties break on the genome name so selection is deterministic whatever the
    execution backend produced the scores.

    >>> pop = [AgentGenome(name=n, kind="lowball") for n in ("a", "b", "c", "d")]
    >>> [g.name for g in select_elites(pop, {"a": 1.0, "b": 3.0, "c": 2.0, "d": 0.0},
    ...                                fraction=0.5)]
    ['b', 'c']
    """
    if not genomes:
        raise ValueError("select_elites needs a non-empty population")
    if not (0.0 < fraction <= 1.0):
        raise ValueError("elite fraction must lie in (0, 1]")
    count = max(1, int(round(fraction * len(genomes))))
    ranked = sorted(genomes, key=lambda g: (-scores.get(g.name, float("-inf")), g.name))
    return ranked[:count]


# ---------------------------------------------------------------------------
# The strategy-kind registry: kind name -> trait-driven builder.
# ---------------------------------------------------------------------------

#: Builder signature: ``(traits, rng) -> strategy``.  The rng seeds any noise
#: the strategy uses internally; all structural parameters come from traits.
StrategyBuilder = Callable[[Traits, np.random.Generator], BiddingStrategy]


def _margins(traits: Traits, *, initial_lo: float, initial_hi: float) -> AdaptiveMarginModel:
    """The adaptive margin model a trait vector implies.

    ``aggressiveness`` sets the starting margin, ``learning_rate`` the win
    decay (fast learners jump to the observed clearing price), and
    ``budget_discipline`` bounds how far losses can push the margin back up.
    """
    return AdaptiveMarginModel(
        initial_margin=_lerp(initial_lo, initial_hi, traits.aggressiveness),
        win_decay=1.0 - 0.9 * traits.learning_rate,
        loss_growth=1.0 + _lerp(0.1, 0.8, 1.0 - traits.budget_discipline),
        ceiling=_lerp(0.8, 3.0, 1.0 - traits.budget_discipline),
    )


def _build_fixed_anchor(traits: Traits, rng: np.random.Generator) -> BiddingStrategy:
    return FixedPriceAnchorStrategy(
        margin=_lerp(0.1, 1.5, traits.aggressiveness) * (1.0 - 0.5 * traits.budget_discipline),
        jitter=_lerp(0.05, 0.6, 1.0 - traits.patience),
        rng=rng,
    )


def _build_market_tracker(traits: Traits, rng: np.random.Generator) -> BiddingStrategy:
    return MarketTrackerStrategy(
        margins=_margins(traits, initial_lo=0.05, initial_hi=1.1),
        alternatives=int(round(2 * traits.patience)),
        rng=rng,
    )


def _build_relocator(traits: Traits, rng: np.random.Generator) -> BiddingStrategy:
    return RelocatorStrategy(
        relocation=RelocationCostModel(base_cost=_lerp(20.0, 120.0, 1.0 - traits.patience)),
        candidate_count=2 + int(round(3 * traits.patience)),
        margins=_margins(traits, initial_lo=0.05, initial_hi=0.6),
        amortisation_periods=_lerp(2.0, 8.0, traits.patience),
    )


def _build_premium_payer(traits: Traits, rng: np.random.Generator) -> BiddingStrategy:
    return PremiumPayerStrategy(
        premium=_lerp(0.5, 3.0, traits.aggressiveness) * (1.0 - 0.6 * traits.budget_discipline),
        rng=rng,
    )


def _build_seller(traits: Traits, rng: np.random.Generator) -> BiddingStrategy:
    return SellerStrategy(
        offer_fraction=_lerp(0.4, 0.9, traits.aggressiveness),
        reserve_discount=_lerp(0.7, 0.3, traits.aggressiveness),
        utilization_threshold=_lerp(0.55, 0.85, traits.patience),
    )


def _build_lowball(traits: Traits, rng: np.random.Generator) -> BiddingStrategy:
    return LowballStrategy(
        fraction=_lerp(0.1, 0.6, traits.aggressiveness),
        rng=rng,
    )


def _build_arbitrageur(traits: Traits, rng: np.random.Generator) -> BiddingStrategy:
    return ArbitrageurStrategy(
        buy_budget_fraction=_lerp(0.2, 0.7, 1.0 - traits.budget_discipline),
        sell_markup=_lerp(1.1, 1.6, traits.patience),
        rng=rng,
    )


#: The registry: strategy kind -> trait-driven builder.  The keys are the
#: same kind names :class:`~repro.agents.population.PopulationSpec` mixes use.
STRATEGY_BUILDERS: dict[str, StrategyBuilder] = {
    "fixed_anchor": _build_fixed_anchor,
    "market_tracker": _build_market_tracker,
    "relocator": _build_relocator,
    "premium_payer": _build_premium_payer,
    "seller": _build_seller,
    "lowball": _build_lowball,
    "arbitrageur": _build_arbitrageur,
}

#: Kinds whose agents start with holdings to offer (sellers need inventory).
ENDOWED_KINDS: frozenset[str] = frozenset({"seller", "arbitrageur"})


def strategy_kinds() -> list[str]:
    """Every registered strategy kind, sorted.

    >>> "market_tracker" in strategy_kinds()
    True
    >>> len(strategy_kinds())
    7
    """
    return sorted(STRATEGY_BUILDERS)


def register_strategy_kind(kind: str, builder: StrategyBuilder) -> None:
    """Register a new trait-driven strategy kind (tests auto-cover it)."""
    if kind in STRATEGY_BUILDERS:
        raise ValueError(f"strategy kind {kind!r} is already registered")
    STRATEGY_BUILDERS[kind] = builder


def strategy_from_traits(kind: str, traits: Traits, *, seed: int) -> BiddingStrategy:
    """Build one strategy instance from a trait vector.

    ``seed`` pins the strategy's internal noise generator, so the same
    ``(kind, traits, seed)`` triple always produces bit-identical bids.

    >>> a = strategy_from_traits("lowball", Traits(aggressiveness=0.2), seed=11)
    >>> b = strategy_from_traits("lowball", Traits(aggressiveness=0.2), seed=11)
    >>> a.fraction == b.fraction
    True
    """
    try:
        builder = STRATEGY_BUILDERS[kind]
    except KeyError:
        known = ", ".join(strategy_kinds())
        raise KeyError(f"unknown strategy kind {kind!r}; registered: {known}") from None
    return builder(traits, np.random.default_rng(seed))
