"""Generational bidder tournaments: evolve strategy traits across auctions.

The paper's live deployment found that bid premiums *fall* across successive
auctions as tenants learn the clearing prices.  A static scripted population
cannot exhibit that; this module makes it an emergent property.  A
**tournament** runs a population of trait-parameterised bidders
(:mod:`repro.agents.traits`) through a full multi-auction economy, scores
every genome on its settled outcomes, and produces the next generation by
clone/mutate/select — so whatever bidding posture wins surplus without
overcommitting capital spreads through the population, and the premium
trajectory across generations reproduces the paper's finding statistically.

Scoring
-------
Each genome's score combines, per replicate run and then averaged:

* **surplus** — value of every won bundle at the *former fixed prices* minus
  the settled payment, normalised by the team budget.  Fixed prices are the
  pre-market willingness-to-pay anchor (Section V), so buying below fixed
  value (or selling above it) is profit and winner's curse is penalised.
* **overcommitment** — the limit committed beyond the settled payment (the
  premium in currency units), also budget-normalised.  The trading platform
  escrows the full limit against the team budget, so an inflated limit is
  locked capital even though the uniform-price settlement never charges it —
  this is the selective pressure that drives premiums down.
* **satisfied fraction** — won bids over submitted bids, so discipline can't
  degenerate into never bidding at all.

Execution
---------
Every generation is a list of ordinary :class:`~repro.simulation.catalog.
ScenarioSpec` jobs (one per replicate seed) fanned across the standard
:class:`~repro.simulation.runner.ParallelRunner` / execution-backend
pipeline, so tournaments parallelise — and persist to the result store —
exactly like sweeps do.  Replicate seeds are *identical across generations*:
every generation faces the same fleets and demand draws, so any premium
shift between generations is attributable to evolution alone.  All selection
happens in the coordinating process on canonically rounded scores, which
makes the full tournament report byte-identical across backends and worker
counts.

>>> cfg = TournamentConfig(name="demo", description="two quick generations",
...                        base_scenario="smoke", generations=2, replicates=2)
>>> cfg.generations
2
>>> roster = initial_roster({"lowball": 1.0, "seller": 1.0}, 4,
...                         np.random.default_rng(0))
>>> [(g.name, g.kind) for g in roster]
[('g0-lowball-000', 'lowball'), ('g0-lowball-001', 'lowball'), ('g0-seller-000', 'seller'), ('g0-seller-001', 'seller')]
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.agents.traits import (
    AgentGenome,
    clone_genomes,
    mutate_from_base,
    random_traits,
    select_elites,
)
from repro.analysis.premium import GenerationPremium, generation_premiums, premiums_fell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runner import ParallelRunner, ScenarioRunResult

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")

#: Canonical rounding for scores (matches the runner's report digit budget).
_DIGITS = 6


@dataclass(frozen=True)
class TournamentConfig:
    """Everything one tournament needs, as a declarative value.

    ``base_scenario`` names the catalog preset supplying the fleet, budgets,
    and auction knobs; ``kind_mix`` defaults to that preset's strategy mix.
    Generation ``g`` runs as scenario ``<name>-g<g>`` so store provenance
    separates generations while replicate seeds key the runs within one.

    >>> cfg = TournamentConfig(name="t", description="d", generations=3)
    >>> cfg.base_scenario
    'paper-reference'
    >>> TournamentConfig(name="Bad Name", description="d")
    Traceback (most recent call last):
    ...
    ValueError: tournament name 'Bad Name' must be kebab-case
    """

    name: str
    description: str
    base_scenario: str = "paper-reference"
    #: How many generations to evolve (generation 0 is the random prior).
    generations: int = 3
    #: Independent seeds each generation is evaluated under (CI sample size).
    replicates: int = 3
    #: Population size; ``None`` uses the base scenario's team count.
    population_size: int | None = None
    #: Auctions per generation run; ``None`` uses the base scenario's length.
    auctions: int | None = None
    #: Root seed for genome creation/mutation *and* the replicate runs;
    #: ``None`` uses the base scenario's seed.
    seed: int | None = None
    #: Fraction of each strategy kind's population surviving as elites.
    elite_fraction: float = 0.25
    #: Std-dev of the Gaussian trait mutation (within trait bounds).
    mutation_scale: float = 0.15
    #: Score weights (see the module docstring's scoring section).
    surplus_weight: float = 1.0
    discipline_weight: float = 1.0
    satisfied_weight: float = 0.5
    #: Relative strategy-kind weights; ``None`` = base scenario's mix.
    kind_mix: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"tournament name {self.name!r} must be kebab-case")
        if not self.description.strip():
            raise ValueError(f"tournament {self.name!r} needs a description")
        if self.generations < 2:
            raise ValueError("a tournament needs at least 2 generations")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.population_size is not None and self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.auctions is not None and self.auctions < 1:
            raise ValueError("auctions must be >= 1")
        if not (0.0 < self.elite_fraction <= 1.0):
            raise ValueError("elite_fraction must lie in (0, 1]")
        if self.mutation_scale < 0:
            raise ValueError("mutation_scale must be non-negative")
        if self.kind_mix is not None:
            if not self.kind_mix or any(w < 0 for w in self.kind_mix.values()):
                raise ValueError("kind_mix weights must be non-negative and non-empty")
            if sum(self.kind_mix.values()) <= 0:
                raise ValueError("kind_mix weights must sum to a positive value")

    def summary(self) -> dict[str, object]:
        """The scalar facts the CLI's tournament listing displays."""
        return {
            "name": self.name,
            "base_scenario": self.base_scenario,
            "generations": self.generations,
            "replicates": self.replicates,
            "population_size": self.population_size,
            "auctions": self.auctions,
            "description": self.description,
        }


def apportion_kinds(kind_mix: Mapping[str, float], size: int) -> dict[str, int]:
    """Deterministic seat counts per strategy kind (largest-remainder method).

    Sampling kind counts would make generation 0 depend on rng draw order;
    apportioning them keeps the ecology of a tournament a pure function of
    ``(kind_mix, size)``.  Kinds are processed in sorted order and remainder
    seats go to the largest fractional parts (ties to the earlier name).

    >>> apportion_kinds({"a": 0.5, "b": 0.3, "c": 0.2}, 10)
    {'a': 5, 'b': 3, 'c': 2}
    >>> sum(apportion_kinds({"a": 1, "b": 1, "c": 1}, 10).values())
    10
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    kinds = sorted(kind_mix)
    total = float(sum(kind_mix.values()))
    quotas = {kind: size * float(kind_mix[kind]) / total for kind in kinds}
    counts = {kind: int(quotas[kind]) for kind in kinds}
    leftover = size - sum(counts.values())
    by_remainder = sorted(kinds, key=lambda k: (-(quotas[k] - counts[k]), k))
    for kind in by_remainder[:leftover]:
        counts[kind] += 1
    return {kind: counts[kind] for kind in kinds if counts[kind] > 0}


def _slot_names(kind: str, count: int, *, generation: int) -> list[str]:
    return [f"g{generation}-{kind}-{i:03d}" for i in range(count)]


def initial_roster(
    kind_mix: Mapping[str, float], size: int, rng: np.random.Generator
) -> list[AgentGenome]:
    """Generation 0: apportioned kinds with uniform-random traits.

    >>> a = initial_roster({"lowball": 1.0}, 2, np.random.default_rng(1))
    >>> b = initial_roster({"lowball": 1.0}, 2, np.random.default_rng(1))
    >>> a == b
    True
    """
    roster: list[AgentGenome] = []
    for kind, count in apportion_kinds(kind_mix, size).items():
        for name in _slot_names(kind, count, generation=0):
            roster.append(AgentGenome(name=name, kind=kind, traits=random_traits(rng)))
    return roster


def next_generation(
    genomes: Sequence[AgentGenome],
    scores: Mapping[str, float],
    rng: np.random.Generator,
    *,
    generation: int,
    elite_fraction: float = 0.25,
    mutation_scale: float = 0.15,
) -> list[AgentGenome]:
    """Produce generation ``generation`` by stratified clone/mutate/select.

    Selection is *within* each strategy kind: every kind's sub-population
    keeps its size, its elites survive as exact clones, and the remaining
    slots are filled with mutated children of those elites.  Stratifying
    preserves the market's ecology — an all-seller market has nothing to
    clear — while still letting each kind's bidding posture evolve.

    >>> pop = initial_roster({"lowball": 1.0, "seller": 1.0}, 6,
    ...                      np.random.default_rng(2))
    >>> scores = {g.name: float(i) for i, g in enumerate(pop)}
    >>> kids = next_generation(pop, scores, np.random.default_rng(3), generation=1)
    >>> len(kids) == len(pop)
    True
    >>> sorted({k.kind for k in kids})
    ['lowball', 'seller']
    >>> all(k.generation == 1 for k in kids)
    True
    """
    children: list[AgentGenome] = []
    for kind in sorted({g.kind for g in genomes}):
        members = [g for g in genomes if g.kind == kind]
        elites = select_elites(members, scores, fraction=elite_fraction)
        names = _slot_names(kind, len(members), generation=generation)
        survivors = min(len(elites), len(members))
        children.extend(clone_genomes(elites, names[:survivors], generation=generation))
        if len(members) > survivors:
            children.extend(
                mutate_from_base(
                    elites,
                    names[survivors:],
                    rng,
                    generation=generation,
                    scale=mutation_scale,
                )
            )
    return children


def genome_score(
    outcome: Mapping[str, float],
    *,
    budget: float,
    surplus_weight: float = 1.0,
    discipline_weight: float = 1.0,
    satisfied_weight: float = 0.5,
) -> float:
    """One genome's fitness from one run's per-team outcome record.

    ``outcome`` is an entry of
    :attr:`repro.simulation.runner.ScenarioRunResult.team_scores`.  Surplus
    and overcommitment are normalised by the team budget so the score is
    scale-free; the result is canonically rounded so selection on it is
    backend-independent.

    >>> genome_score({"surplus": 500.0, "overcommitment": 250.0,
    ...               "satisfied_fraction": 1.0}, budget=1000.0)
    0.75
    """
    scale = max(float(budget), 1.0)
    raw = (
        surplus_weight * float(outcome.get("surplus", 0.0))
        - discipline_weight * float(outcome.get("overcommitment", 0.0))
    ) / scale + satisfied_weight * float(outcome.get("satisfied_fraction", 0.0))
    return round(raw, _DIGITS)


@dataclass(frozen=True)
class GenerationReport:
    """One generation's full record: genomes, scores, and replicate runs."""

    generation: int
    genomes: tuple[AgentGenome, ...]
    #: Genome name -> mean score across replicates (canonically rounded).
    scores: dict[str, float]
    #: The replicate runs, in seed order (full provenance incl. team_scores).
    results: tuple["ScenarioRunResult", ...]

    @property
    def mean_premium_per_replicate(self) -> list[float]:
        """Run-mean bid premium of each replicate (the CI sample)."""
        return [
            round(float(np.mean(result.mean_premium)), _DIGITS)
            for result in self.results
        ]

    @property
    def best_genome(self) -> AgentGenome:
        """The highest-scoring genome (name-tiebroken, like selection)."""
        return min(self.genomes, key=lambda g: (-self.scores[g.name], g.name))

    def kind_mean_scores(self) -> dict[str, float]:
        """Mean score per strategy kind (which postures are winning)."""
        by_kind: dict[str, list[float]] = {}
        for genome in self.genomes:
            by_kind.setdefault(genome.kind, []).append(self.scores[genome.name])
        return {
            kind: round(float(np.mean(values)), _DIGITS)
            for kind, values in sorted(by_kind.items())
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "generation": self.generation,
            "genomes": [g.as_dict() for g in self.genomes],
            "scores": dict(sorted(self.scores.items())),
            "kind_mean_scores": self.kind_mean_scores(),
            "mean_premium_per_replicate": self.mean_premium_per_replicate,
            "runs": [r.to_dict() for r in self.results],
        }


@dataclass(frozen=True)
class TournamentReport:
    """The full record of one tournament: every generation, plus the verdict.

    ``to_json()`` follows the runner's canonical-report contract: sorted
    keys, fixed rounding, no timings — the same tournament serialises to the
    same bytes whatever backend or worker count evaluated the generations.
    """

    config: TournamentConfig
    generations: tuple[GenerationReport, ...]

    def premium_trajectory(self) -> list[GenerationPremium]:
        """Mean premium and 95% CI per generation (the headline series)."""
        return generation_premiums(
            [g.mean_premium_per_replicate for g in self.generations]
        )

    @property
    def premiums_fell(self) -> bool:
        """The paper's live finding: premiums fell CI-separated gen 0 -> N."""
        return premiums_fell(self.premium_trajectory())

    def to_dict(self) -> dict[str, object]:
        return {
            "tournament": self.config.summary(),
            "premium_trajectory": [r.as_row() for r in self.premium_trajectory()],
            "premiums_fell": self.premiums_fell,
            "generations": [g.to_dict() for g in self.generations],
        }

    def to_json(self) -> str:
        """Canonical JSON (the byte-identity artifact tests compare)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


class TournamentEngine:
    """Run a tournament: evaluate, score, select, repeat.

    ``runner`` is any :class:`~repro.simulation.runner.ParallelRunner`
    (default: serial) — each generation's replicate runs are fanned across
    its backend.  ``store`` persists every run under scenario
    ``<name>-g<generation>`` for longitudinal queries, exactly like sweeps.
    """

    def __init__(
        self,
        config: TournamentConfig,
        *,
        runner: "ParallelRunner | None" = None,
        store=None,
        code_version: str | None = None,
    ):
        self.config = config
        self.runner = runner
        self.store = store
        self.code_version = code_version

    def _base_spec(self):
        from repro.simulation.catalog import get_scenario

        return get_scenario(self.config.base_scenario)

    def _generation_specs(self, base, roster: Sequence[AgentGenome], generation: int):
        """The replicate job list evaluating one generation's roster."""
        from dataclasses import replace

        cfg = self.config
        population = replace(
            base.config.population, team_count=len(roster), roster=tuple(roster)
        )
        spec = replace(
            base,
            name=f"{cfg.name}-g{generation}",
            description=f"{cfg.name} generation {generation} ({base.name})",
            config=replace(base.config, population=population),
            auctions=base.auctions if cfg.auctions is None else cfg.auctions,
        )
        seed = base.config.seed if cfg.seed is None else cfg.seed
        # Identical replicate seeds every generation: same fleets, same demand
        # draws — premium shifts between generations are evolution alone.
        return [spec.with_overrides(seed=seed + r) for r in range(cfg.replicates)]

    def _score_roster(
        self, roster: Sequence[AgentGenome], results: Sequence["ScenarioRunResult"], budget: float
    ) -> dict[str, float]:
        cfg = self.config
        scores: dict[str, float] = {}
        for genome in roster:
            per_replicate = [
                genome_score(
                    result.team_scores[genome.name],
                    budget=budget,
                    surplus_weight=cfg.surplus_weight,
                    discipline_weight=cfg.discipline_weight,
                    satisfied_weight=cfg.satisfied_weight,
                )
                for result in results
            ]
            scores[genome.name] = round(float(np.mean(per_replicate)), _DIGITS)
        return scores

    def run(
        self, *, on_generation: Callable[[GenerationReport], None] | None = None
    ) -> TournamentReport:
        """Evolve the population through every generation and report.

        ``on_generation`` fires once per finished generation (for streaming
        CLI progress); the returned report holds them all.
        """
        from repro.simulation.runner import ParallelRunner

        cfg = self.config
        runner = self.runner if self.runner is not None else ParallelRunner(workers=1)
        base = self._base_spec()
        size = (
            base.config.population.team_count
            if cfg.population_size is None
            else cfg.population_size
        )
        kind_mix = dict(
            base.config.population.strategy_mix if cfg.kind_mix is None else cfg.kind_mix
        )
        seed = base.config.seed if cfg.seed is None else cfg.seed
        # One generator drives genome creation and every mutation, consumed in
        # a fixed order in this process only — workers never touch it.
        rng = np.random.default_rng(seed)
        roster = initial_roster(kind_mix, size, rng)

        reports: list[GenerationReport] = []
        for generation in range(cfg.generations):
            specs = self._generation_specs(base, roster, generation)
            sweep = runner.run_specs(
                specs, store=self.store, code_version=self.code_version
            )
            scores = self._score_roster(
                roster, sweep.results, base.config.population.budget_per_team
            )
            report = GenerationReport(
                generation=generation,
                genomes=tuple(roster),
                scores=scores,
                results=sweep.results,
            )
            reports.append(report)
            if on_generation is not None:
                on_generation(report)
            if generation + 1 < cfg.generations:
                roster = next_generation(
                    roster,
                    scores,
                    rng,
                    generation=generation + 1,
                    elite_fraction=cfg.elite_fraction,
                    mutation_scale=cfg.mutation_scale,
                )
        return TournamentReport(config=cfg, generations=tuple(reports))


def run_tournament(
    config: TournamentConfig,
    *,
    runner: "ParallelRunner | None" = None,
    store=None,
    code_version: str | None = None,
    on_generation: Callable[[GenerationReport], None] | None = None,
) -> TournamentReport:
    """Convenience wrapper: build a :class:`TournamentEngine` and run it."""
    return TournamentEngine(
        config, runner=runner, store=store, code_version=code_version
    ).run(on_generation=on_generation)
