"""Cross-auction learning: how agents tighten their limit prices over time.

Section V-C: "As users become more familiar with the market prices we have
seen the reserve prices associated with bids move from closely tracking the
former fixed price values to values much closer to the dynamic market prices.
... In the earlier auctions bid prices were at times wildly divergent, but the
median has decreased significantly over time."

The :class:`AdaptiveMarginModel` captures that: an agent starts with a wide
margin above its cost estimate and multiplicatively shrinks it each time it
wins (it could have bid less) while expanding it when it loses (it bid too
little).  Across a population this produces Table I's decreasing median
premium.

>>> model = AdaptiveMarginModel(initial_margin=0.6, win_decay=0.5, loss_growth=2.0)
>>> model.limit_for(100.0)
160.0
>>> model.record_win()
>>> model.margin
0.3
>>> model.record_loss()
>>> model.margin
0.6
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AdaptiveMarginModel:
    """A multiplicative margin over the estimated bundle cost.

    Attributes
    ----------
    initial_margin:
        Starting margin (0.6 = bid 60% above the estimated cost).
    win_decay:
        Multiplier applied after a win (below 1: winning means the margin can
        shrink towards the true market price).
    loss_growth:
        Multiplier applied after a loss (above 1: losing means the agent was
        too aggressive and must leave more headroom).
    floor / ceiling:
        Hard bounds keeping the margin sane.
    """

    initial_margin: float = 0.6
    win_decay: float = 0.45
    loss_growth: float = 1.6
    floor: float = 0.005
    ceiling: float = 3.0
    margin: float = field(init=False)

    def __post_init__(self) -> None:
        if self.initial_margin < 0:
            raise ValueError("initial_margin must be non-negative")
        if not (0 < self.win_decay <= 1):
            raise ValueError("win_decay must lie in (0, 1]")
        if self.loss_growth < 1:
            raise ValueError("loss_growth must be >= 1")
        if not (0 <= self.floor <= self.ceiling):
            raise ValueError("floor must lie in [0, ceiling]")
        self.margin = float(min(max(self.initial_margin, self.floor), self.ceiling))

    def limit_for(self, estimated_cost: float) -> float:
        """The limit price to bid given the current margin."""
        return estimated_cost * (1.0 + self.margin)

    def record_win(self, *, observed_premium: float | None = None) -> None:
        """Shrink the margin after a win.

        If the actual settled premium is known, jump most of the way towards
        it (the user can see the uniform clearing price on the summary page,
        so next auction they will not leave nearly as much on the table).
        """
        decayed = self.margin * self.win_decay
        if observed_premium is not None and observed_premium >= 0:
            # Bid just above the premium actually observed, but never more
            # cautiously than the plain multiplicative decay would.
            target = max(self.floor, observed_premium * (1.0 + self.win_decay))
            self.margin = min(decayed, target)
        else:
            self.margin = decayed
        self.margin = float(min(max(self.margin, self.floor), self.ceiling))

    def record_loss(self) -> None:
        """Grow the margin after a loss."""
        self.margin = float(min(max(self.margin * self.loss_growth, self.floor), self.ceiling))
