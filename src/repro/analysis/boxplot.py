"""Boxplot statistics: five-number summaries with Tukey outliers.

Figure 7 of the paper is a set of boxplots; since this library produces data
rather than graphics, a boxplot is represented by its summary statistics plus
the list of outlier points, which is everything needed to redraw the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary of one boxplot plus Tukey (1.5 IQR) outliers."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1

    def contains(self, value: float) -> bool:
        """True iff ``value`` lies within [minimum, maximum]."""
        return self.minimum <= value <= self.maximum


def boxplot_stats(values: Iterable[float], *, whisker: float = 1.5) -> BoxplotStats:
    """Compute boxplot statistics for a non-empty collection of values.

    ``whisker`` is the Tukey multiplier: whiskers extend to the most extreme
    data point within ``whisker * IQR`` of the quartiles, and anything beyond
    is reported as an outlier.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute boxplot statistics of an empty collection")
    if not np.all(np.isfinite(arr)):
        raise ValueError("boxplot values must be finite")
    q1, median, q3 = (float(q) for q in np.percentile(arr, [25, 50, 75]))
    iqr = q3 - q1
    low_fence = q1 - whisker * iqr
    high_fence = q3 + whisker * iqr
    within = arr[(arr >= low_fence) & (arr <= high_fence)]
    whisker_low = float(within.min()) if within.size else q1
    whisker_high = float(within.max()) if within.size else q3
    outliers = tuple(float(v) for v in np.sort(arr[(arr < low_fence) | (arr > high_fence)]))
    return BoxplotStats(
        count=int(arr.size),
        minimum=float(arr.min()),
        q1=q1,
        median=median,
        q3=q3,
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )
