"""Utilization percentiles of settled trades (Figure 7).

Figure 7 is a boxplot of "the utilization percentile of settled trades in the
auction broken down by bids and offers in three resource dimensions".  The
paper's reading: most *bids* (purchases) settled in under-utilized clusters
and most *offers* (sales) in over-utilized clusters — exactly the migration
the congestion-weighted reserve prices encourage — with a significant number
of high-utilization bid outliers from teams paying a premium to stay put.

This module extracts, from a settlement, one observation per (winning bidder,
pool touched): the pool's fleet-relative utilization percentile, tagged with
the side (bid if the bidder takes quota in that pool, offer if it gives quota
up) and the pool's resource type.  Grouping and summarising those observations
yields the six boxplots of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.boxplot import BoxplotStats, boxplot_stats
from repro.cluster.resources import ResourceType
from repro.cluster.utilization import snapshot_pools
from repro.core.settlement import Settlement


@dataclass(frozen=True)
class SettledTrade:
    """One settled (bidder, pool) observation."""

    bidder: str
    pool: str
    cluster: str
    rtype: ResourceType
    #: "bid" when the bidder acquired quota in this pool, "offer" when it gave quota up.
    side: str
    quantity: float
    utilization_percentile: float
    utilization_fraction: float


def settled_trades(
    settlement: Settlement,
    *,
    percentiles: Mapping[str, float] | None = None,
    tol: float = 1e-9,
) -> list[SettledTrade]:
    """Expand a settlement into per-pool settled-trade observations.

    ``percentiles`` overrides the pool utilization percentiles (by default they
    are computed fleet-relative from the settlement's own pool index).
    """
    index = settlement.index
    if percentiles is None:
        percentiles = snapshot_pools(index).percentiles
    trades: list[SettledTrade] = []
    for line in settlement.winners:
        for i in np.flatnonzero(np.abs(line.allocation) > tol):
            pool = index.pools[int(i)]
            quantity = float(line.allocation[i])
            trades.append(
                SettledTrade(
                    bidder=line.bidder,
                    pool=pool.name,
                    cluster=pool.cluster,
                    rtype=pool.rtype,
                    side="bid" if quantity > 0 else "offer",
                    quantity=abs(quantity),
                    utilization_percentile=float(percentiles[pool.name]),
                    utilization_fraction=pool.utilization,
                )
            )
    return trades


def utilization_percentile_groups(
    trades: Iterable[SettledTrade],
) -> dict[tuple[ResourceType, str], list[float]]:
    """Group settled-trade utilization percentiles by (resource type, side)."""
    groups: dict[tuple[ResourceType, str], list[float]] = {}
    for trade in trades:
        groups.setdefault((trade.rtype, trade.side), []).append(trade.utilization_percentile)
    return groups


def figure7_boxplots(
    settlements: Settlement | Sequence[Settlement],
    *,
    percentiles: Mapping[str, float] | None = None,
) -> dict[str, BoxplotStats]:
    """The six Figure 7 boxplots, keyed like ``"CPU Bids"`` / ``"Disk Offers"``.

    Accepts a single settlement or several (the paper pools trades from one
    auction; pooling several is useful for the multi-auction economy).  Groups
    with no observations are omitted.
    """
    if isinstance(settlements, Settlement):
        settlements = [settlements]
    all_trades: list[SettledTrade] = []
    for settlement in settlements:
        all_trades.extend(settled_trades(settlement, percentiles=percentiles))
    groups = utilization_percentile_groups(all_trades)
    label = {"bid": "Bids", "offer": "Offers"}
    result: dict[str, BoxplotStats] = {}
    for rtype in ResourceType:
        for side in ("bid", "offer"):
            values = groups.get((rtype, side))
            if values:
                result[f"{rtype.value.upper()} {label[side]}"] = boxplot_stats(values)
    return result


def migration_summary(trades: Iterable[SettledTrade]) -> dict[str, float]:
    """Headline numbers for the Figure 7 claim.

    Returns the median utilization percentile of bid-side and offer-side
    trades plus the share of bid quantity landing in below-median-utilization
    pools.  A healthy market shows ``median_bid_percentile`` well below
    ``median_offer_percentile``.
    """
    bids = [t for t in trades if t.side == "bid"]
    offers = [t for t in trades if t.side == "offer"]
    bid_percentiles = [t.utilization_percentile for t in bids]
    offer_percentiles = [t.utilization_percentile for t in offers]
    bid_quantity = sum(t.quantity for t in bids)
    low_util_bid_quantity = sum(t.quantity for t in bids if t.utilization_percentile < 50.0)
    return {
        "median_bid_percentile": float(np.median(bid_percentiles)) if bid_percentiles else float("nan"),
        "median_offer_percentile": float(np.median(offer_percentiles)) if offer_percentiles else float("nan"),
        "bid_quantity_share_in_underutilized": (
            low_util_bid_quantity / bid_quantity if bid_quantity > 0 else float("nan")
        ),
        "bid_count": float(len(bids)),
        "offer_count": float(len(offers)),
    }
