"""Market price / fixed price ratios per cluster and resource (Figure 6).

Figure 6 plots, for each of 34 clusters, the settled market price of CPU, RAM,
and disk "as a ratio over the former fixed price that was in place before the
market economy".  Congested clusters end above 1.0, idle clusters below, and
the three resource dimensions of one cluster need not agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.pools import PoolIndex
from repro.cluster.resources import ResourceType


@dataclass(frozen=True)
class PriceRatioRow:
    """One cluster's row of the Figure 6 data: ratio per resource dimension."""

    cluster: str
    cpu_ratio: float
    ram_ratio: float
    disk_ratio: float
    #: Mean utilization of the cluster's three pools (used for sorting/analysis).
    mean_utilization: float

    def ratio(self, rtype: ResourceType) -> float:
        """Ratio of one resource dimension."""
        if rtype is ResourceType.CPU:
            return self.cpu_ratio
        if rtype is ResourceType.RAM:
            return self.ram_ratio
        return self.disk_ratio

    def max_ratio(self) -> float:
        """Largest ratio across the three dimensions."""
        return max(self.cpu_ratio, self.ram_ratio, self.disk_ratio)


def price_ratio_table(
    index: PoolIndex,
    market_prices: Mapping[str, float],
    fixed_prices: Mapping[str, float],
) -> list[PriceRatioRow]:
    """Build the Figure 6 rows (one per cluster, unsorted)."""
    rows: list[PriceRatioRow] = []
    for cluster in index.clusters():
        ratios: dict[ResourceType, float] = {}
        utils: list[float] = []
        for rtype in ResourceType:
            name = f"{cluster}/{rtype.value}"
            fixed = fixed_prices[name]
            market = market_prices[name]
            ratios[rtype] = market / fixed if fixed > 0 else float("inf")
            utils.append(index.pool(name).utilization)
        rows.append(
            PriceRatioRow(
                cluster=cluster,
                cpu_ratio=ratios[ResourceType.CPU],
                ram_ratio=ratios[ResourceType.RAM],
                disk_ratio=ratios[ResourceType.DISK],
                mean_utilization=sum(utils) / len(utils),
            )
        )
    return rows


def sort_rows_for_figure6(rows: Sequence[PriceRatioRow]) -> list[PriceRatioRow]:
    """Order clusters by ascending CPU ratio, as in the paper's figure.

    (The paper's x-axis is simply the cluster list; sorting by ratio makes the
    congested-vs-idle split visually obvious and is how the figure reads.)
    """
    return sorted(rows, key=lambda row: (row.cpu_ratio, row.cluster))


def ratio_utilization_correlation(rows: Sequence[PriceRatioRow]) -> float:
    """Pearson correlation between a cluster's mean utilization and its max price ratio.

    The central mechanism claim — congestion-weighted reserves push prices up
    exactly where utilization is high — shows up as a strongly positive value.
    """
    import numpy as np

    if len(rows) < 2:
        return 0.0
    utils = np.array([row.mean_utilization for row in rows])
    ratios = np.array([row.max_ratio() for row in rows])
    finite = np.isfinite(ratios)
    if finite.sum() < 2 or np.std(utils[finite]) == 0 or np.std(ratios[finite]) == 0:
        return 0.0
    return float(np.corrcoef(utils[finite], ratios[finite])[0, 1])
