"""Analysis: the metrics behind every table and figure in the paper's evaluation.

* :mod:`repro.analysis.boxplot` — five-number summaries + outliers (Figure 7's boxplots);
* :mod:`repro.analysis.premium` — bid-premium statistics per auction (Table I);
* :mod:`repro.analysis.price_ratio` — market/fixed price ratios per cluster (Figure 6);
* :mod:`repro.analysis.utilization_stats` — utilization percentiles of settled
  trades split by side and resource dimension (Figure 7);
* :mod:`repro.analysis.settlement_stats` — shortage/surplus/utilization-balance
  comparisons and per-strategy winner breakdowns;
* :mod:`repro.analysis.reports` — plain-text rendering of the above.
"""

from repro.analysis.boxplot import BoxplotStats, boxplot_stats
from repro.analysis.premium import PremiumStats, premium_stats, premium_table
from repro.analysis.price_ratio import PriceRatioRow, price_ratio_table, sort_rows_for_figure6
from repro.analysis.utilization_stats import (
    SettledTrade,
    settled_trades,
    utilization_percentile_groups,
    figure7_boxplots,
)
from repro.analysis.settlement_stats import (
    settlement_by_strategy,
    utilization_after_settlement,
    utilization_balance_improvement,
)
from repro.analysis.reports import render_table, render_premium_table, render_figure6_rows

__all__ = [
    "BoxplotStats",
    "boxplot_stats",
    "PremiumStats",
    "premium_stats",
    "premium_table",
    "PriceRatioRow",
    "price_ratio_table",
    "sort_rows_for_figure6",
    "SettledTrade",
    "settled_trades",
    "utilization_percentile_groups",
    "figure7_boxplots",
    "settlement_by_strategy",
    "utilization_after_settlement",
    "utilization_balance_improvement",
    "render_table",
    "render_premium_table",
    "render_figure6_rows",
]
