"""Plain-text rendering of analysis results (tables the benchmarks and CLI print)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.boxplot import BoxplotStats
from repro.analysis.premium import PremiumStats
from repro.analysis.price_ratio import PriceRatioRow
from repro.results.stats import (
    ComparisonReport,
    MechanismComparisonReport,
    ReplicateStats,
)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render a list of rows as a fixed-width text table."""
    formatted_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in formatted_rows)) if formatted_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in formatted_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_premium_table(rows: Sequence[PremiumStats], *, title: str = "Table I: bid premium statistics") -> str:
    """Render Table I."""
    return render_table(
        ["Auction", "Median of gamma_u", "Mean of gamma_u", "% Settled"],
        [
            [row.auction, row.median_premium, row.mean_premium, f"{row.settled_fraction * 100:.1f}%"]
            for row in rows
        ],
        title=title,
    )


def render_figure6_rows(
    rows: Sequence[PriceRatioRow], *, title: str = "Figure 6: market price / fixed price by cluster"
) -> str:
    """Render the Figure 6 data series."""
    return render_table(
        ["Cluster", "CPU", "RAM", "Disk", "Mean util"],
        [
            [row.cluster, row.cpu_ratio, row.ram_ratio, row.disk_ratio, row.mean_utilization]
            for row in rows
        ],
        title=title,
    )


def render_replicate_stats(
    stats: Mapping[str, ReplicateStats], *, title: str | None = None
) -> str:
    """Render per-metric replicate statistics (what ``results show`` prints)."""
    rows = []
    for name, s in stats.items():
        ci = f"[{s.ci95[0]:.4f}, {s.ci95[1]:.4f}]" if s.ci95 is not None else "-"
        stddev = f"{s.stddev:.4f}" if s.stddev is not None else "-"
        rows.append([name, s.count, s.mean, stddev, ci])
    return render_table(
        ["Metric", "n", "Mean", "Stddev", "95% CI"],
        rows,
        title=title,
    )


def render_metric_comparisons(report: ComparisonReport, *, title: str | None = None) -> str:
    """Render a baseline-vs-candidate comparison (what ``results compare`` prints)."""
    rows = []
    for c in report.comparisons:
        relative = f"{c.relative_change * 100:+.1f}%" if c.relative_change is not None else "-"
        verdict = "REGRESSION" if c.regression else ("drift" if c.significant else "ok")
        rows.append(
            [c.metric, c.direction, c.baseline.mean, c.candidate.mean, c.delta, relative, verdict]
        )
    header = (
        title
        if title is not None
        else (
            f"{report.baseline_label} -> {report.candidate_label} "
            f"(tolerance {report.tolerance * 100:.0f}%)"
        )
    )
    table = render_table(
        ["Metric", "Dir", "Baseline", "Candidate", "Delta", "Rel", "Verdict"],
        rows,
        title=header,
    )
    if report.missing_metrics:
        table += (
            "\n(not compared — present on one side only: "
            + ", ".join(report.missing_metrics)
            + ")"
        )
    return table


def render_mechanism_comparison(
    report: MechanismComparisonReport, *, title: str | None = None
) -> str:
    """Render a cross-mechanism comparison (what ``compare-mechanisms`` prints).

    One row per (metric, mechanism) with the replicate mean and 95% CI; the
    direction-aware leader of each metric is marked in the verdict column.
    The trailing summary line names the metrics where the market leads every
    baseline — the paper's qualitative market-vs-tradition claim, read
    straight off the store.
    """
    rows = []
    for metric, stats in report.metric_stats.items():
        best = report.best(metric)
        for name in report.mechanisms:
            s = stats[name]
            ci = f"[{s.ci95[0]:.4f}, {s.ci95[1]:.4f}]" if s.ci95 is not None else "-"
            verdict = "best" if name == best else ""
            rows.append(
                [metric, name, s.count, s.mean, ci, report.directions[metric], verdict]
            )
    header = (
        title
        if title is not None
        else f"{report.scenario} @ {report.code_version}: mechanisms "
        + " vs ".join(report.mechanisms)
    )
    table = render_table(
        ["Metric", "Mechanism", "n", "Mean", "95% CI", "Dir", "Verdict"],
        rows,
        title=header,
    )
    market_wins = [m for m in report.metric_stats if report.market_leads(m)]
    if "market" in report.mechanisms:
        table += "\n\nmarket leads on: " + (", ".join(market_wins) if market_wins else "(none)")
    return table


def render_boxplots(
    boxes: Mapping[str, BoxplotStats], *, title: str = "Figure 7: utilization percentiles of settled transactions"
) -> str:
    """Render Figure 7's boxplot summaries."""
    return render_table(
        ["Group", "n", "min", "Q1", "median", "Q3", "max", "#outliers"],
        [
            [name, box.count, box.minimum, box.q1, box.median, box.q3, box.maximum, len(box.outliers)]
            for name, box in boxes.items()
        ],
        title=title,
        float_format="{:.1f}",
    )
