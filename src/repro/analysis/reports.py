"""Plain-text rendering of analysis results (tables the benchmarks print)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.boxplot import BoxplotStats
from repro.analysis.premium import PremiumStats
from repro.analysis.price_ratio import PriceRatioRow


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render a list of rows as a fixed-width text table."""
    formatted_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in formatted_rows)) if formatted_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in formatted_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_premium_table(rows: Sequence[PremiumStats], *, title: str = "Table I: bid premium statistics") -> str:
    """Render Table I."""
    return render_table(
        ["Auction", "Median of gamma_u", "Mean of gamma_u", "% Settled"],
        [
            [row.auction, row.median_premium, row.mean_premium, f"{row.settled_fraction * 100:.1f}%"]
            for row in rows
        ],
        title=title,
    )


def render_figure6_rows(
    rows: Sequence[PriceRatioRow], *, title: str = "Figure 6: market price / fixed price by cluster"
) -> str:
    """Render the Figure 6 data series."""
    return render_table(
        ["Cluster", "CPU", "RAM", "Disk", "Mean util"],
        [
            [row.cluster, row.cpu_ratio, row.ram_ratio, row.disk_ratio, row.mean_utilization]
            for row in rows
        ],
        title=title,
    )


def render_boxplots(
    boxes: Mapping[str, BoxplotStats], *, title: str = "Figure 7: utilization percentiles of settled transactions"
) -> str:
    """Render Figure 7's boxplot summaries."""
    return render_table(
        ["Group", "n", "min", "Q1", "median", "Q3", "max", "#outliers"],
        [
            [name, box.count, box.minimum, box.q1, box.median, box.q3, box.maximum, len(box.outliers)]
            for name, box in boxes.items()
        ],
        title=title,
        float_format="{:.1f}",
    )
