"""Bid-premium statistics (paper Eq. 5 and Table I).

For every winning user the premium is

    gamma_u = |pi_u - x_u . p| / |x_u . p|

i.e. how far the bid's limit price sat above (or below, for sellers) the
amount actually settled.  Table I reports the median and mean of gamma_u plus
the fraction of bids that settled, for three consecutive auctions; the same
statistics are computed here from any :class:`~repro.core.settlement.Settlement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.settlement import Settlement


@dataclass(frozen=True)
class PremiumStats:
    """One auction's row of Table I."""

    auction: int
    median_premium: float
    mean_premium: float
    settled_fraction: float
    winner_count: int
    bidder_count: int

    def as_row(self) -> dict[str, float]:
        """The row as a plain mapping (for tables and serialization)."""
        return {
            "auction": float(self.auction),
            "median_gamma": self.median_premium,
            "mean_gamma": self.mean_premium,
            "pct_settled": self.settled_fraction * 100.0,
        }


def premium_stats(settlement: Settlement, *, auction: int = 0) -> PremiumStats:
    """Compute Table I statistics for one settled auction."""
    premiums = settlement.premiums()
    return PremiumStats(
        auction=auction,
        median_premium=float(np.median(premiums)) if premiums else 0.0,
        mean_premium=float(np.mean(premiums)) if premiums else 0.0,
        settled_fraction=settlement.settled_fraction(),
        winner_count=len(settlement.winners),
        bidder_count=len(settlement.lines),
    )


def premium_table(settlements: Sequence[Settlement], *, first_auction: int = 1) -> list[PremiumStats]:
    """Table I: one :class:`PremiumStats` row per auction, in order."""
    return [
        premium_stats(settlement, auction=first_auction + i)
        for i, settlement in enumerate(settlements)
    ]


def premium_trend(rows: Sequence[PremiumStats]) -> dict[str, float]:
    """Summary of how premiums evolve across auctions.

    ``median_ratio_last_to_first`` below 1.0 reproduces the paper's finding
    that "the median has decreased significantly over time"; the mean is
    reported too but the paper notes it "has been more variable".
    """
    if not rows:
        raise ValueError("premium_trend needs at least one auction row")
    first, last = rows[0], rows[-1]
    return {
        "median_first": first.median_premium,
        "median_last": last.median_premium,
        "median_ratio_last_to_first": (
            last.median_premium / first.median_premium if first.median_premium > 0 else 0.0
        ),
        "mean_first": first.mean_premium,
        "mean_last": last.mean_premium,
        "median_monotone_decreasing": float(
            all(a.median_premium >= b.median_premium - 1e-12 for a, b in zip(rows, rows[1:]))
        ),
    }
