"""Bid-premium statistics (paper Eq. 5 and Table I).

For every winning user the premium is

    gamma_u = |pi_u - x_u . p| / |x_u . p|

i.e. how far the bid's limit price sat above (or below, for sellers) the
amount actually settled.  Table I reports the median and mean of gamma_u plus
the fraction of bids that settled, for three consecutive auctions; the same
statistics are computed here from any :class:`~repro.core.settlement.Settlement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.settlement import Settlement


@dataclass(frozen=True)
class PremiumStats:
    """One auction's row of Table I."""

    auction: int
    median_premium: float
    mean_premium: float
    settled_fraction: float
    winner_count: int
    bidder_count: int

    def as_row(self) -> dict[str, float]:
        """The row as a plain mapping (for tables and serialization)."""
        return {
            "auction": float(self.auction),
            "median_gamma": self.median_premium,
            "mean_gamma": self.mean_premium,
            "pct_settled": self.settled_fraction * 100.0,
        }


def premium_stats(settlement: Settlement, *, auction: int = 0) -> PremiumStats:
    """Compute Table I statistics for one settled auction."""
    premiums = settlement.premiums()
    return PremiumStats(
        auction=auction,
        median_premium=float(np.median(premiums)) if premiums else 0.0,
        mean_premium=float(np.mean(premiums)) if premiums else 0.0,
        settled_fraction=settlement.settled_fraction(),
        winner_count=len(settlement.winners),
        bidder_count=len(settlement.lines),
    )


def premium_table(settlements: Sequence[Settlement], *, first_auction: int = 1) -> list[PremiumStats]:
    """Table I: one :class:`PremiumStats` row per auction, in order."""
    return [
        premium_stats(settlement, auction=first_auction + i)
        for i, settlement in enumerate(settlements)
    ]


@dataclass(frozen=True)
class GenerationPremium:
    """One tournament generation's premium level across replicate runs.

    ``mean`` averages the per-replicate run means; ``ci95`` is the 95%
    t-interval over the replicates (``None`` with a single replicate — a CI
    needs variance to estimate).  Produced by :func:`generation_premiums`
    from the tournament engine's per-generation replicate sweeps.
    """

    generation: int
    mean: float
    ci95: tuple[float, float] | None

    def as_row(self) -> dict[str, object]:
        """The row as a plain mapping (for tables and serialization)."""
        return {
            "generation": self.generation,
            "mean": self.mean,
            "ci95": list(self.ci95) if self.ci95 is not None else None,
        }


def generation_premiums(
    values_per_generation: Sequence[Sequence[float]],
) -> list[GenerationPremium]:
    """Premium trajectory across tournament generations.

    ``values_per_generation[g]`` holds generation ``g``'s per-replicate mean
    premiums (one value per replicate seed).  Each generation is summarised
    with the same mean / 95%-t-interval convention as
    :mod:`repro.results.stats`.

    >>> rows = generation_premiums([[0.8, 0.9, 1.0], [0.2, 0.25, 0.3]])
    >>> [r.generation for r in rows]
    [0, 1]
    >>> rows[0].mean
    0.9
    >>> rows[1].ci95 is not None
    True
    """
    from repro.results.stats import replicate_stats  # lazy: avoids an import cycle

    rows = []
    for generation, values in enumerate(values_per_generation):
        stats = replicate_stats(f"generation-{generation}-premium", values)
        rows.append(
            GenerationPremium(generation=generation, mean=stats.mean, ci95=stats.ci95)
        )
    return rows


def premiums_fell(rows: Sequence[GenerationPremium]) -> bool:
    """Did premiums fall CI-separated from the first to the last generation?

    True when the last generation's *upper* 95% bound sits strictly below the
    first generation's *lower* bound — the intervals are disjoint with the
    first above, the paper's live finding as a statistical claim.  False when
    either CI is undefined (single replicate): no variance estimate, no claim.

    >>> premiums_fell(generation_premiums([[0.8, 0.9, 1.0], [0.2, 0.25, 0.3]]))
    True
    >>> premiums_fell(generation_premiums([[0.8, 0.9], [0.75, 0.95]]))
    False
    >>> premiums_fell(generation_premiums([[0.9], [0.1]]))
    False
    """
    if len(rows) < 2:
        raise ValueError("premiums_fell needs at least two generations")
    first, last = rows[0], rows[-1]
    if first.ci95 is None or last.ci95 is None:
        return False
    return last.ci95[1] < first.ci95[0]


def premium_trend(rows: Sequence[PremiumStats]) -> dict[str, float]:
    """Summary of how premiums evolve across auctions.

    ``median_ratio_last_to_first`` below 1.0 reproduces the paper's finding
    that "the median has decreased significantly over time"; the mean is
    reported too but the paper notes it "has been more variable".
    """
    if not rows:
        raise ValueError("premium_trend needs at least one auction row")
    first, last = rows[0], rows[-1]
    return {
        "median_first": first.median_premium,
        "median_last": last.median_premium,
        "median_ratio_last_to_first": (
            last.median_premium / first.median_premium if first.median_premium > 0 else 0.0
        ),
        "mean_first": first.mean_premium,
        "mean_last": last.mean_premium,
        "median_monotone_decreasing": float(
            all(a.median_premium >= b.median_premium - 1e-12 for a, b in zip(rows, rows[1:]))
        ),
    }
