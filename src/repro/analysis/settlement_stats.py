"""Settlement-level statistics: utilization balance, per-strategy outcomes.

These back the paper's qualitative claims in Sections I and VI — the market
produces "significant improvements in overall utilization" and reduces the
shortages/surpluses of traditional allocation — and give the benchmark harness
numbers to print.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex
from repro.cluster.utilization import utilization_spread
from repro.core.bids import Bid
from repro.core.settlement import Settlement


def utilization_after_settlement(settlement: Settlement) -> np.ndarray:
    """Projected utilization per pool once winning allocations are provisioned.

    Buyers add load to a pool; sellers free it.  Values are clipped to [0, 1]:
    an allocation cannot push a pool past its physical capacity because the
    auction never allocates more than the operator supply plus seller offers.
    """
    index = settlement.index
    capacities = np.maximum(index.capacities(), 1e-9)
    used = index.utilizations() * capacities + settlement.total_allocated()
    return np.clip(used / capacities, 0.0, 1.0)


def utilization_balance_improvement(settlement: Settlement) -> dict[str, float]:
    """Utilization spread before vs after the settlement (lower after = better balance)."""
    before = utilization_spread(settlement.index.utilizations())
    after = utilization_spread(utilization_after_settlement(settlement))
    return {
        "spread_before": before,
        "spread_after": after,
        "improvement": before - after,
    }


def settlement_by_strategy(
    settlement: Settlement, bids: Sequence[Bid]
) -> dict[str, dict[str, float]]:
    """Win rates and payments grouped by the bidding strategy recorded in bid metadata.

    Bids whose metadata lacks a ``"strategy"`` key are grouped under ``"unknown"``.
    """
    strategy_of = {
        bid.bidder: str(bid.metadata.get("strategy", "unknown")) for bid in bids
    }
    groups: dict[str, dict[str, float]] = {}
    for line in settlement.lines:
        strategy = strategy_of.get(line.bidder, "unknown")
        stats = groups.setdefault(
            strategy, {"bidders": 0.0, "winners": 0.0, "total_paid": 0.0, "total_received": 0.0}
        )
        stats["bidders"] += 1
        if line.won:
            stats["winners"] += 1
            if line.payment >= 0:
                stats["total_paid"] += line.payment
            else:
                stats["total_received"] += -line.payment
    for stats in groups.values():
        stats["win_rate"] = stats["winners"] / stats["bidders"] if stats["bidders"] else 0.0
    return groups


def demand_concentration(settlement: Settlement) -> dict[str, float]:
    """Share of total cost-weighted allocation landing in each cluster.

    Used to check the migration story: after a market run, the congested
    clusters should receive a small share of new (bid-side) allocations.
    """
    index = settlement.index
    costs = index.unit_costs()
    per_cluster: dict[str, float] = {}
    total = 0.0
    for line in settlement.winners:
        bought = np.clip(line.allocation, 0.0, None) * costs
        for i in np.flatnonzero(bought > 0):
            cluster = index.pools[int(i)].cluster
            per_cluster[cluster] = per_cluster.get(cluster, 0.0) + float(bought[i])
            total += float(bought[i])
    if total <= 0:
        return {}
    return {cluster: value / total for cluster, value in per_cluster.items()}


def operator_revenue(settlement: Settlement) -> float:
    """Net budget dollars flowing to the operator (buyer payments minus seller receipts)."""
    return float(sum(line.payment for line in settlement.winners))
