"""Comparing allocation outcomes: shortage, surplus, and utilization balance.

The paper's headline qualitative claim is that the market reduces "the
excessive shortages and surpluses of more traditional allocation methods" and
evens out utilization across pools.  This module computes the metrics behind
that claim for any :class:`~repro.baselines.requests.AllocationOutcome`
(baseline policies) or market :class:`~repro.core.settlement.Settlement`, so
the benchmark harness can put them side by side.

Two complementary families of measures live here:

* **Team-level coverage** (:func:`allocation_metrics`): how much of each
  team's cost-weighted request was granted, anywhere in the fleet — the
  fairness/satisfaction view.
* **Pool-level imbalance** (:func:`utilization_imbalance`): the paper's
  literal complaint — "uneven utilization, significant shortages and
  surpluses in *certain resource pools*" — measured as capacity overcommitted
  beyond safe headroom (shortage) and capacity stranded idle (surplus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.requests import AllocationOutcome, QuotaRequest
from repro.cluster.pools import PoolIndex
from repro.cluster.utilization import utilization_spread
from repro.core.settlement import Settlement

#: Utilization above which a pool counts as *short*: allocation policies that
#: keep piling load onto an already-hot pool leave it without headroom for
#: spikes or failover.  At 0.90 the paper's phi_1 reserve weighting prices the
#: pool at e^{2(0.9-0.5)} ~ 2.2x cost — deep in the "expensive" zone the
#: market uses to repel exactly this overcommitment.
SHORTAGE_UTILIZATION = 0.90

#: Utilization below which a pool counts as *surplus*: capacity bought and
#: racked but left stranded because no allocation steers demand there.  At
#: 0.30 the phi_1 weighting prices the pool *below* cost (e^{-0.4} ~ 0.67x) —
#: the market's explicit invitation to migrate in.
SURPLUS_UTILIZATION = 0.30


def utilization_imbalance(
    index: PoolIndex,
    utilizations: np.ndarray | None = None,
    *,
    shortage_threshold: float = SHORTAGE_UTILIZATION,
    surplus_threshold: float = SURPLUS_UTILIZATION,
) -> tuple[float, float]:
    """Cost-weighted (shortage, surplus) capacity of a fleet state.

    Shortage is the capacity committed beyond ``shortage_threshold`` across
    pools (hot pools running without headroom); surplus is the capacity idle
    below ``surplus_threshold`` (cold pools nobody steers demand to).  Both
    are weighted by unit cost so a congested CPU pool is not drowned out by
    disk's larger raw numbers.  ``utilizations`` overrides the index's own
    utilization vector (useful for replaying recorded trajectories).

    A mechanism that relocates demand from hot to cold pools — the market's
    defining behaviour (Figure 7) — shrinks *both* numbers; a policy that
    grants demand wherever it happens to land (FCFS, priority, proportional
    share) piles load onto hot pools while cold ones stay stranded.
    """
    utils = index.utilizations() if utilizations is None else np.asarray(utilizations, dtype=float)
    weighted_caps = index.capacities() * index.unit_costs()
    shortage = float(np.dot(np.clip(utils - shortage_threshold, 0.0, None), weighted_caps))
    surplus = float(np.dot(np.clip(surplus_threshold - utils, 0.0, None), weighted_caps))
    return shortage, surplus


@dataclass(frozen=True)
class AllocationMetrics:
    """Headline metrics of one allocation policy run."""

    policy: str
    #: Total unmet demand across pools, in cost-weighted units (so CPU shortage
    #: is not drowned out by disk's larger raw numbers).
    shortage_cost: float
    #: Total unallocated available capacity, cost-weighted.
    surplus_cost: float
    #: Standard deviation of post-allocation utilization across pools.
    utilization_spread: float
    #: Fraction of teams whose request was fully satisfied.
    satisfied_fraction: float
    #: Fraction of all requested (cost-weighted) units that were granted.
    grant_rate: float


def _cost_weighted(index: PoolIndex, quantities: np.ndarray) -> float:
    return float(np.dot(np.clip(quantities, 0.0, None), index.unit_costs()))


def _post_allocation_utilization(index: PoolIndex, granted: np.ndarray) -> np.ndarray:
    capacities = np.maximum(index.capacities(), 1e-9)
    used = index.utilizations() * capacities + np.clip(granted, 0.0, None)
    return np.clip(used / capacities, 0.0, 1.0)


def allocation_metrics(outcome: AllocationOutcome) -> AllocationMetrics:
    """Metrics for an allocation outcome (baseline policy or market).

    Shortage and satisfaction are measured *per team and cost-weighted*, not
    per pool: a team that asked for resources in its congested home cluster
    but was provisioned an equivalent bundle in an idle cluster is satisfied —
    that relocation is precisely the market behaviour the paper wants — while
    a team granted only half of what it needs contributes the missing half to
    the shortage regardless of which pool it is missing from.  Surplus stays
    a per-pool quantity (capacity left idle).
    """
    index = outcome.index
    surplus = outcome.surplus()
    granted = outcome.total_granted()
    shortage_cost = 0.0
    satisfied = 0
    requested_cost_total = 0.0
    granted_cost_total = 0.0
    teams = outcome.teams()
    for team in teams:
        requested_cost = _cost_weighted(index, outcome.requested[team])
        granted_cost = _cost_weighted(index, outcome.granted.get(team, np.zeros(len(index))))
        requested_cost_total += requested_cost
        granted_cost_total += granted_cost
        shortage_cost += max(0.0, requested_cost - granted_cost)
        if granted_cost >= requested_cost * (1.0 - 1e-6):
            satisfied += 1
    return AllocationMetrics(
        policy=outcome.policy,
        shortage_cost=shortage_cost,
        surplus_cost=_cost_weighted(index, surplus),
        utilization_spread=utilization_spread(_post_allocation_utilization(index, granted)),
        satisfied_fraction=satisfied / len(teams) if teams else 1.0,
        grant_rate=(granted_cost_total / requested_cost_total) if requested_cost_total > 0 else 1.0,
    )


def market_outcome_from_settlement(
    settlement: Settlement,
    requests: Sequence[QuotaRequest] | None = None,
) -> AllocationOutcome:
    """Re-express a market settlement as an :class:`AllocationOutcome`.

    The market's "requested" side is taken from ``requests`` when provided
    (the same underlying demand fed to the baselines) so shortage numbers are
    comparable; otherwise each winner's own allocation doubles as its request
    and losers' requests are unknown (zero).
    """
    outcome = AllocationOutcome(index=settlement.index, policy="market")
    requested_by_team: dict[str, np.ndarray] = {}
    if requests is not None:
        for request in requests:
            vec = request.vector(settlement.index)
            requested_by_team[request.team] = requested_by_team.get(
                request.team, np.zeros(len(settlement.index))
            ) + vec
    for line in settlement.lines:
        granted = np.clip(line.allocation, 0.0, None)
        requested = requested_by_team.get(line.bidder)
        if requested is None:
            requested = granted.copy()
        outcome.record(line.bidder, requested, granted)
    # teams that requested but did not bid/win at all
    for team, requested in requested_by_team.items():
        if team not in outcome.requested:
            outcome.record(team, requested, np.zeros(len(settlement.index)))
    return outcome


def market_outcome_from_quota_delta(
    index: PoolIndex,
    requests: Sequence[QuotaRequest],
    initial_holdings: Mapping[str, Mapping[str, float]],
    final_holdings: Mapping[str, Mapping[str, float]],
) -> AllocationOutcome:
    """Express the market's multi-auction provisioning as an :class:`AllocationOutcome`.

    The market provisions over several periodic auctions (teams that lose one
    auction raise their bids in the next), so the fair comparison against a
    one-shot baseline policy is the *cumulative* quota each team acquired:
    its final holdings minus its initial holdings, clipped to acquisitions.
    """
    outcome = AllocationOutcome(index=index, policy="market")
    granted_by_team: dict[str, np.ndarray] = {}
    teams = set(initial_holdings) | set(final_holdings)
    for team in teams:
        initial = index.vector(dict(initial_holdings.get(team, {})))
        final = index.vector(dict(final_holdings.get(team, {})))
        granted_by_team[team] = np.clip(final - initial, 0.0, None)
    for request in requests:
        wanted = request.vector(index)
        granted = granted_by_team.pop(request.team, np.zeros(len(index)))
        outcome.record(request.team, wanted, granted)
    # teams that acquired quota without appearing in the baseline request set
    for team, granted in granted_by_team.items():
        if np.any(granted > 0):
            outcome.record(team, np.zeros(len(index)), granted)
    return outcome


def compare_outcomes(outcomes: Sequence[AllocationOutcome]) -> dict[str, AllocationMetrics]:
    """Metrics for several outcomes keyed by policy name."""
    result: dict[str, AllocationMetrics] = {}
    for outcome in outcomes:
        metrics = allocation_metrics(outcome)
        result[metrics.policy] = metrics
    return result


def requests_from_demands(
    index: PoolIndex,
    demands: Mapping[str, Mapping[str, float]],
    *,
    priorities: Mapping[str, int] | None = None,
) -> list[QuotaRequest]:
    """Build baseline quota requests from per-team demand bundles.

    ``demands`` maps team -> {pool name: quantity}; ``priorities`` optionally
    assigns operator priorities (default 0).
    """
    priorities = priorities or {}
    return [
        QuotaRequest(team=team, quantities=dict(quantities), priority=priorities.get(team, 0))
        for team, quantities in demands.items()
        if quantities
    ]
