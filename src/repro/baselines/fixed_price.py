"""Fixed-price, first-come-first-served allocation (the pre-market status quo).

Teams request quota at the operator's posted fixed price; the operator grants
requests in arrival order until each pool's available capacity is exhausted.
There is no price signal steering anyone away from congested pools, so popular
clusters run out (shortage) while unpopular ones sit idle (surplus) — the
failure mode the market is designed to remove.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.requests import AllocationOutcome, QuotaRequest, validate_requests
from repro.cluster.pools import PoolIndex


class FixedPriceAllocator:
    """First-come-first-served grants against available pool capacity.

    Parameters
    ----------
    partial_grants:
        If ``True`` (default) a request hitting a depleted pool is granted
        whatever remains in that pool; if ``False`` the request is
        all-or-nothing per pool set (closer to how strict quota tickets
        behaved).
    """

    def __init__(self, *, partial_grants: bool = True):
        self.partial_grants = partial_grants

    def allocate(self, index: PoolIndex, requests: Sequence[QuotaRequest]) -> AllocationOutcome:
        """Grant requests in order against the pools' available capacity."""
        validate_requests(index, requests)
        remaining = index.available().copy()
        outcome = AllocationOutcome(index=index, policy="fixed_price_fcfs")
        for request in requests:
            wanted = request.vector(index)
            if self.partial_grants:
                granted = np.minimum(wanted, remaining)
            else:
                granted = wanted if np.all(wanted <= remaining + 1e-9) else np.zeros_like(wanted)
            remaining = remaining - granted
            outcome.record(request.team, wanted, granted)
        return outcome
