"""Priority-based allocation: "more important" teams are served first.

"...or, more likely, decides that certain jobs / users are 'more important'
than others, giving the former higher quotas or the ability to preempt
lower-ranked tasks."  Requests are sorted by operator-assigned priority
(highest first) and granted against remaining capacity; within a priority
level, arrival order breaks ties.  Low-priority teams in congested pools get
nothing at all, producing the user unhappiness the paper alludes to.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.requests import AllocationOutcome, QuotaRequest, validate_requests
from repro.cluster.pools import PoolIndex


class PriorityAllocator:
    """Grant requests in descending priority order against available capacity."""

    def __init__(self, *, partial_grants: bool = True):
        self.partial_grants = partial_grants

    def allocate(self, index: PoolIndex, requests: Sequence[QuotaRequest]) -> AllocationOutcome:
        """Grant higher-priority requests first; lower priorities get the leftovers."""
        validate_requests(index, requests)
        remaining = index.available().copy()
        outcome = AllocationOutcome(index=index, policy="priority")
        ordered = sorted(
            enumerate(requests), key=lambda pair: (-pair[1].priority, pair[0])
        )
        for _, request in ordered:
            wanted = request.vector(index)
            if self.partial_grants:
                granted = np.minimum(wanted, remaining)
            else:
                granted = wanted if np.all(wanted <= remaining + 1e-9) else np.zeros_like(wanted)
            remaining = remaining - granted
            outcome.record(request.team, wanted, granted)
        return outcome
