"""Traditional (non-market) allocation mechanisms used as baselines.

The paper motivates the market by contrast with manual quota setting:
"Traditionally, such limits / quotas have been set manually according to
pre-defined policies.  The operator either grants each user an equal share of
the system or, more likely, decides that certain jobs / users are 'more
important' than others ... These inefficiencies are manifested through uneven
utilization, significant shortages and surpluses in certain resource pools."

Three such policies are implemented so the benchmark harness can quantify the
shortages/surpluses the market removes:

* :class:`FixedPriceAllocator` — first-come-first-served grants at the posted
  fixed price until each pool runs out;
* :class:`ProportionalShareAllocator` — everyone's request is scaled down by
  the pool's oversubscription factor;
* :class:`PriorityAllocator` — requests are granted in priority order, with
  lower priorities squeezed out of congested pools;
* :class:`LotteryAllocator` — a budget-weighted lottery decides the service
  order (randomised fairness, still no price signal).
"""

from repro.baselines.requests import QuotaRequest, AllocationOutcome
from repro.baselines.fixed_price import FixedPriceAllocator
from repro.baselines.lottery import LotteryAllocator
from repro.baselines.proportional import ProportionalShareAllocator
from repro.baselines.priority import PriorityAllocator
from repro.baselines.comparison import (
    AllocationMetrics,
    allocation_metrics,
    compare_outcomes,
    market_outcome_from_settlement,
)

__all__ = [
    "QuotaRequest",
    "AllocationOutcome",
    "FixedPriceAllocator",
    "LotteryAllocator",
    "ProportionalShareAllocator",
    "PriorityAllocator",
    "AllocationMetrics",
    "allocation_metrics",
    "compare_outcomes",
    "market_outcome_from_settlement",
]
