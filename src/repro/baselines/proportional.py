"""Proportional-share allocation: everyone gets the same fraction of what they asked for.

"The operator either grants each user an equal share of the system..."  When a
pool is oversubscribed, every request on that pool is scaled down by the same
factor, so nobody is turned away but nobody in a congested pool gets what they
actually need — shortages are spread evenly rather than removed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.requests import AllocationOutcome, QuotaRequest, validate_requests
from repro.cluster.pools import PoolIndex


class ProportionalShareAllocator:
    """Scale every request on an oversubscribed pool by the pool's supply/demand ratio."""

    def allocate(self, index: PoolIndex, requests: Sequence[QuotaRequest]) -> AllocationOutcome:
        """Grant each team ``min(1, available/demand)`` of its request per pool."""
        validate_requests(index, requests)
        outcome = AllocationOutcome(index=index, policy="proportional_share")
        if not requests:
            return outcome
        total_demand = np.zeros(len(index))
        vectors = []
        for request in requests:
            vec = request.vector(index)
            vectors.append(vec)
            total_demand += vec
        available = index.available()
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(total_demand > 0, np.minimum(1.0, available / total_demand), 1.0)
        for request, wanted in zip(requests, vectors):
            outcome.record(request.team, wanted, wanted * scale)
        return outcome
