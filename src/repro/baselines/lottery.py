"""Lottery allocation: budget-weighted random service order.

The fourth tradition alongside first-come-first-served, priorities, and
proportional shares: the operator holds a lottery over the requests, with
each team's chance of being served early proportional to the budget it
brings (Waldspurger-style lottery scheduling, tickets = budget dollars).
Randomness removes the operator's explicit importance ranking — nobody is
*systematically* starved the way low priorities are — but there is still no
price signal: winners draw capacity out of the same congested home pools,
losers in a bad draw get nothing, and idle clusters stay idle.  The market's
claim is that it beats even an unbiased randomised tradition, not just a
badly tuned deterministic one.

Determinism: the allocator owns a seeded :class:`numpy.random.Generator`.
Inside a :class:`~repro.mechanisms.baseline.BaselineEconomySimulation` the
generator is re-derived from the scenario RNG (see :meth:`LotteryAllocator.reseed`),
so a fixed scenario seed fixes every epoch's draw — same spec, same result,
exactly like every other mechanism.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.requests import AllocationOutcome, QuotaRequest, validate_requests
from repro.cluster.pools import PoolIndex


class LotteryAllocator:
    """Serve requests in a budget-weighted random order against available capacity.

    The service order is drawn with Efraimidis–Spirakis weighted sampling
    without replacement: each request gets the key ``u ** (1 / weight)`` for
    one uniform draw ``u``, and requests are served by descending key.  A
    request's ``weight`` is its team's remaining budget (tickets); zero-weight
    requests always sort last.

    >>> from repro.cluster.pools import demo_pool_index
    >>> index = demo_pool_index()
    >>> rich = QuotaRequest(team="rich", quantities={"a/cpu": 15.0}, weight=1e9)
    >>> poor = QuotaRequest(team="poor", quantities={"a/cpu": 15.0}, weight=1e-9)
    >>> outcome = LotteryAllocator(seed=1).allocate(index, [rich, poor])
    >>> bool(outcome.granted["rich"].sum() >= outcome.granted["poor"].sum())
    True
    """

    def __init__(self, *, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def reseed(self, rng: np.random.Generator) -> None:
        """Re-derive the lottery stream from a scenario RNG.

        Called once per simulation by
        :class:`~repro.mechanisms.baseline.BaselineEconomySimulation`, so the
        draws are pinned by the scenario seed (replicates under different
        seeds hold different lotteries) without the allocator needing to know
        anything about scenarios.
        """
        self._rng = np.random.default_rng(int(rng.integers(2**63)))

    def allocate(self, index: PoolIndex, requests: Sequence[QuotaRequest]) -> AllocationOutcome:
        """Grant requests in a freshly drawn budget-weighted order."""
        validate_requests(index, requests)
        outcome = AllocationOutcome(index=index, policy="lottery")
        if not requests:
            return outcome
        weights = np.array([max(0.0, float(r.weight)) for r in requests], dtype=float)
        draws = self._rng.random(len(requests))
        with np.errstate(divide="ignore"):
            keys = np.where(weights > 0.0, draws ** (1.0 / weights), -1.0)
        order = np.argsort(-keys, kind="stable")
        remaining = index.available().copy()
        for i in order:
            request = requests[i]
            wanted = request.vector(index)
            granted = np.minimum(wanted, remaining)
            remaining = remaining - granted
            outcome.record(request.team, wanted, granted)
        return outcome
