"""Quota requests and allocation outcomes shared by all baseline allocators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.pools import PoolIndex


@dataclass(frozen=True)
class QuotaRequest:
    """One team's quota request under a traditional allocation policy.

    Unlike a market bid there is no limit price and no indifference set: the
    team names exactly what it wants (usually in its home cluster) and the
    operator decides.  ``priority`` is the operator-assigned importance used
    by the priority policy.
    """

    team: str
    quantities: Mapping[str, float]
    priority: int = 0
    #: Lottery tickets (normally the team's remaining budget); only the
    #: lottery policy reads it.  Defaults to an equal single ticket.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.team:
            raise ValueError("team must be non-empty")
        if not self.quantities:
            raise ValueError("request must name at least one pool")
        if any(qty < 0 for qty in self.quantities.values()):
            raise ValueError("requested quantities must be non-negative")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")

    def vector(self, index: PoolIndex) -> np.ndarray:
        """The request as a vector over ``index``."""
        return index.vector(dict(self.quantities))


@dataclass
class AllocationOutcome:
    """What an allocator granted, per team, plus derived shortage/surplus views."""

    index: PoolIndex
    policy: str
    granted: dict[str, np.ndarray] = field(default_factory=dict)
    requested: dict[str, np.ndarray] = field(default_factory=dict)

    def record(self, team: str, requested: np.ndarray, granted: np.ndarray) -> None:
        """Accumulate one team's requested and granted vectors."""
        req = self.requested.setdefault(team, np.zeros(len(self.index)))
        grant = self.granted.setdefault(team, np.zeros(len(self.index)))
        self.requested[team] = req + requested
        self.granted[team] = grant + granted

    # -- per-pool aggregates -----------------------------------------------------------
    def total_requested(self) -> np.ndarray:
        """Total requested per pool."""
        total = np.zeros(len(self.index))
        for vec in self.requested.values():
            total += vec
        return total

    def total_granted(self) -> np.ndarray:
        """Total granted per pool."""
        total = np.zeros(len(self.index))
        for vec in self.granted.values():
            total += vec
        return total

    def shortage(self) -> np.ndarray:
        """Requested minus granted, clipped at zero (unmet demand per pool)."""
        return np.clip(self.total_requested() - self.total_granted(), 0.0, None)

    def surplus(self) -> np.ndarray:
        """Capacity left unallocated per pool (relative to the *available* capacity)."""
        return np.clip(self.index.available() - self.total_granted(), 0.0, None)

    def grant_fraction(self, team: str) -> float:
        """Fraction of a team's requested units that were granted (1.0 if it asked for nothing)."""
        requested = self.requested.get(team)
        if requested is None or requested.sum() <= 0:
            return 1.0
        granted = self.granted.get(team, np.zeros(len(self.index)))
        return float(granted.sum() / requested.sum())

    def fully_satisfied_teams(self, *, tol: float = 1e-9) -> list[str]:
        """Teams whose entire request was granted."""
        return [
            team
            for team in self.requested
            if np.all(self.granted.get(team, np.zeros(len(self.index))) >= self.requested[team] - tol)
        ]

    def teams(self) -> list[str]:
        """All teams that submitted requests."""
        return list(self.requested)


def validate_requests(index: PoolIndex, requests: Sequence[QuotaRequest]) -> None:
    """Raise ``KeyError`` if any request references a pool missing from ``index``."""
    for request in requests:
        for name in request.quantities:
            if name not in index:
                raise KeyError(f"request from {request.team!r} references unknown pool {name!r}")
