"""Unit tests for the agent framework: relocation costs, learning, strategies, population."""

import numpy as np
import pytest

from repro.agents.base import DemandProfile, MarketView, TeamAgent
from repro.agents.learning import AdaptiveMarginModel
from repro.agents.population import PopulationSpec, build_population, strategy_counts
from repro.agents.relocation import RelocationCostModel
from repro.agents.strategies import (
    ArbitrageurStrategy,
    FixedPriceAnchorStrategy,
    LowballStrategy,
    MarketTrackerStrategy,
    PremiumPayerStrategy,
    RelocatorStrategy,
    SellerStrategy,
)
from repro.cluster.fleet_gen import small_fleet
from repro.core.bids import BidderClass
from repro.core.settlement import settle
from repro.market.services import ServiceRequest, default_catalog


@pytest.fixture
def fleet():
    return small_fleet(4, seed=21, utilization_range=(0.15, 0.95))


@pytest.fixture
def view(fleet):
    index = fleet.pool_index
    return MarketView(
        index=index,
        displayed_prices={p.name: p.unit_cost for p in index},
        fixed_prices=dict(fleet.fixed_prices),
        auction_number=1,
        topology=fleet.topology,
    )


def make_agent(fleet, strategy, *, home=None, budget=1e9, mobile=True, holdings=None):
    catalog = default_catalog()
    home = home or fleet.cluster_names()[0]
    demand = DemandProfile(
        home_cluster=home,
        requests=[ServiceRequest("batch_compute", home, 20)],
        growth_rate=0.1,
        mobile=mobile,
    )
    agent = TeamAgent(name="team-x", demand=demand, strategy=strategy, catalog=catalog, budget=budget)
    if holdings:
        agent.holdings = holdings
    return agent


class TestRelocationCostModel:
    def test_same_cluster_is_free(self, fleet):
        model = RelocationCostModel()
        assert model.move_cost(fleet.topology, "cluster-00", "cluster-00", workload_size=100) == 0.0

    def test_cost_grows_with_workload_and_distance(self, fleet):
        model = RelocationCostModel(base_cost=10, cost_per_distance=1.0, cost_per_unit=2.0)
        names = fleet.cluster_names()
        small = model.move_cost(fleet.topology, names[0], names[1], workload_size=10)
        big = model.move_cost(fleet.topology, names[0], names[1], workload_size=100)
        assert big > small

    def test_immobile_multiplier(self, fleet):
        model = RelocationCostModel(immobile_multiplier=5.0)
        names = fleet.cluster_names()
        mobile = model.move_cost(fleet.topology, names[0], names[1], workload_size=10, mobile=True)
        pinned = model.move_cost(fleet.topology, names[0], names[1], workload_size=10, mobile=False)
        assert pinned == pytest.approx(mobile * 5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RelocationCostModel(base_cost=-1)
        with pytest.raises(ValueError):
            RelocationCostModel(immobile_multiplier=0.5)
        with pytest.raises(ValueError):
            RelocationCostModel().move_cost(None, "a", "b", workload_size=-1)

    def test_cheapest_destination_trades_off_move_cost(self, fleet):
        model = RelocationCostModel(base_cost=1000.0, cost_per_distance=0.0, cost_per_unit=0.0)
        # staying home is free; moving saves 500 in recurring cost but costs 1000 to move
        cluster, total = model.cheapest_destination(
            fleet.topology,
            "cluster-00",
            {"cluster-00": 2000.0, "cluster-01": 1500.0},
            workload_size=10,
        )
        assert cluster == "cluster-00"
        # with a cheap move the destination wins
        cheap_model = RelocationCostModel(base_cost=10.0, cost_per_distance=0.0, cost_per_unit=0.0)
        cluster, _ = cheap_model.cheapest_destination(
            fleet.topology, "cluster-00", {"cluster-00": 2000.0, "cluster-01": 1500.0}, workload_size=10
        )
        assert cluster == "cluster-01"

    def test_empty_candidates_rejected(self, fleet):
        with pytest.raises(ValueError):
            RelocationCostModel().cheapest_destination(fleet.topology, "a", {}, workload_size=1)


class TestAdaptiveMarginModel:
    def test_margin_shrinks_on_wins_and_grows_on_losses(self):
        model = AdaptiveMarginModel(initial_margin=0.5, win_decay=0.5, loss_growth=2.0)
        model.record_win()
        assert model.margin == pytest.approx(0.25)
        model.record_loss()
        assert model.margin == pytest.approx(0.5)

    def test_bounds_are_enforced(self):
        model = AdaptiveMarginModel(initial_margin=0.5, floor=0.1, ceiling=1.0)
        for _ in range(20):
            model.record_win()
        assert model.margin >= 0.1
        for _ in range(20):
            model.record_loss()
        assert model.margin <= 1.0

    def test_observed_premium_accelerates_convergence(self):
        slow = AdaptiveMarginModel(initial_margin=1.0)
        fast = AdaptiveMarginModel(initial_margin=1.0)
        slow.record_win()
        fast.record_win(observed_premium=0.01)
        assert fast.margin < slow.margin

    def test_limit_for(self):
        model = AdaptiveMarginModel(initial_margin=0.2)
        assert model.limit_for(100.0) == pytest.approx(120.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveMarginModel(win_decay=1.5)
        with pytest.raises(ValueError):
            AdaptiveMarginModel(loss_growth=0.5)
        with pytest.raises(ValueError):
            AdaptiveMarginModel(initial_margin=-0.1)


class TestDemandProfile:
    def test_growth(self, fleet):
        profile = DemandProfile(
            home_cluster="cluster-00",
            requests=[ServiceRequest("batch_compute", "cluster-00", 10)],
            growth_rate=0.5,
        )
        profile.grow()
        assert profile.requests[0].quantity == pytest.approx(15.0)
        assert profile.total_quantity() == pytest.approx(15.0)

    def test_covering_bundle_rehomes_requests(self, fleet):
        catalog = default_catalog()
        profile = DemandProfile(
            home_cluster="cluster-00",
            requests=[ServiceRequest("batch_compute", "cluster-00", 10)],
        )
        bundle = profile.covering_bundle(catalog, fleet.pool_index, "cluster-01")
        assert all(name.startswith("cluster-01/") for name in bundle)


class TestStrategies:
    def test_fixed_anchor_produces_buy_bid_anchored_to_fixed_prices(self, fleet, view):
        agent = make_agent(fleet, FixedPriceAnchorStrategy(margin=0.5, jitter=0.0))
        bids = agent.prepare_bids(view)
        assert len(bids) == 1
        bid = bids[0]
        assert bid.bidder_class is BidderClass.PURE_BUYER
        bundle_cost = float(bid.bundles.matrix[0] @ np.array([view.fixed_prices[n] for n in view.index.names]))
        assert bid.limit == pytest.approx(bundle_cost * 1.5, rel=1e-6)

    def test_market_tracker_adapts_after_feedback(self, fleet, view):
        strategy = MarketTrackerStrategy(margins=AdaptiveMarginModel(initial_margin=0.5))
        agent = make_agent(fleet, strategy)
        first_limit = agent.prepare_bids(view)[0].limit
        # simulate a win at a much lower settled payment
        settlement = settle(view.index, agent.prepare_bids(view), np.array([p.unit_cost for p in view.index]))
        agent.observe_settlement(settlement.lines, view)
        second_limit = agent.prepare_bids(view)[0].limit
        assert strategy.margins.margin < 0.5
        assert second_limit < first_limit * 1.2  # demand grew 10%, margin shrank

    def test_market_tracker_includes_alternatives(self, fleet, view):
        agent = make_agent(fleet, MarketTrackerStrategy(alternatives=2))
        bid = agent.prepare_bids(view)[0]
        assert len(bid.bundles) == 3

    def test_lowball_bids_below_cost(self, fleet, view):
        agent = make_agent(fleet, LowballStrategy(fraction=0.3))
        bid = agent.prepare_bids(view)[0]
        cost = float(bid.bundles.matrix[0] @ np.array([view.displayed_prices[n] for n in view.index.names]))
        assert bid.limit < cost

    def test_premium_payer_stays_home_and_overbids(self, fleet, view):
        home = fleet.cluster_names()[0]
        agent = make_agent(fleet, PremiumPayerStrategy(premium=2.0), home=home)
        bid = agent.prepare_bids(view)[0]
        assert len(bid.bundles) == 1
        assert all(name.startswith(home) for name in bid.bundles.bundle(0).pools_touched())
        cost = float(bid.bundles.matrix[0] @ np.array([view.displayed_prices[n] for n in view.index.names]))
        assert bid.limit > cost * 1.5

    def test_relocator_includes_cheaper_clusters(self, fleet):
        index = fleet.pool_index
        # make the home cluster expensive and another cluster cheap
        prices = {p.name: p.unit_cost for p in index}
        home = fleet.cluster_names()[0]
        cheap = fleet.cluster_names()[1]
        for rtype in ("cpu", "ram", "disk"):
            prices[f"{home}/{rtype}"] *= 4.0
            prices[f"{cheap}/{rtype}"] *= 0.25
        view = MarketView(
            index=index, displayed_prices=prices, fixed_prices=dict(fleet.fixed_prices),
            auction_number=1, topology=fleet.topology,
        )
        agent = make_agent(
            fleet,
            RelocatorStrategy(relocation=RelocationCostModel(base_cost=0.0, cost_per_distance=0.0, cost_per_unit=0.0)),
            home=home,
        )
        bid = agent.prepare_bids(view)[0]
        touched_clusters = {index.pool(n).cluster for b in bid.bundles for n in b.pools_touched()}
        assert home in touched_clusters and cheap in touched_clusters

    def test_relocator_stays_home_when_moving_is_prohibitive(self, fleet, view):
        agent = make_agent(
            fleet,
            RelocatorStrategy(relocation=RelocationCostModel(base_cost=1e9)),
        )
        bid = agent.prepare_bids(view)[0]
        assert len(bid.bundles) == 1

    def test_seller_offers_only_congested_holdings(self, fleet, view):
        index = fleet.pool_index
        congested = max(fleet.cluster_names(), key=lambda c: index.pool(f"{c}/cpu").utilization)
        idle = min(fleet.cluster_names(), key=lambda c: index.pool(f"{c}/cpu").utilization)
        holdings = {f"{congested}/cpu": 100.0, f"{idle}/cpu": 100.0}
        agent = make_agent(fleet, SellerStrategy(utilization_threshold=0.7, offer_fraction=0.5), holdings=holdings)
        bids = agent.prepare_bids(view)
        if index.pool(f"{congested}/cpu").utilization >= 0.7:
            assert len(bids) == 1
            offered = bids[0].bundles.bundle(0).describe()
            assert f"{congested}/cpu" in offered
            assert f"{idle}/cpu" not in offered
            assert offered[f"{congested}/cpu"] == pytest.approx(-50.0)
        else:
            assert bids == []

    def test_seller_without_holdings_is_silent(self, fleet, view):
        agent = make_agent(fleet, SellerStrategy())
        assert agent.prepare_bids(view) == []

    def test_arbitrageur_buys_cheapest_then_sells_on_markup(self, fleet, view):
        strategy = ArbitrageurStrategy(sell_markup=1.2)
        agent = make_agent(fleet, strategy, budget=1e6)
        bids = agent.prepare_bids(view)
        assert any(b.bidder_class is BidderClass.PURE_BUYER for b in bids)
        # simulate having bought at half today's price: selling should trigger
        cheapest = view.cheapest_clusters(limit=1)[0]
        pool_name = f"{cheapest}/cpu"
        agent.holdings = {pool_name: 10.0}
        strategy.cost_basis[pool_name] = view.price(pool_name) / 2.0
        bids = agent.prepare_bids(view)
        assert any(b.bidder_class is BidderClass.PURE_SELLER for b in bids)

    def test_strategy_must_bid_under_agents_name(self, fleet, view):
        class RogueStrategy:
            def prepare_bids(self, agent, view):
                from repro.core.bids import Bid

                return [Bid.buy("someone-else", view.index, [{"cluster-00/cpu": 1}], max_payment=1.0)]

            def observe(self, agent, lines, view):
                return None

        agent = make_agent(fleet, RogueStrategy())
        with pytest.raises(ValueError):
            agent.prepare_bids(view)


class TestPopulation:
    def test_population_size_and_names(self, fleet):
        agents = build_population(fleet, PopulationSpec(team_count=30), seed=1)
        assert len(agents) == 30
        assert len({a.name for a in agents}) == 30

    def test_strategy_mix_is_respected_roughly(self, fleet):
        spec = PopulationSpec(team_count=200, strategy_mix={"market_tracker": 1.0})
        agents = build_population(fleet, spec, seed=2)
        counts = strategy_counts(agents)
        assert counts == {"MarketTrackerStrategy": 200}

    def test_sellers_get_initial_holdings(self, fleet):
        spec = PopulationSpec(team_count=50, strategy_mix={"seller": 1.0})
        agents = build_population(fleet, spec, seed=3)
        assert all(agent.holdings for agent in agents)

    def test_homes_biased_towards_congested_clusters(self, fleet):
        spec = PopulationSpec(team_count=400, congested_home_bias=1.0)
        agents = build_population(fleet, spec, seed=4)
        index = fleet.pool_index
        utils = np.array([index.pool(f"{a.demand.home_cluster}/cpu").utilization for a in agents])
        fleet_mean = np.mean([index.pool(f"{c}/cpu").utilization for c in fleet.cluster_names()])
        assert utils.mean() > fleet_mean

    def test_deterministic_given_seed(self, fleet):
        a = build_population(fleet, PopulationSpec(team_count=10), seed=9)
        b = build_population(fleet, PopulationSpec(team_count=10), seed=9)
        assert [x.demand.home_cluster for x in a] == [x.demand.home_cluster for x in b]
        assert [type(x.strategy).__name__ for x in a] == [type(x.strategy).__name__ for x in b]

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            PopulationSpec(team_count=0)
        with pytest.raises(ValueError):
            PopulationSpec(strategy_mix={})
        with pytest.raises(ValueError):
            PopulationSpec(strategy_mix={"market_tracker": -1.0})
        with pytest.raises(ValueError):
            PopulationSpec(budget_per_team=-1.0)

    def test_unknown_strategy_kind_rejected(self, fleet):
        with pytest.raises(KeyError):
            build_population(fleet, PopulationSpec(team_count=5, strategy_mix={"mystery": 1.0}), seed=0)
