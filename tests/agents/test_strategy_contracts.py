"""Per-strategy contract tests, parametrised over every registered kind.

Every strategy kind in :data:`repro.agents.traits.STRATEGY_BUILDERS` must
honour the same contract when built from a trait vector: bids are schema-valid
:class:`~repro.core.bids.Bid` objects in the agent's own name, buy limits
never exceed the team budget, and the same ``(kind, traits, seed)`` triple
produces bit-identical bids.  Parametrising over :func:`strategy_kinds` means
a newly registered kind is covered with zero test edits.
"""

import numpy as np
import pytest

from repro.agents.base import DemandProfile, MarketView, TeamAgent
from repro.agents.population import PopulationSpec, build_population
from repro.agents.traits import (
    ENDOWED_KINDS,
    AgentGenome,
    Traits,
    strategy_from_traits,
    strategy_kinds,
)
from repro.cluster.fleet_gen import small_fleet
from repro.core.bids import Bid, BidderClass
from repro.market.services import ServiceRequest, default_catalog

BUDGET = 5_000.0

#: Trait corners plus the centre: the contract must hold across the whole box.
TRAIT_POINTS = [
    Traits(),
    Traits(aggressiveness=1.0, patience=0.0, budget_discipline=0.0, learning_rate=1.0),
    Traits(aggressiveness=0.0, patience=1.0, budget_discipline=1.0, learning_rate=0.0),
]


@pytest.fixture(scope="module")
def fleet():
    return small_fleet(4, seed=21, utilization_range=(0.15, 0.95))


@pytest.fixture(scope="module")
def view(fleet):
    index = fleet.pool_index
    return MarketView(
        index=index,
        displayed_prices={p.name: p.unit_cost for p in index},
        fixed_prices=dict(fleet.fixed_prices),
        auction_number=1,
        topology=fleet.topology,
    )


def make_trait_agent(fleet, kind, traits, *, seed, budget=BUDGET):
    """One TeamAgent whose strategy comes from the trait registry."""
    catalog = default_catalog()
    home = fleet.cluster_names()[0]
    demand = DemandProfile(
        home_cluster=home,
        requests=[ServiceRequest("batch_compute", home, 20)],
        growth_rate=0.1,
    )
    agent = TeamAgent(
        name=f"contract-{kind}",
        demand=demand,
        strategy=strategy_from_traits(kind, traits, seed=seed),
        catalog=catalog,
        budget=budget,
    )
    if kind in ENDOWED_KINDS:
        agent.holdings = demand.covering_bundle(catalog, fleet.pool_index, home)
    return agent


def bid_fingerprints(bids):
    """A comparable, hashable rendering of a bid list (order-sensitive)."""
    return [
        (bid.bidder, round(bid.limit, 9), bid.bundles.matrix.tobytes())
        for bid in bids
    ]


@pytest.mark.parametrize("kind", strategy_kinds())
class TestStrategyContract:
    def test_bids_are_schema_valid(self, fleet, view, kind):
        for traits in TRAIT_POINTS:
            agent = make_trait_agent(fleet, kind, traits, seed=11)
            for bid in agent.prepare_bids(view):
                assert isinstance(bid, Bid)
                assert bid.bidder == agent.name
                assert np.isfinite(bid.limit)
                assert len(bid.bundles) >= 1
                assert bid.bundles.index is view.index

    def test_buy_limits_respect_budget(self, fleet, view, kind):
        for traits in TRAIT_POINTS:
            agent = make_trait_agent(fleet, kind, traits, seed=17)
            for bid in agent.prepare_bids(view):
                if bid.bidder_class is BidderClass.PURE_SELLER:
                    # Sellers state minimum revenue as a negative limit;
                    # no budget is committed.
                    assert bid.limit <= 0.0
                else:
                    assert 0.0 <= bid.limit <= agent.budget + 1e-9

    def test_deterministic_per_seed(self, fleet, view, kind):
        traits = Traits(aggressiveness=0.7, patience=0.3, budget_discipline=0.6)
        first = make_trait_agent(fleet, kind, traits, seed=23).prepare_bids(view)
        second = make_trait_agent(fleet, kind, traits, seed=23).prepare_bids(view)
        assert bid_fingerprints(first) == bid_fingerprints(second)

    def test_different_seeds_allowed_to_differ(self, fleet, view, kind):
        """Seeds pin noise only — changing the seed must never raise."""
        traits = Traits()
        for seed in (1, 2, 3):
            agent = make_trait_agent(fleet, kind, traits, seed=seed)
            agent.prepare_bids(view)


class TestRosterBuildPopulation:
    """Roster-driven population builds honour genome names and endowments."""

    def _spec(self, roster):
        return PopulationSpec(
            team_count=len(roster),
            budget_per_team=BUDGET,
            strategy_mix={"lowball": 1.0},
            roster=roster,
        )

    def _roster(self):
        return tuple(
            AgentGenome(name=f"g0-{kind}-000", kind=kind, traits=Traits())
            for kind in strategy_kinds()
        )

    def test_roster_names_and_kinds_honoured(self, fleet):
        roster = self._roster()
        agents = build_population(fleet, self._spec(roster), catalog=default_catalog(), seed=5)
        assert [a.name for a in agents] == [g.name for g in roster]
        for genome, agent in zip(roster, agents):
            expected = type(strategy_from_traits(genome.kind, genome.traits, seed=0))
            assert type(agent.strategy) is expected

    def test_endowed_kinds_get_holdings(self, fleet):
        roster = self._roster()
        agents = build_population(fleet, self._spec(roster), catalog=default_catalog(), seed=5)
        for genome, agent in zip(roster, agents):
            if genome.kind in ENDOWED_KINDS:
                assert agent.holdings, f"{genome.kind} should start with inventory"
            else:
                assert not agent.holdings

    def test_roster_build_is_deterministic(self, fleet):
        roster = self._roster()
        a = build_population(fleet, self._spec(roster), catalog=default_catalog(), seed=9)
        b = build_population(fleet, self._spec(roster), catalog=default_catalog(), seed=9)
        assert [x.demand.home_cluster for x in a] == [y.demand.home_cluster for y in b]
        assert [x.budget for x in a] == [y.budget for y in b]

    def test_roster_size_must_match_team_count(self):
        roster = self._roster()
        with pytest.raises(ValueError):
            PopulationSpec(
                team_count=len(roster) + 1,
                budget_per_team=BUDGET,
                strategy_mix={"lowball": 1.0},
                roster=roster,
            )

    def test_roster_names_must_be_unique(self):
        dup = AgentGenome(name="dup", kind="lowball", traits=Traits())
        with pytest.raises(ValueError):
            PopulationSpec(
                team_count=2,
                budget_per_team=BUDGET,
                strategy_mix={"lowball": 1.0},
                roster=(dup, dup),
            )
